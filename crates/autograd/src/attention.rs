//! Fused graph-attention aggregation (the GAT primitive).
//!
//! One op computes, for every destination node `v` with in-neighborhood
//! `N(v) ∪ {v}`:
//!
//! ```text
//! e_uv = LeakyReLU(s_src[u] + s_dst[v])
//! α_uv = softmax over u of e_uv
//! out_v = Σ_u α_uv · h_u
//! ```
//!
//! `h`, `s_src`, and `s_dst` are ordinary tape nodes (the attention logits
//! are usually `h · a_src` and `h · a_dst` matmuls), so the learnable
//! attention vectors get gradients through the fused backward below.

use crate::tape::{NodeId, Op, Tape};
use skipnode_tensor::Matrix;

/// Precomputed neighborhood structure for attention: for each destination
/// node, the list of source nodes attended over (self-loop included).
#[derive(Debug, Clone)]
pub struct AttentionGraph {
    neighbors: Vec<Vec<u32>>,
}

impl AttentionGraph {
    /// Build from an undirected edge list; every node attends over its
    /// neighbors plus itself.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut neighbors: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
        for &(u, v) in edges {
            if u != v {
                neighbors[u].push(v as u32);
                neighbors[v].push(u as u32);
            }
        }
        Self { neighbors }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Attention sources for one destination (self-loop first).
    pub fn sources(&self, v: usize) -> &[u32] {
        &self.neighbors[v]
    }
}

pub(crate) struct GatCache {
    pub graph: AttentionGraph,
    /// α_uv per destination, aligned with `graph.sources(v)` (empty on an
    /// inference tape, which never runs the backward).
    pub alphas: Vec<Vec<f32>>,
    /// LeakyReLU derivative per (v, u) pair (1.0 or `slope`).
    pub leaky_grad: Vec<Vec<f32>>,
    /// LeakyReLU slope, kept so the deferred inference executor can rerun
    /// [`gat_forward`] from the op record alone.
    pub slope: f32,
}

/// Forward attention aggregation, cached for the backward pass.
pub(crate) fn gat_forward(
    h: &Matrix,
    s_src: &Matrix,
    s_dst: &Matrix,
    graph: &AttentionGraph,
    slope: f32,
) -> (Matrix, Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let n = graph.nodes();
    assert_eq!(h.rows(), n, "feature rows");
    assert_eq!(s_src.shape(), (n, 1), "s_src must be n×1");
    assert_eq!(s_dst.shape(), (n, 1), "s_dst must be n×1");
    let d = h.cols();
    let mut out = Matrix::zeros(n, d);
    let mut alphas = Vec::with_capacity(n);
    let mut leaky_grad = Vec::with_capacity(n);
    for v in 0..n {
        let srcs = graph.sources(v);
        let mut scores = Vec::with_capacity(srcs.len());
        let mut lg = Vec::with_capacity(srcs.len());
        let sv = s_dst.get(v, 0);
        let mut max = f32::NEG_INFINITY;
        for &u in srcs {
            let raw = s_src.get(u as usize, 0) + sv;
            let (e, g) = if raw >= 0.0 {
                (raw, 1.0)
            } else {
                (slope * raw, slope)
            };
            max = max.max(e);
            scores.push(e);
            lg.push(g);
        }
        let mut total = 0.0f64;
        for e in scores.iter_mut() {
            *e = (*e - max).exp();
            total += *e as f64;
        }
        let inv = (1.0 / total) as f32;
        let row = out.row_mut(v);
        for (i, &u) in srcs.iter().enumerate() {
            scores[i] *= inv; // now α_uv
            let hu = h.row(u as usize);
            for (o, &x) in row.iter_mut().zip(hu) {
                *o += scores[i] * x;
            }
        }
        alphas.push(scores);
        leaky_grad.push(lg);
    }
    (out, alphas, leaky_grad)
}

/// Backward for the fused attention op. Returns `(dh, ds_src, ds_dst)`.
pub(crate) fn gat_backward(h: &Matrix, cache: &GatCache, g: &Matrix) -> (Matrix, Matrix, Matrix) {
    let n = cache.graph.nodes();
    let d = h.cols();
    let mut dh = Matrix::zeros(n, d);
    let mut ds_src = Matrix::zeros(n, 1);
    let mut ds_dst = Matrix::zeros(n, 1);
    for v in 0..n {
        let srcs = cache.graph.sources(v);
        let alphas = &cache.alphas[v];
        let gv = g.row(v);
        // dα_uv = g_v · h_u ; softmax backward ; leaky backward.
        let mut dalpha = Vec::with_capacity(srcs.len());
        let mut weighted_sum = 0.0f64;
        for (i, &u) in srcs.iter().enumerate() {
            let hu = h.row(u as usize);
            let dot: f32 = gv.iter().zip(hu).map(|(&a, &b)| a * b).sum();
            dalpha.push(dot);
            weighted_sum += (alphas[i] * dot) as f64;
            // dh_u += α_uv g_v
            let a = alphas[i];
            for (c, &gvc) in gv.iter().enumerate() {
                dh.set(u as usize, c, dh.get(u as usize, c) + a * gvc);
            }
        }
        let mut de_total = 0.0f32;
        for (i, &u) in srcs.iter().enumerate() {
            let de = alphas[i] * (dalpha[i] - weighted_sum as f32) * cache.leaky_grad[v][i];
            ds_src.set(u as usize, 0, ds_src.get(u as usize, 0) + de);
            de_total += de;
        }
        ds_dst.set(v, 0, ds_dst.get(v, 0) + de_total);
    }
    (dh, ds_src, ds_dst)
}

impl Tape {
    /// Fused GAT aggregation: attention-weighted neighborhood average of
    /// `h`, with logits `s_src` (per source) and `s_dst` (per destination)
    /// and LeakyReLU slope `slope`.
    pub fn gat_aggregate(
        &mut self,
        h: NodeId,
        s_src: NodeId,
        s_dst: NodeId,
        graph: &AttentionGraph,
        slope: f32,
    ) -> NodeId {
        let n = graph.nodes();
        assert_eq!(self.shape(h).0, n, "feature rows");
        assert_eq!(self.shape(s_src), (n, 1), "s_src must be n×1");
        assert_eq!(self.shape(s_dst), (n, 1), "s_dst must be n×1");
        if self.is_inference() {
            let cols = self.shape(h).1;
            return self.push_pending(
                n,
                cols,
                Op::GatAggregate {
                    h,
                    s_src,
                    s_dst,
                    cache: Box::new(GatCache {
                        graph: graph.clone(),
                        alphas: Vec::new(),
                        leaky_grad: Vec::new(),
                        slope,
                    }),
                },
            );
        }
        let (value, alphas, leaky_grad) = gat_forward(
            self.value(h),
            self.value(s_src),
            self.value(s_dst),
            graph,
            slope,
        );
        let rg = self.requires_grad(h) || self.requires_grad(s_src) || self.requires_grad(s_dst);
        self.push(
            value,
            Op::GatAggregate {
                h,
                s_src,
                s_dst,
                cache: Box::new(GatCache {
                    graph: graph.clone(),
                    alphas,
                    leaky_grad,
                    slope,
                }),
            },
            rg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_difference_check;
    use skipnode_tensor::SplitRng;

    fn line_graph() -> AttentionGraph {
        AttentionGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn self_loops_included() {
        let g = line_graph();
        assert_eq!(g.sources(0), &[0, 1]);
        assert_eq!(g.sources(1), &[1, 0, 2]);
    }

    #[test]
    fn attention_weights_sum_to_one_and_average_features() {
        let g = line_graph();
        let mut rng = SplitRng::new(1);
        let h = rng.uniform_matrix(4, 3, -1.0, 1.0);
        // Zero logits → uniform attention → plain neighborhood mean.
        let s = Matrix::zeros(4, 1);
        let (out, alphas, _) = gat_forward(&h, &s, &s, &g, 0.2);
        for (v, a) in alphas.iter().enumerate() {
            let total: f32 = a.iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "node {v}: {total}");
            let k = g.sources(v).len() as f32;
            assert!(a.iter().all(|&x| (x - 1.0 / k).abs() < 1e-5));
        }
        // out_1 = mean(h_1, h_0, h_2)
        for c in 0..3 {
            let want = (h.get(1, c) + h.get(0, c) + h.get(2, c)) / 3.0;
            assert!((out.get(1, c) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_wrt_features_matches_finite_difference() {
        let g = line_graph();
        let mut rng = SplitRng::new(2);
        let h = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let ssrc = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let sdst = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let dev = finite_difference_check(&h, 1e-2, |t, hid| {
            let a = t.constant(ssrc.clone());
            let b = t.constant(sdst.clone());
            t.gat_aggregate(hid, a, b, &g, 0.2)
        });
        assert!(dev < 3e-2, "dev {dev}");
    }

    #[test]
    fn gradient_wrt_src_logits_matches_finite_difference() {
        let g = line_graph();
        let mut rng = SplitRng::new(3);
        let h = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let ssrc = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let sdst = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let dev = finite_difference_check(&ssrc, 1e-2, |t, sid| {
            let hid = t.constant(h.clone());
            let b = t.constant(sdst.clone());
            t.gat_aggregate(hid, sid, b, &g, 0.2)
        });
        assert!(dev < 3e-2, "dev {dev}");
    }

    #[test]
    fn gradient_wrt_dst_logits_matches_finite_difference() {
        let g = line_graph();
        let mut rng = SplitRng::new(4);
        let h = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let ssrc = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let sdst = rng.uniform_matrix(4, 1, -0.5, 0.5);
        let dev = finite_difference_check(&sdst, 1e-2, |t, sid| {
            let hid = t.constant(h.clone());
            let a = t.constant(ssrc.clone());
            t.gat_aggregate(hid, a, sid, &g, 0.2)
        });
        assert!(dev < 3e-2, "dev {dev}");
    }

    #[test]
    fn isolated_node_attends_only_to_itself() {
        let g = AttentionGraph::from_edges(3, &[(0, 1)]);
        let h = Matrix::from_rows(&[&[1.0], &[2.0], &[7.0]]);
        let s = Matrix::zeros(3, 1);
        let (out, _, _) = gat_forward(&h, &s, &s, &g, 0.2);
        assert_eq!(out.get(2, 0), 7.0);
    }
}
