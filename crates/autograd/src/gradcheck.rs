//! Finite-difference gradient checking.
//!
//! Used pervasively by this crate's test suite: every op's analytic
//! backward is validated against a central finite difference of a scalar
//! functional of the forward output.

use crate::tape::{NodeId, Tape};
use skipnode_tensor::Matrix;

/// Check the analytic gradient of `build` at `input` against central
/// finite differences.
///
/// `build(tape, x_id)` must construct a graph rooted at some output node
/// and return it; the scalar functional is `0.5 * Σ out²` so the seed
/// gradient is simply `out`.
///
/// Returns the maximum absolute deviation between analytic and numeric
/// gradients. Callers assert a tolerance.
pub fn finite_difference_check(
    input: &Matrix,
    eps: f32,
    build: impl Fn(&mut Tape, NodeId) -> NodeId,
) -> f32 {
    // Analytic pass.
    let mut tape = Tape::new();
    let x = tape.param(input.clone());
    let out = build(&mut tape, x);
    let seed = tape.value(out).clone();
    let grads = tape.backward(out, seed);
    let analytic = grads[x].clone();

    // Numeric pass.
    let scalar = |m: &Matrix| -> f64 {
        let mut tape = Tape::new();
        let x = tape.constant(m.clone());
        let out = build(&mut tape, x);
        0.5 * skipnode_tensor::l2_norm_sq(tape.value(out))
    };
    let mut worst = 0.0f32;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let fd = ((scalar(&plus) - scalar(&minus)) / (2.0 * eps as f64)) as f32;
        let dev = (fd - analytic.as_slice()[i]).abs();
        worst = worst.max(dev);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_sparse::gcn_adjacency;
    use skipnode_tensor::SplitRng;
    use std::sync::Arc;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        SplitRng::new(seed).uniform_matrix(rows, cols, -1.0, 1.0)
    }

    #[test]
    fn matmul_gradient() {
        let x = rand_matrix(4, 3, 1);
        let w = rand_matrix(3, 5, 2);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let wid = t.constant(w.clone());
            t.matmul(xid, wid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn matmul_weight_gradient() {
        // Check gradient w.r.t. the second operand as well.
        let x = rand_matrix(4, 3, 3);
        let w = rand_matrix(3, 2, 4);
        let dev = finite_difference_check(&w, 1e-2, |t, wid| {
            let xid = t.constant(x.clone());
            t.matmul(xid, wid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn spmm_gradient() {
        let adj = Arc::new(gcn_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]));
        let x = rand_matrix(5, 3, 5);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let a = t.register_adj(adj.clone());
            t.spmm(a, xid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn relu_gradient() {
        // Keep inputs away from the kink.
        let mut x = rand_matrix(6, 4, 6);
        x.map_in_place(|v| if v.abs() < 0.2 { v + 0.4 } else { v });
        let dev = finite_difference_check(&x, 1e-3, |t, xid| t.relu(xid));
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn add_scaled_gradient() {
        let x = rand_matrix(3, 3, 7);
        let y = rand_matrix(3, 3, 8);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let yid = t.constant(y.clone());
            t.add_scaled(xid, yid, -0.7)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn add_bias_gradient_wrt_bias() {
        let x = rand_matrix(5, 3, 9);
        let b = rand_matrix(1, 3, 10);
        let dev = finite_difference_check(&b, 1e-2, |t, bid| {
            let xid = t.constant(x.clone());
            t.add_bias(xid, bid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn row_combine_gradient_through_both_branches() {
        let x = rand_matrix(6, 3, 11);
        let mask = [true, false, true, false, false, true];
        // conv branch = x*W, skip branch = x: both depend on x.
        let w = rand_matrix(3, 3, 12);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let wid = t.constant(w.clone());
            let conv = t.matmul(xid, wid);
            t.row_combine(conv, xid, &mask)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn concat_cols_gradient() {
        let x = rand_matrix(4, 3, 13);
        let w = rand_matrix(3, 2, 14);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let wid = t.constant(w.clone());
            let h = t.matmul(xid, wid);
            t.concat_cols(&[xid, h])
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn max_pool_gradient_away_from_ties() {
        let mut a = rand_matrix(4, 4, 15);
        a.map_in_place(|v| v * 2.0);
        let b = rand_matrix(4, 4, 16);
        let dev = finite_difference_check(&a, 1e-3, |t, aid| {
            let bid = t.constant(b.clone());
            t.max_pool(&[aid, bid])
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn readout_gradient_all_kinds() {
        use skipnode_tensor::{ReadoutKind, SegmentTable};
        // Three segments, one empty; max inputs scaled away from ties.
        let seg = Arc::new(SegmentTable::from_lens(&[3, 0, 4]));
        let mut x = rand_matrix(7, 3, 31);
        x.map_in_place(|v| v * 2.0);
        for kind in [ReadoutKind::Mean, ReadoutKind::Sum, ReadoutKind::Max] {
            let eps = if kind == ReadoutKind::Max { 1e-3 } else { 1e-2 };
            let dev = finite_difference_check(&x, eps, |t, xid| t.readout(xid, kind, &seg));
            assert!(dev < 2e-2, "{kind:?} dev {dev}");
        }
    }

    #[test]
    fn readout_composes_with_dense_head() {
        use skipnode_tensor::{ReadoutKind, SegmentTable};
        // Conv-style body → readout → dense head: the graph-classification
        // shape. Gradients must flow through the pooling into the body.
        let adj = Arc::new(gcn_adjacency(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]));
        let seg = Arc::new(SegmentTable::from_lens(&[3, 3]));
        let x = rand_matrix(6, 4, 32);
        let w = rand_matrix(4, 4, 33);
        let head = rand_matrix(4, 2, 34);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let a = t.register_adj(adj.clone());
            let wid = t.constant(w.clone());
            let hid = t.constant(head.clone());
            let h = t.spmm(a, xid);
            let h = t.matmul(h, wid);
            let h = t.relu(h);
            let r = t.readout(h, ReadoutKind::Mean, &seg);
            t.matmul(r, hid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn pairnorm_gradient() {
        let x = rand_matrix(6, 4, 17);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| t.pairnorm(xid, 1.0));
        assert!(dev < 3e-2, "dev {dev}");
    }

    #[test]
    fn hadamard_gradient() {
        let x = rand_matrix(3, 4, 18);
        let y = rand_matrix(3, 4, 19);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let yid = t.constant(y.clone());
            t.hadamard(xid, yid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn lin_comb_gradient() {
        let x = rand_matrix(3, 3, 20);
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let sq = t.hadamard(xid, xid);
            t.lin_comb(&[(xid, 0.3), (sq, 0.7)])
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn weighted_sum_gradient_wrt_weights() {
        let x1 = rand_matrix(4, 3, 21);
        let x2 = rand_matrix(4, 3, 22);
        let w = rand_matrix(1, 2, 23);
        let dev = finite_difference_check(&w, 1e-2, |t, wid| {
            let a = t.constant(x1.clone());
            let b = t.constant(x2.clone());
            t.weighted_sum(&[a, b], wid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn weighted_sum_gradient_wrt_inputs() {
        let x2 = rand_matrix(4, 3, 24);
        let w = rand_matrix(1, 2, 25);
        let x1 = rand_matrix(4, 3, 26);
        let dev = finite_difference_check(&x1, 1e-2, |t, xid| {
            let b = t.constant(x2.clone());
            let wid = t.constant(w.clone());
            t.weighted_sum(&[xid, b], wid)
        });
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn edge_score_gradient() {
        let h = rand_matrix(5, 3, 27);
        let edges = [(0usize, 1usize), (1, 2), (3, 4), (0, 4)];
        let dev = finite_difference_check(&h, 1e-2, |t, hid| t.edge_score(hid, &edges));
        assert!(dev < 2e-2, "dev {dev}");
    }

    #[test]
    fn deep_composite_gradient() {
        // A miniature 3-layer GCN with SkipNode and PairNorm: the ops must
        // compose correctly end-to-end.
        let adj = Arc::new(gcn_adjacency(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
        let x = rand_matrix(6, 4, 28);
        let w1 = rand_matrix(4, 4, 29);
        let w2 = rand_matrix(4, 4, 30);
        let mask = [false, true, false, true, true, false];
        let dev = finite_difference_check(&x, 1e-2, |t, xid| {
            let a = t.register_adj(adj.clone());
            let w1id = t.constant(w1.clone());
            let w2id = t.constant(w2.clone());
            let h = t.spmm(a, xid);
            let h = t.matmul(h, w1id);
            let h = t.relu(h);
            let h = t.row_combine(h, xid, &mask);
            let h = t.pairnorm(h, 1.0);
            let h = t.spmm(a, h);
            t.matmul(h, w2id)
        });
        assert!(dev < 5e-2, "dev {dev}");
    }
}
