//! Deferred execution for inference tapes ([`Tape::inference`]).
//!
//! An inference tape records shape-only placeholders during model
//! construction; [`Tape::run`] then materializes exactly the nodes the
//! requested outputs depend on. Two properties make this cheaper than the
//! eager training forward:
//!
//! 1. **Liveness-driven freeing.** Operand positions are scanned once to
//!    find each node's last consumer; the moment that consumer has run, the
//!    operand's buffer goes back to the [`workspace`] free-list. A
//!    depth-64 stack therefore runs in an O(1)-sized working set instead of
//!    retaining ~2 buffers per layer for a backward pass that never comes.
//! 2. **In-place reuse.** Elementwise ops (ReLU, scale, bias, masks,
//!    row-combine, Hadamard, max-pool) steal a dying operand's buffer and
//!    mutate it in place rather than copy-then-free. All eager elementwise
//!    kernels are themselves copy-then-mutate-in-place, so the arithmetic —
//!    and thus the result — is bit-identical to the training forward.
//!
//! Node values the caller asked to `keep` are pinned and never freed; read
//! them out with [`Tape::take_value`] afterwards.

use crate::attention::gat_forward;
use crate::ops::skip_conv_compute;
use crate::tape::{NodeId, Op, Tape, Value};
use skipnode_tensor::quant::{qgemm, QuantizedMatrix};
use skipnode_tensor::segment::segment_reduce_into;
use skipnode_tensor::{workspace, Matrix};

/// Sentinel for "no consumer".
pub(crate) const NO_USE: usize = usize::MAX;

/// Visit the raw node indices an op reads.
pub(crate) fn op_inputs(op: &Op, f: &mut dyn FnMut(usize)) {
    match op {
        Op::Leaf => {}
        Op::MatMul(a, b) | Op::Hadamard(a, b) | Op::AddBias(a, b) => {
            f(a.0);
            f(b.0);
        }
        Op::AddScaled(a, b, _) => {
            f(a.0);
            f(b.0);
        }
        Op::Spmm { x, .. } => f(x.0),
        Op::Scale(x, _)
        | Op::Relu(x)
        | Op::Mask { x, .. }
        | Op::RowMask { x, .. }
        | Op::PairNorm { x, .. } => f(x.0),
        Op::RowCombine { conv, skip, .. } => {
            f(conv.0);
            f(skip.0);
        }
        Op::SkipConv {
            x,
            skip,
            w,
            b,
            init_residual,
            residual,
            ..
        } => {
            f(x.0);
            f(skip.0);
            f(w.0);
            if let Some(b) = b {
                f(b.0);
            }
            if let Some((h0, _)) = init_residual {
                f(h0.0);
            }
            if let Some(res) = residual {
                f(res.0);
            }
        }
        Op::ConcatCols(parts) => parts.iter().for_each(|p| f(p.0)),
        Op::MaxPool { xs, .. } => xs.iter().for_each(|p| f(p.0)),
        Op::Readout { x, .. } => f(x.0),
        Op::LinComb(parts) => parts.iter().for_each(|&(p, _)| f(p.0)),
        Op::WeightedSum { xs, w } => {
            xs.iter().for_each(|p| f(p.0));
            f(w.0);
        }
        Op::EdgeScore { h, .. } => f(h.0),
        Op::GatAggregate {
            h, s_src, s_dst, ..
        } => {
            f(h.0);
            f(s_src.0);
            f(s_dst.0);
        }
    }
}

impl Tape {
    /// Materialize the nodes that `keep` depends on (dead nodes are never
    /// computed), freeing every intermediate as soon as its last consumer
    /// has run. Only valid on a tape built with [`Tape::inference`]; `keep`
    /// values survive and can be moved out with [`Tape::take_value`].
    pub fn run(&mut self, keep: &[NodeId]) {
        assert!(
            self.is_inference(),
            "Tape::run is the inference executor; training tapes evaluate eagerly"
        );
        let n = self.nodes.len();
        let mut needed = vec![false; n];
        let mut pinned = vec![false; n];
        for &k in keep {
            needed[k.0] = true;
            pinned[k.0] = true;
        }
        // Dead-code elimination: ops are recorded in topological order, so
        // one reverse sweep marks the transitive inputs of the kept outputs.
        for idx in (0..n).rev() {
            if needed[idx] {
                op_inputs(&self.nodes[idx].op, &mut |p| needed[p] = true);
            }
        }
        // Liveness: the last live consumer of each needed node.
        let mut last_use = vec![NO_USE; n];
        for (idx, _) in needed.iter().enumerate().filter(|(_, &nd)| nd) {
            op_inputs(&self.nodes[idx].op, &mut |p| last_use[p] = idx);
        }
        let mut inputs: Vec<usize> = Vec::new();
        for (idx, _) in needed.iter().enumerate().filter(|(_, &nd)| nd) {
            if matches!(self.nodes[idx].value, Value::Pending { .. }) {
                self.eval_node(idx, &last_use, &pinned, false);
            }
            inputs.clear();
            op_inputs(&self.nodes[idx].op, &mut |p| inputs.push(p));
            inputs.sort_unstable();
            inputs.dedup();
            for &p in &inputs {
                if !pinned[p] && last_use[p] == idx {
                    self.release(p);
                }
            }
        }
    }

    /// Drop a node's buffer back to the workspace, leaving a shape-only
    /// placeholder. No-op if the value was already stolen for in-place
    /// reuse; shared constants just drop their `Arc`.
    pub(crate) fn release(&mut self, idx: usize) {
        let (rows, cols) = self.nodes[idx].value.shape();
        if let Value::Owned(m) =
            std::mem::replace(&mut self.nodes[idx].value, Value::Pending { rows, cols })
        {
            workspace::give(m);
        }
    }

    /// An owned copy of node `src`'s value for in-place mutation. When
    /// `src` dies at `at` (and is not pinned, not `aliases`-shared with
    /// another operand the caller still reads, and holds an owned buffer),
    /// the buffer is stolen instead of copied.
    fn reuse_or_copy(
        &mut self,
        src: usize,
        at: usize,
        last_use: &[usize],
        pinned: &[bool],
        aliases: &[usize],
    ) -> Matrix {
        let stealable = !pinned[src]
            && last_use[src] == at
            && !aliases.contains(&src)
            && matches!(self.nodes[src].value, Value::Owned(_));
        if stealable {
            let (rows, cols) = self.nodes[src].value.shape();
            match std::mem::replace(&mut self.nodes[src].value, Value::Pending { rows, cols }) {
                Value::Owned(m) => m,
                _ => unreachable!(),
            }
        } else {
            workspace::take_copy(self.val(src))
        }
    }

    /// Execute one pending op. The op record is temporarily swapped out so
    /// buffer-stealing (`&mut self`) can coexist with reading it.
    ///
    /// With `retain: true` (compiled training replay,
    /// [`crate::train_exec`]) the backward-only op records are refreshed
    /// alongside the value: the fused SkipNode layer's `p_active` /
    /// `relu_active` caches are written back instead of recycled, and
    /// max-pool recomputes its `argmax`. Inference passes `false` and
    /// skips that bookkeeping.
    pub(crate) fn eval_node(
        &mut self,
        idx: usize,
        last_use: &[usize],
        pinned: &[bool],
        retain: bool,
    ) {
        let mut op = std::mem::replace(&mut self.nodes[idx].op, Op::Leaf);
        let value = match &mut op {
            Op::Leaf => unreachable!("a leaf is never pending"),
            Op::MatMul(a, b) => {
                // Quantized inference routes activation × leaf-weight
                // products through the int8 kernel; per-eval calibration
                // is one O(k·n) pass against O(m·k·n) of dot work.
                if self.is_quantized() && matches!(self.nodes[b.0].op, Op::Leaf) {
                    let qb = QuantizedMatrix::from_cols(self.val(b.0));
                    let av = self.val(a.0);
                    let mut out = workspace::take(av.rows(), qb.n());
                    qgemm(av, &qb, &mut out);
                    out
                } else {
                    self.val(a.0).matmul(self.val(b.0))
                }
            }
            Op::Spmm { adj, x } => self.adjs[*adj].mat.spmm(self.val(x.0)),
            Op::AddScaled(a, b, c) => {
                let mut v = self.reuse_or_copy(a.0, idx, last_use, pinned, &[b.0]);
                v.add_scaled(self.val(b.0), *c);
                v
            }
            Op::Scale(x, c) => {
                let mut v = self.reuse_or_copy(x.0, idx, last_use, pinned, &[]);
                v.scale_in_place(*c);
                v
            }
            Op::AddBias(x, bias) => {
                let mut v = self.reuse_or_copy(x.0, idx, last_use, pinned, &[bias.0]);
                crate::subset::add_bias_in_place(&mut v, self.val(bias.0));
                v
            }
            Op::Relu(x) => {
                let mut v = self.reuse_or_copy(x.0, idx, last_use, pinned, &[]);
                crate::subset::relu_in_place(&mut v);
                v
            }
            Op::Mask { x, mask, .. } => {
                let mut v = self.reuse_or_copy(x.0, idx, last_use, pinned, &[]);
                for (t, &m) in v.as_mut_slice().iter_mut().zip(mask.iter()) {
                    *t *= m;
                }
                v
            }
            Op::RowMask { x, factors, .. } => {
                let mut v = self.reuse_or_copy(x.0, idx, last_use, pinned, &[]);
                for (r, &f) in factors.iter().enumerate() {
                    for t in v.row_mut(r) {
                        *t *= f;
                    }
                }
                v
            }
            Op::RowCombine {
                conv,
                skip,
                take_skip,
            } => {
                let mut v = self.reuse_or_copy(conv.0, idx, last_use, pinned, &[skip.0]);
                for (r, &take) in take_skip.iter().enumerate() {
                    if take {
                        v.row_mut(r).copy_from_slice(self.val(skip.0).row(r));
                    }
                }
                v
            }
            Op::SkipConv {
                adj,
                x,
                skip,
                w,
                b,
                init_residual,
                identity_map,
                residual,
                cache,
            } => {
                let args = crate::ops::SkipConvArgs {
                    mat: &self.adjs[*adj].mat,
                    xv: self.val(x.0),
                    wv: self.val(w.0),
                    bv: b.map(|b| self.val(b.0)),
                    sv: self.val(skip.0),
                    init: init_residual.map(|(h0, a)| (self.val(h0.0), a)),
                    beta: *identity_map,
                    resv: residual.map(|r| self.val(r.0)),
                };
                let (value, p_active, relu_active) =
                    skip_conv_compute(&args, &cache.active, &cache.col_map);
                if retain {
                    // Replay keeps the backward caches; recycle last
                    // epoch's buffers (`give` ignores the 0×0 case).
                    workspace::give(std::mem::replace(&mut cache.p_active, p_active));
                    workspace::give(std::mem::replace(&mut cache.relu_active, relu_active));
                } else {
                    // Backward-only caches; recycle them immediately.
                    workspace::give(p_active);
                    workspace::give(relu_active);
                }
                value
            }
            Op::ConcatCols(parts) => {
                let mats: Vec<&Matrix> = parts.iter().map(|p| self.val(p.0)).collect();
                Matrix::hcat(&mats)
            }
            Op::MaxPool { xs, argmax } => {
                let aliases: Vec<usize> = xs[1..].iter().map(|p| p.0).collect();
                let mut v = self.reuse_or_copy(xs[0].0, idx, last_use, pinned, &aliases);
                if retain {
                    // Refresh the backward argmax record for replay.
                    argmax.clear();
                    argmax.resize(v.len(), 0);
                }
                for (k, p) in xs.iter().enumerate().skip(1) {
                    let pv = self.val(p.0);
                    if retain {
                        for (i, &cand) in pv.as_slice().iter().enumerate() {
                            let t = &mut v.as_mut_slice()[i];
                            if cand > *t {
                                *t = cand;
                                argmax[i] = k as u8;
                            }
                        }
                    } else {
                        crate::subset::max_pool_in_place(&mut v, pv);
                    }
                }
                v
            }
            Op::Readout {
                x,
                kind,
                seg,
                argmax,
            } => {
                let (rows, cols) = self.nodes[idx].value.shape();
                let mut v = workspace::take_scratch(rows, cols);
                if retain {
                    // Refresh the backward argmax record for replay.
                    segment_reduce_into(self.val(x.0), seg, *kind, &mut v, argmax);
                } else {
                    let mut scratch = Vec::new();
                    segment_reduce_into(self.val(x.0), seg, *kind, &mut v, &mut scratch);
                }
                v
            }
            Op::PairNorm { x, s } => crate::tape::pairnorm_forward(self.val(x.0), *s),
            Op::Hadamard(a, b) => {
                let mut v = self.reuse_or_copy(a.0, idx, last_use, pinned, &[b.0]);
                for (t, &bv) in v.as_mut_slice().iter_mut().zip(self.val(b.0).as_slice()) {
                    *t *= bv;
                }
                v
            }
            Op::LinComb(parts) => {
                let (rows, cols) = self.nodes[idx].value.shape();
                let mut v = workspace::take_scratch(rows, cols);
                let operands: Vec<(&Matrix, f32)> =
                    parts.iter().map(|&(p, c)| (self.val(p.0), c)).collect();
                crate::subset::lin_comb_into(&mut v, &operands);
                v
            }
            Op::WeightedSum { xs, w } => {
                let coef: Vec<f32> = (0..xs.len()).map(|k| self.val(w.0).get(0, k)).collect();
                let (rows, cols) = self.nodes[idx].value.shape();
                let mut v = workspace::take_scratch(rows, cols);
                let operands: Vec<(&Matrix, f32)> = xs
                    .iter()
                    .zip(&coef)
                    .map(|(x, &c)| (self.val(x.0), c))
                    .collect();
                crate::subset::lin_comb_into(&mut v, &operands);
                v
            }
            Op::EdgeScore { h, edges } => {
                let hv = self.val(h.0);
                let mut v = workspace::take(edges.len(), 1);
                for (e, &(src, dst)) in edges.iter().enumerate() {
                    let dot: f32 = hv
                        .row(src)
                        .iter()
                        .zip(hv.row(dst))
                        .map(|(&a, &b)| a * b)
                        .sum();
                    v.set(e, 0, dot);
                }
                v
            }
            Op::GatAggregate {
                h,
                s_src,
                s_dst,
                cache,
            } => {
                let (out, _alphas, _leaky) = gat_forward(
                    self.val(h.0),
                    self.val(s_src.0),
                    self.val(s_dst.0),
                    &cache.graph,
                    cache.slope,
                );
                out
            }
        };
        debug_assert_eq!(
            value.shape(),
            self.nodes[idx].value.shape(),
            "op produced a shape different from its pending placeholder"
        );
        self.nodes[idx].op = op;
        self.nodes[idx].value = Value::Owned(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_sparse::gcn_adjacency;
    use skipnode_tensor::SplitRng;
    use std::sync::Arc;

    fn assert_same(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.as_slice(), b.as_slice(), "values differ bit-for-bit");
    }

    /// A small fused-layer chain built identically on both tape kinds.
    fn build(tape: &mut Tape, rng: &mut SplitRng) -> NodeId {
        let adj = tape.register_adj(Arc::new(gcn_adjacency(3, &[(0, 1), (1, 2)])));
        let x = tape.constant(rng.uniform_matrix(3, 4, -1.0, 1.0));
        let w = tape.param(rng.uniform_matrix(4, 4, -0.5, 0.5));
        let b = tape.param(rng.uniform_matrix(1, 4, -0.1, 0.1));
        let skip = tape.spmm(adj, x);
        let sk = tape.matmul(skip, w);
        let fused = tape.skip_conv(adj, x, sk, w, b, &[false, true, false]);
        let dropped = tape.dropout(fused, 0.3, rng);
        let normed = tape.pairnorm(dropped, 1.0);
        tape.relu(normed)
    }

    #[test]
    fn deferred_run_matches_eager_forward_bitwise() {
        let mut rng_a = SplitRng::new(77);
        let mut eager = Tape::new();
        let out_a = build(&mut eager, &mut rng_a);

        let mut rng_b = SplitRng::new(77);
        let mut infer = Tape::inference();
        let out_b = build(&mut infer, &mut rng_b);
        infer.run(&[out_b]);

        assert_same(eager.value(out_a), infer.value(out_b));
    }

    #[test]
    fn intermediates_are_freed_and_kept_outputs_survive() {
        let mut rng = SplitRng::new(3);
        let mut infer = Tape::inference();
        let x = infer.constant(rng.uniform_matrix(5, 3, -1.0, 1.0));
        let a = infer.relu(x);
        let b = infer.scale(a, 2.0);
        let c = infer.add(b, b);
        infer.run(&[c]);
        // Kept output is materialized; the dead intermediate `a`'s slot was
        // recycled (either stolen in place or released).
        assert_eq!(infer.shape(c), (5, 3));
        let _ = infer.take_value(c);
        assert!(matches!(
            infer.nodes[a.0].value,
            Value::Pending { .. } | Value::Owned(_)
        ));
    }

    #[test]
    fn aliased_operands_are_not_stolen() {
        // c = b + b must not steal b's buffer for the in-place add while the
        // second operand still reads it.
        let mut infer = Tape::inference();
        let x = infer.constant(Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]));
        let b = infer.scale(x, 3.0);
        let c = infer.add(b, b);
        infer.run(&[c]);
        assert_eq!(infer.value(c).as_slice(), &[6.0, -12.0, 18.0, 24.0]);
    }

    #[test]
    fn dead_branches_are_never_computed() {
        let mut infer = Tape::inference();
        let x = infer.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let live = infer.scale(x, 2.0);
        let dead = infer.scale(x, 5.0);
        infer.run(&[live]);
        assert!(matches!(infer.nodes[dead.0].value, Value::Pending { .. }));
        assert_eq!(infer.value(live).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn quantized_matmul_tracks_f32_and_skips_non_leaf_weights() {
        let mut rng = SplitRng::new(21);
        let x = rng.uniform_matrix(12, 8, -1.0, 1.0);
        let w = rng.uniform_matrix(8, 6, -0.5, 0.5);

        let mut f = Tape::inference();
        let y_f = {
            let xn = f.constant(x.clone());
            let wn = f.param(w.clone());
            f.matmul(xn, wn)
        };
        f.run(&[y_f]);

        let mut q = Tape::inference_quantized();
        assert!(q.is_quantized() && q.is_inference());
        let y_q = {
            let xn = q.constant(x.clone());
            let wn = q.param(w.clone());
            q.matmul(xn, wn)
        };
        q.run(&[y_q]);
        // Symmetric 8-bit over k=8 terms of magnitude <= 0.5: well under
        // 0.1 absolute error, but never bit-equal to the f32 GEMM.
        for (a, b) in f.value(y_f).as_slice().iter().zip(q.value(y_q).as_slice()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }

        // A product whose right operand is computed (not a leaf) must stay
        // on the f32 path bit-for-bit.
        let build_relu_chain = |tape: &mut Tape| -> NodeId {
            let xn = tape.constant(x.clone());
            let wn = tape.param(w.clone());
            let wr = tape.relu(wn);
            tape.matmul(xn, wr)
        };
        let mut eager = Tape::new();
        let y_e = build_relu_chain(&mut eager);
        let mut q2 = Tape::inference_quantized();
        let y_2 = build_relu_chain(&mut q2);
        q2.run(&[y_2]);
        assert_same(eager.value(y_e), q2.value(y_2));
    }

    #[test]
    #[should_panic(expected = "backward on an inference tape")]
    fn backward_is_rejected_on_inference_tapes() {
        let mut infer = Tape::inference();
        let x = infer.constant(Matrix::from_rows(&[&[1.0]]));
        let y = infer.scale(x, 2.0);
        infer.run(&[y]);
        infer.backward(y, Matrix::from_rows(&[&[1.0]]));
    }
}
