//! Compiled training: record a tape once, replay it every epoch.
//!
//! Eager training rebuilds the whole [`Tape`] per epoch — re-pushing every
//! node, re-cloning every parameter, and running a backward pass that
//! allocates a fresh gradient matrix per node. [`TrainProgram`] compiles a
//! recorded tape into a fixed forward+backward schedule executed against
//! the same node storage each epoch:
//!
//! - **Record once / replay many.** The tape's op records (and their
//!   shapes) depend only on the model plan and strategy, never on drawn
//!   values, so one probe forward fixes the schedule. Stochastic records —
//!   dropout masks, GRAND row masks, SkipNode skip sets — are refreshed per
//!   epoch by [`TrainProgram::begin_epoch`] in node order, consuming the
//!   per-epoch RNG stream exactly as the eager constructors do, which keeps
//!   replayed values byte-identical to a freshly recorded tape.
//! - **Whole-program liveness.** Forward and backward are laid out on one
//!   combined timeline (forward op `j` at position `j`, backward step of
//!   node `j` at position `2N−1−j`); every node value's true last read is
//!   computed at compile time, and the buffer is recycled to the
//!   [`workspace`] free-list the moment that read has happened — including
//!   reads *by the backward pass* (ReLU masks, GEMM operands), which the
//!   eager tape must keep alive wholesale.
//! - **Gradient recycling.** Each backward step owns its upstream gradient:
//!   elementwise ops mutate it in place and pass it down, dying forward
//!   intermediates are stolen for gradient math (ReLU), and every buffer
//!   that stops flowing is given back to the workspace instead of parking
//!   in a per-epoch `Vec<Option<Matrix>>`.
//!
//! The eager tape remains the reference implementation: equivalence tests
//! assert replayed losses, values, and parameter gradients are
//! bit-identical to it. Ops with no replay support (GAT's fused attention
//! keeps per-forward caches the schedule cannot refresh) are rejected at
//! compile time with [`CompileError::UnsupportedOp`] — callers fall back to
//! eager recording explicitly, never silently.

use crate::infer::{op_inputs, NO_USE};
use crate::tape::{accum, pairnorm_backward, NodeId, Op, Tape, Value};
use skipnode_sparse::{CsrMatrix, COL_SKIP};
use skipnode_tensor::segment::segment_reduce_backward_into;
use skipnode_tensor::{workspace, Matrix, SplitRng};
use std::sync::Arc;

/// Why a recorded tape could not be compiled into a [`TrainProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A live node's op has no compiled-replay support.
    UnsupportedOp {
        /// Raw tape index of the offending node.
        node: usize,
        /// Op name, for the error message.
        op: &'static str,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnsupportedOp { node, op } => write!(
                f,
                "tape node {node} uses op {op}, which has no compiled-replay \
                 support; record this model eagerly instead"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Per-epoch source of SkipNode sampling decisions.
///
/// The compiled program knows *where* skip masks sit on the tape but not
/// the sampling distribution (uniform vs degree-biased lives in the model
/// crates); the sampler fills each mask from the epoch RNG with exactly the
/// draws the eager forward would have made.
pub trait EpochSampler {
    /// Fill `out` with this layer's skip decisions (`true` = skip the
    /// node), consuming `rng` exactly as the eager strategy does.
    fn skip_mask(&mut self, rng: &mut SplitRng, out: &mut [bool]);
}

/// A compiled, epoch-resident training step. See the module docs.
pub struct TrainProgram {
    tape: Tape,
    heads: Vec<NodeId>,
    param_nodes: Vec<NodeId>,
    /// Raw node index → slot in [`TrainProgram::backward`]'s result
    /// (`u32::MAX` for non-parameter nodes).
    param_slot: Vec<u32>,
    /// Nodes the heads transitively depend on (dead nodes are never
    /// computed — their stochastic records still consume RNG draws).
    needed: Vec<bool>,
    /// Never freed or stolen: leaves and heads.
    pinned: Vec<bool>,
    /// Last read of each node's value on the combined forward+backward
    /// timeline: forward op `j` reads at position `j`, the backward step of
    /// node `j` reads at position `2N−1−j`.
    last_value_use: Vec<usize>,
    /// Values to recycle after forward step / backward step of each node.
    free_after_fwd: Vec<Vec<u32>>,
    free_after_bwd: Vec<Vec<u32>>,
    /// Gradient slots, all `None` between epochs (kept for capacity).
    grads: Vec<Option<Matrix>>,
    /// Scratch for redrawing fused skip masks.
    mask_scratch: Vec<bool>,
    /// Gradient-checkpointing schedule, `None` when checkpointing is off.
    ck: Option<CkSchedule>,
}

/// Segmented replay schedule for tape-level gradient checkpointing.
///
/// The node range is split into contiguous segments. The main forward
/// drops every interior value at the end of its segment, keeping only
/// **boundaries** — values some later segment's forward reads — plus
/// pinned leaves and heads. Backward walks segments in reverse: each
/// segment's dropped values are recomputed (bit-identical — all
/// stochastic records live on op records drawn once per epoch), its
/// backward steps run, and then everything the segment owns is swept back
/// to the workspace. Peak residency falls from O(depth) to
/// O(depth/segments + segments) buffers.
struct CkSchedule {
    /// Segment `s` covers node indices `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
    /// [`TrainProgram::last_value_use`] with every cross-segment last use
    /// masked to [`NO_USE`]: those values must survive until their owning
    /// segment's end-of-backward sweep, so neither the stealing heuristics
    /// nor the free lists may consume them.
    last_use: Vec<usize>,
    /// Intra-segment subsets of the plain free lists (cross-segment frees
    /// are deferred to the sweep — a later segment's backward must never
    /// free a value an earlier segment's recompute still reads).
    free_after_fwd: Vec<Vec<u32>>,
    free_after_bwd: Vec<Vec<u32>>,
    /// Values to drop at the end of each segment's main forward: needed,
    /// non-pinned, non-boundary values whose last use is a backward read.
    /// Dropping them (for recompute later) is the memory saving.
    drop_after_seg: Vec<Vec<u32>>,
}

impl TrainProgram {
    /// Compile a recorded (eager) tape into a replayable program.
    ///
    /// `heads` are the loss outputs: they are pinned across the forward
    /// pass, and dead-code elimination keeps only their dependencies.
    pub fn compile(tape: Tape, heads: Vec<NodeId>) -> Result<Self, CompileError> {
        assert!(
            !tape.is_inference(),
            "TrainProgram compiles eagerly recorded tapes; inference tapes \
             hold no gradient bookkeeping"
        );
        let n = tape.len();
        let mut needed = vec![false; n];
        let mut pinned = vec![false; n];
        for &h in &heads {
            needed[h.0] = true;
            pinned[h.0] = true;
        }
        for idx in (0..n).rev() {
            if needed[idx] {
                op_inputs(&tape.nodes[idx].op, &mut |p| needed[p] = true);
            }
        }
        for (idx, node) in tape.nodes.iter().enumerate() {
            if matches!(node.op, Op::Leaf) {
                pinned[idx] = true;
            }
            if needed[idx] {
                if let Op::GatAggregate { .. } = node.op {
                    return Err(CompileError::UnsupportedOp {
                        node: idx,
                        op: "GatAggregate",
                    });
                }
            }
        }

        // Combined-timeline liveness: process reads in execution order
        // (forward ascending, then backward descending over node indices)
        // and overwrite unconditionally — the final write is the last read.
        let mut last_value_use = vec![NO_USE; n];
        for (idx, &live) in needed.iter().enumerate() {
            if live {
                op_inputs(&tape.nodes[idx].op, &mut |p| last_value_use[p] = idx);
            }
        }
        for idx in (0..n).rev() {
            // A backward step executes exactly for needed nodes that
            // require gradients (every such node receives a gradient from
            // the seeded heads through an all-requires-grad consumer
            // chain).
            if needed[idx] && tape.nodes[idx].requires_grad {
                let pos = 2 * n - 1 - idx;
                backward_value_reads(&tape, idx, &mut |p| last_value_use[p] = pos);
            }
        }

        let mut free_after_fwd = vec![Vec::new(); n];
        let mut free_after_bwd = vec![Vec::new(); n];
        for v in 0..n {
            if pinned[v] || !needed[v] || last_value_use[v] == NO_USE {
                continue;
            }
            let last = last_value_use[v];
            if last < n {
                free_after_fwd[last].push(v as u32);
            } else {
                free_after_bwd[2 * n - 1 - last].push(v as u32);
            }
        }

        let param_nodes = tape.params().to_vec();
        let mut param_slot = vec![u32::MAX; n];
        for (slot, id) in param_nodes.iter().enumerate() {
            param_slot[id.0] = slot as u32;
        }
        let grads = (0..n).map(|_| None).collect();
        Ok(Self {
            tape,
            heads,
            param_nodes,
            param_slot,
            needed,
            pinned,
            last_value_use,
            free_after_fwd,
            free_after_bwd,
            grads,
            mask_scratch: Vec::new(),
            ck: None,
        })
    }

    /// Split the schedule into `segments` contiguous node segments and
    /// replay with gradient checkpointing: interior activations are
    /// dropped after their segment's forward pass and recomputed during
    /// backward, one segment at a time. `segments <= 1` disables
    /// checkpointing. Replayed values and gradients stay **bit-identical**
    /// to the non-checkpointed program: recompute re-executes the same
    /// kernels on the same op records (masks, skip sets, and column maps
    /// are drawn once per epoch by [`TrainProgram::begin_epoch`], never
    /// redrawn by recompute).
    pub fn enable_checkpointing(&mut self, segments: usize) {
        let n = self.tape.len();
        if segments <= 1 || n == 0 {
            self.ck = None;
            return;
        }
        let segments = segments.min(n);
        let mut bounds = Vec::with_capacity(segments + 1);
        for s in 0..=segments {
            bounds.push(s * n / segments);
        }
        let mut seg_of = vec![0u32; n];
        for s in 0..segments {
            for v in seg_of[bounds[s]..bounds[s + 1]].iter_mut() {
                *v = s as u32;
            }
        }
        // A boundary is a value some later segment's forward reads: it
        // must stay materialized from the main forward until its own
        // segment's backward sweep, because that later segment's
        // recompute (and backward, whose value reads are all forward
        // inputs or the node itself) consumes it.
        let mut boundary = vec![false; n];
        for idx in 0..n {
            if self.needed[idx] {
                let seg = seg_of[idx];
                op_inputs(&self.tape.nodes[idx].op, &mut |p| {
                    if seg_of[p] != seg {
                        boundary[p] = true;
                    }
                });
            }
        }
        let mut last_use = self.last_value_use.clone();
        for v in 0..n {
            let last = last_use[v];
            if last == NO_USE {
                continue;
            }
            let reader = if last < n { last } else { 2 * n - 1 - last };
            if seg_of[reader] != seg_of[v] {
                last_use[v] = NO_USE;
            }
        }
        let keep_intra = |lists: &[Vec<u32>]| -> Vec<Vec<u32>> {
            lists
                .iter()
                .enumerate()
                .map(|(j, vs)| {
                    vs.iter()
                        .copied()
                        .filter(|&v| seg_of[v as usize] == seg_of[j])
                        .collect()
                })
                .collect()
        };
        let free_after_fwd = keep_intra(&self.free_after_fwd);
        let free_after_bwd = keep_intra(&self.free_after_bwd);
        let mut drop_after_seg = vec![Vec::new(); segments];
        for v in 0..n {
            if self.needed[v]
                && !self.pinned[v]
                && !boundary[v]
                && self.last_value_use[v] != NO_USE
                && self.last_value_use[v] >= n
            {
                drop_after_seg[seg_of[v] as usize].push(v as u32);
            }
        }
        self.ck = Some(CkSchedule {
            bounds,
            last_use,
            free_after_fwd,
            free_after_bwd,
            drop_after_seg,
        });
    }

    /// Whether gradient checkpointing is active.
    pub fn is_checkpointing(&self) -> bool {
        self.ck.is_some()
    }

    /// The loss heads, in recording order.
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// Parameter nodes in registration (binding) order — gradient slots in
    /// [`TrainProgram::backward`]'s result use the same order.
    pub fn param_nodes(&self) -> &[NodeId] {
        &self.param_nodes
    }

    /// Value of a node (heads stay materialized until the next
    /// [`TrainProgram::begin_epoch`]).
    pub fn value(&self, id: NodeId) -> &Matrix {
        self.tape.value(id)
    }

    /// Re-point the program's registered adjacency at this epoch's sampled
    /// matrix. Transpose/symmetry metadata is cached on the matrix itself,
    /// so re-setting the same `Arc` every epoch is O(1), exactly like the
    /// eager path's per-epoch [`Tape::register_adj`].
    ///
    /// # Panics
    /// Panics if the recorded tape registered anything other than exactly
    /// one adjacency.
    pub fn set_adjacency(&mut self, mat: Arc<CsrMatrix>) {
        assert_eq!(
            self.tape.adjs.len(),
            1,
            "compiled replay expects exactly one registered adjacency"
        );
        self.tape.replace_adj(0, mat);
    }

    /// Copy current parameter values into the program's leaf slots
    /// (replaces the eager path's per-epoch parameter cloning; the copy is
    /// into buffers that already live on the tape).
    ///
    /// # Panics
    /// Panics on a count or shape mismatch with the recorded parameters.
    pub fn load_params<'a>(&mut self, values: impl IntoIterator<Item = &'a Matrix>) {
        let mut count = 0;
        for (slot, v) in values.into_iter().enumerate() {
            let id = self
                .param_nodes
                .get(slot)
                .unwrap_or_else(|| panic!("more parameter values than recorded parameters"));
            match &mut self.tape.nodes[id.0].value {
                Value::Owned(m) => {
                    assert_eq!(m.shape(), v.shape(), "parameter {slot} shape mismatch");
                    m.as_mut_slice().copy_from_slice(v.as_slice());
                }
                _ => unreachable!("parameters are owned leaves"),
            }
            count += 1;
        }
        assert_eq!(
            count,
            self.param_nodes.len(),
            "fewer parameter values than recorded parameters"
        );
    }

    /// Start an epoch: recycle every non-leaf value from the previous
    /// replay and redraw all stochastic records in node order, consuming
    /// `rng` exactly as the eager constructors would (dead nodes included —
    /// the eager forward drew their masks too, so skipping them would
    /// desynchronize the stream).
    pub fn begin_epoch<S: EpochSampler>(&mut self, sampler: &mut S, rng: &mut SplitRng) {
        let mut scratch = std::mem::take(&mut self.mask_scratch);
        for idx in 0..self.tape.len() {
            if !matches!(self.tape.nodes[idx].op, Op::Leaf) {
                self.tape.release(idx);
            }
            match &mut self.tape.nodes[idx].op {
                Op::Mask { mask, rate, .. } => {
                    let scale = (1.0 / (1.0 - *rate)) as f32;
                    for m in mask.iter_mut() {
                        *m = if rng.bernoulli(*rate) { 0.0 } else { scale };
                    }
                }
                Op::RowMask { factors, rate, .. } => {
                    let scale = (1.0 / (1.0 - *rate)) as f32;
                    for f in factors.iter_mut() {
                        *f = if rng.bernoulli(*rate) { 0.0 } else { scale };
                    }
                }
                Op::RowCombine { take_skip, .. } => {
                    sampler.skip_mask(rng, take_skip);
                }
                Op::SkipConv { cache, .. } => {
                    scratch.clear();
                    scratch.resize(cache.col_map.len(), false);
                    sampler.skip_mask(rng, &mut scratch);
                    // Rebuild the active set / column map exactly as
                    // `Tape::skip_conv_step` does at recording time.
                    cache.active.clear();
                    for (r, &take) in scratch.iter().enumerate() {
                        if take {
                            cache.col_map[r] = COL_SKIP;
                        } else {
                            cache.col_map[r] = cache.active.len() as u32;
                            cache.active.push(r as u32);
                        }
                    }
                }
                _ => {}
            }
        }
        self.mask_scratch = scratch;
    }

    /// Execute the forward schedule: live nodes only, recycling each value
    /// at its last forward read (values the backward pass still needs stay
    /// materialized until their backward read — or, under checkpointing,
    /// only until the end of their segment).
    pub fn replay_forward(&mut self) {
        if self.ck.is_some() {
            return self.replay_forward_ck();
        }
        for idx in 0..self.tape.len() {
            if !self.needed[idx] || matches!(self.tape.nodes[idx].op, Op::Leaf) {
                continue;
            }
            self.tape
                .eval_node(idx, &self.last_value_use, &self.pinned, true);
            for &v in &self.free_after_fwd[idx] {
                self.tape.release(v as usize);
            }
        }
    }

    /// Checkpointed main forward: evaluate each segment, then drop its
    /// backward-only interior values (boundaries, leaves, and heads stay).
    fn replay_forward_ck(&mut self) {
        let segments = self.ck.as_ref().expect("ck driver without schedule");
        let nseg = segments.bounds.len() - 1;
        for s in 0..nseg {
            let (lo, hi) = match &self.ck {
                Some(c) => (c.bounds[s], c.bounds[s + 1]),
                None => unreachable!(),
            };
            for idx in lo..hi {
                if !self.needed[idx] || matches!(self.tape.nodes[idx].op, Op::Leaf) {
                    continue;
                }
                match &self.ck {
                    Some(c) => self.tape.eval_node(idx, &c.last_use, &self.pinned, true),
                    None => unreachable!(),
                }
                self.release_ck_fwd_frees(idx);
            }
            self.drop_segment_interior(s);
        }
    }

    /// Apply the intra-segment forward free list of node `idx`.
    fn release_ck_fwd_frees(&mut self, idx: usize) {
        let list = match &self.ck {
            Some(c) => &c.free_after_fwd[idx],
            None => unreachable!(),
        };
        for &v in list {
            self.tape.release(v as usize);
        }
    }

    /// Drop segment `s`'s backward-only values and strip the fused
    /// SkipNode caches of every dropped node (recompute refreshes them).
    fn drop_segment_interior(&mut self, s: usize) {
        let (lo, hi, drops) = match &self.ck {
            Some(c) => (c.bounds[s], c.bounds[s + 1], &c.drop_after_seg[s]),
            None => unreachable!(),
        };
        for &v in drops {
            self.tape.release(v as usize);
        }
        // A SkipConv whose value is no longer materialized will be
        // re-evaluated during this segment's recompute, which rebuilds
        // `p_active` / `relu_active`; park the stale copies until then.
        for idx in lo..hi {
            if !self.needed[idx] || !matches!(self.tape.nodes[idx].value, Value::Pending { .. }) {
                continue;
            }
            if let Op::SkipConv { cache, .. } = &mut self.tape.nodes[idx].op {
                workspace::give(std::mem::replace(&mut cache.p_active, Matrix::zeros(0, 0)));
                workspace::give(std::mem::replace(
                    &mut cache.relu_active,
                    Matrix::zeros(0, 0),
                ));
            }
        }
    }

    /// Execute the backward schedule from the given seed gradients and
    /// return parameter gradients in [`TrainProgram::param_nodes`] order.
    ///
    /// Gradient buffers flow: each step consumes its upstream gradient
    /// (mutating it in place where the arithmetic allows), recycles it
    /// otherwise, and frees forward values at their last backward read.
    /// Results are byte-identical to [`Tape::backward_multi`] on an eager
    /// tape with the same values.
    pub fn backward(&mut self, seeds: Vec<(NodeId, Matrix)>) -> Vec<Option<Matrix>> {
        let mut grads = std::mem::take(&mut self.grads);
        let mut param_grads: Vec<Option<Matrix>> =
            (0..self.param_nodes.len()).map(|_| None).collect();
        let mut max_id = 0usize;
        for (root, seed) in seeds {
            assert_eq!(
                seed.shape(),
                self.tape.nodes[root.0].value.shape(),
                "seed gradient shape mismatch"
            );
            max_id = max_id.max(root.0);
            accum(&mut grads, root, seed);
        }
        if self.ck.is_some() {
            self.backward_ck(max_id, &mut grads, &mut param_grads);
        } else {
            self.backward_span(0, max_id, &mut grads, &mut param_grads);
        }
        self.grads = grads;
        param_grads
    }

    /// Backward steps for node indices `lo..=hi`, descending. The step
    /// order — and therefore every gradient accumulation — is identical
    /// whether the range is walked whole (plain replay) or segment by
    /// segment (checkpointed replay).
    fn backward_span(
        &mut self,
        lo: usize,
        hi: usize,
        grads: &mut [Option<Matrix>],
        param_grads: &mut [Option<Matrix>],
    ) {
        for idx in (lo..=hi).rev() {
            let Some(g) = grads[idx].take() else {
                continue;
            };
            if matches!(self.tape.nodes[idx].op, Op::Leaf) {
                let slot = self.param_slot[idx];
                if slot == u32::MAX {
                    // Constant leaf that a requires-grad consumer fed —
                    // cannot happen today, but recycle defensively.
                    workspace::give(g);
                } else {
                    param_grads[slot as usize] = Some(g);
                }
                continue;
            }
            if !self.tape.nodes[idx].requires_grad {
                workspace::give(g);
                continue;
            }
            self.backward_step(idx, g, grads);
            match &self.ck {
                Some(c) => {
                    for &v in &c.free_after_bwd[idx] {
                        self.tape.release(v as usize);
                    }
                }
                None => {
                    for &v in &self.free_after_bwd[idx] {
                        self.tape.release(v as usize);
                    }
                }
            }
        }
    }

    /// Checkpointed backward: walk segments in reverse, recomputing each
    /// segment's dropped values before its backward steps, then sweeping
    /// every value the segment owns back to the workspace.
    fn backward_ck(
        &mut self,
        max_id: usize,
        grads: &mut [Option<Matrix>],
        param_grads: &mut [Option<Matrix>],
    ) {
        let nseg = match &self.ck {
            Some(c) => c.bounds.len() - 1,
            None => unreachable!(),
        };
        for s in (0..nseg).rev() {
            let (lo, hi) = match &self.ck {
                Some(c) => (c.bounds[s], c.bounds[s + 1]),
                None => unreachable!(),
            };
            if lo <= max_id {
                // Recompute in index order: operands from earlier segments
                // are boundaries (still materialized) or leaves; operands
                // from this segment are recomputed just before their
                // consumers, exactly as in the main forward.
                for idx in lo..hi {
                    if !self.needed[idx]
                        || matches!(self.tape.nodes[idx].op, Op::Leaf)
                        || !matches!(self.tape.nodes[idx].value, Value::Pending { .. })
                    {
                        continue;
                    }
                    match &self.ck {
                        Some(c) => self.tape.eval_node(idx, &c.last_use, &self.pinned, true),
                        None => unreachable!(),
                    }
                    self.release_ck_fwd_frees(idx);
                }
                self.backward_span(lo, hi.min(max_id + 1) - 1, grads, param_grads);
            }
            // All segments >= s are done and every reader of a value has
            // an index (and therefore a segment) at least the value's own,
            // so nothing can read this segment's values again this epoch.
            for v in lo..hi {
                if !self.pinned[v] {
                    self.tape.release(v);
                }
            }
        }
    }

    fn rg(&self, id: NodeId) -> bool {
        self.tape.nodes[id.0].requires_grad
    }

    /// One backward step, owning the upstream gradient `g`. The arithmetic
    /// mirrors `Tape::backprop_one` exactly; only buffer traffic differs
    /// (in-place mutation, stealing, recycling).
    fn backward_step(&mut self, idx: usize, g: Matrix, grads: &mut [Option<Matrix>]) {
        let n = self.tape.len();
        let op = std::mem::replace(&mut self.tape.nodes[idx].op, Op::Leaf);
        match &op {
            Op::Leaf | Op::GatAggregate { .. } => {
                unreachable!("leaves are captured above; GAT is rejected at compile")
            }
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    let da = g.matmul_t(self.tape.val(b.0));
                    accum(grads, *a, da);
                }
                if self.rg(*b) {
                    let db = self.tape.val(a.0).t_matmul(&g);
                    accum(grads, *b, db);
                }
                workspace::give(g);
            }
            Op::Spmm { adj, x } => {
                if self.rg(*x) {
                    let dx = self.tape.adjs[*adj].backward_mat().spmm(&g);
                    accum(grads, *x, dx);
                }
                workspace::give(g);
            }
            Op::AddScaled(a, b, c) => {
                // b before a so `g` can flow into a's slot unscaled; when
                // a == b the two deltas still add commutatively, so the
                // accumulated bits match the eager order.
                if self.rg(*b) {
                    let db = &g * *c;
                    accum(grads, *b, db);
                }
                if self.rg(*a) {
                    accum(grads, *a, g);
                } else {
                    workspace::give(g);
                }
            }
            Op::Scale(x, c) => {
                if self.rg(*x) {
                    let mut dx = g;
                    dx.scale_in_place(*c);
                    accum(grads, *x, dx);
                } else {
                    workspace::give(g);
                }
            }
            Op::AddBias(x, b) => {
                // Bias row-sum first (reads `g`), then `g` flows to x.
                if self.rg(*b) {
                    let mut db = workspace::take(1, g.cols());
                    for r in 0..g.rows() {
                        let row = g.row(r);
                        let dst = db.row_mut(0);
                        for (d, &v) in dst.iter_mut().zip(row) {
                            *d += v;
                        }
                    }
                    accum(grads, *b, db);
                }
                if self.rg(*x) {
                    accum(grads, *x, g);
                } else {
                    workspace::give(g);
                }
            }
            Op::Relu(x) => {
                if self.rg(*x) {
                    // Steal the dying output for the mask application when
                    // this backward read is its last use (checkpointing
                    // masks cross-segment uses, suppressing the steal for
                    // values an earlier segment's recompute still reads).
                    let pos = 2 * n - 1 - idx;
                    let last_here = match &self.ck {
                        Some(c) => c.last_use[idx] == pos,
                        None => self.last_value_use[idx] == pos,
                    };
                    let steal = !self.pinned[idx]
                        && last_here
                        && matches!(self.tape.nodes[idx].value, Value::Owned(_));
                    if steal {
                        let (rows, cols) = self.tape.nodes[idx].value.shape();
                        let mut out = match std::mem::replace(
                            &mut self.tape.nodes[idx].value,
                            Value::Pending { rows, cols },
                        ) {
                            Value::Owned(m) => m,
                            _ => unreachable!(),
                        };
                        for (o, &gv) in out.as_mut_slice().iter_mut().zip(g.as_slice()) {
                            *o = if *o > 0.0 { gv } else { 0.0 };
                        }
                        workspace::give(g);
                        accum(grads, *x, out);
                    } else {
                        let mut dx = g;
                        for (t, &ov) in dx
                            .as_mut_slice()
                            .iter_mut()
                            .zip(self.tape.val(idx).as_slice())
                        {
                            if ov <= 0.0 {
                                *t = 0.0;
                            }
                        }
                        accum(grads, *x, dx);
                    }
                } else {
                    workspace::give(g);
                }
            }
            Op::Mask { x, mask, .. } => {
                if self.rg(*x) {
                    let mut dx = g;
                    for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                        *v *= m;
                    }
                    accum(grads, *x, dx);
                } else {
                    workspace::give(g);
                }
            }
            Op::RowMask { x, factors, .. } => {
                if self.rg(*x) {
                    let mut dx = g;
                    for (r, &f) in factors.iter().enumerate() {
                        for v in dx.row_mut(r) {
                            *v *= f;
                        }
                    }
                    accum(grads, *x, dx);
                } else {
                    workspace::give(g);
                }
            }
            Op::RowCombine {
                conv,
                skip,
                take_skip,
            } => {
                // Route `g` by zeroing the other branch's rows; the conv
                // route copies only when the skip route also consumes `g`.
                let zero_rows = |d: &mut Matrix, keep_skip_rows: bool| {
                    for (r, &ts) in take_skip.iter().enumerate() {
                        if ts != keep_skip_rows {
                            for v in d.row_mut(r) {
                                *v = 0.0;
                            }
                        }
                    }
                };
                match (self.rg(*conv), self.rg(*skip)) {
                    (true, true) => {
                        let mut dc = workspace::take_copy(&g);
                        zero_rows(&mut dc, false);
                        accum(grads, *conv, dc);
                        let mut ds = g;
                        zero_rows(&mut ds, true);
                        accum(grads, *skip, ds);
                    }
                    (true, false) => {
                        let mut dc = g;
                        zero_rows(&mut dc, false);
                        accum(grads, *conv, dc);
                    }
                    (false, true) => {
                        let mut ds = g;
                        zero_rows(&mut ds, true);
                        accum(grads, *skip, ds);
                    }
                    (false, false) => workspace::give(g),
                }
            }
            Op::SkipConv {
                adj,
                x,
                skip,
                w,
                b,
                init_residual,
                identity_map,
                residual,
                cache,
            } => {
                let d_out = g.cols();
                let out = if residual.is_none() {
                    Some(self.tape.val(idx))
                } else {
                    None
                };
                let mut gz = workspace::take_scratch(cache.active.len(), d_out);
                for (local, &r) in cache.active.iter().enumerate() {
                    let r = r as usize;
                    let mask_row = match out {
                        Some(o) => o.row(r),
                        None => cache.relu_active.row(local),
                    };
                    let dst = gz.row_mut(local);
                    for ((dv, &gv), &ov) in dst.iter_mut().zip(g.row(r)).zip(mask_row) {
                        *dv = if ov > 0.0 { gv } else { 0.0 };
                    }
                }
                if let Some(res) = residual {
                    if self.rg(*res) {
                        let mut dres = workspace::take(g.rows(), d_out);
                        for &r in &cache.active {
                            let r = r as usize;
                            dres.row_mut(r).copy_from_slice(g.row(r));
                        }
                        accum(grads, *res, dres);
                    }
                }
                if let Some(b) = b {
                    if self.rg(*b) {
                        let mut db = workspace::take(1, d_out);
                        for local in 0..gz.rows() {
                            let dst = db.row_mut(0);
                            for (dv, &v) in dst.iter_mut().zip(gz.row(local)) {
                                *dv += v;
                            }
                        }
                        accum(grads, *b, db);
                    }
                }
                if self.rg(*w) {
                    let mut dw = cache.p_active.t_matmul(&gz);
                    if let Some(beta) = identity_map {
                        dw.scale_in_place(*beta);
                    }
                    accum(grads, *w, dw);
                }
                let needs_ds = self.rg(*x) || init_residual.is_some_and(|(h0, _)| self.rg(h0));
                if needs_ds {
                    let mut ds = gz.matmul_t(self.tape.val(w.0));
                    if let Some(beta) = identity_map {
                        ds.scale_in_place(*beta);
                        ds.add_scaled(&gz, 1.0 - *beta);
                    }
                    if let Some((h0, alpha)) = init_residual {
                        if self.rg(*h0) {
                            let n0 = self.tape.nodes[h0.0].value.shape().0;
                            let mut dh0 = workspace::take(n0, ds.cols());
                            for (local, &r) in cache.active.iter().enumerate() {
                                let dst = dh0.row_mut(r as usize);
                                for (dv, &v) in dst.iter_mut().zip(ds.row(local)) {
                                    *dv = *alpha * v;
                                }
                            }
                            accum(grads, *h0, dh0);
                        }
                    }
                    if self.rg(*x) {
                        if let Some((_, alpha)) = init_residual {
                            ds.scale_in_place(1.0 - *alpha);
                        }
                        let back = self.tape.adjs[*adj].backward_mat();
                        let mut dx = workspace::take_scratch(back.rows(), ds.cols());
                        back.spmm_cols_compact(&ds, &cache.col_map, &mut dx);
                        accum(grads, *x, dx);
                    }
                    workspace::give(ds);
                }
                if self.rg(*skip) {
                    let mut dsk = workspace::take(g.rows(), d_out);
                    for (r, &m) in cache.col_map.iter().enumerate() {
                        if m == COL_SKIP {
                            dsk.row_mut(r).copy_from_slice(g.row(r));
                        }
                    }
                    accum(grads, *skip, dsk);
                }
                workspace::give(gz);
                workspace::give(g);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for p in parts {
                    let pc = self.tape.nodes[p.0].value.shape().1;
                    if self.rg(*p) {
                        let mut dp = workspace::take(g.rows(), pc);
                        for r in 0..g.rows() {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + pc]);
                        }
                        accum(grads, *p, dp);
                    }
                    off += pc;
                }
                workspace::give(g);
            }
            Op::MaxPool { xs, argmax } => {
                for (k, x) in xs.iter().enumerate() {
                    if !self.rg(*x) {
                        continue;
                    }
                    let mut dx = workspace::take(g.rows(), g.cols());
                    for (i, (&a, &gv)) in argmax.iter().zip(g.as_slice()).enumerate() {
                        if a as usize == k {
                            dx.as_mut_slice()[i] = gv;
                        }
                    }
                    accum(grads, *x, dx);
                }
                workspace::give(g);
            }
            Op::Readout {
                x,
                kind,
                seg,
                argmax,
            } => {
                if self.rg(*x) {
                    let (rows, cols) = self.tape.nodes[x.0].value.shape();
                    let mut dx = workspace::take(rows, cols);
                    segment_reduce_backward_into(&g, seg, *kind, argmax, &mut dx);
                    accum(grads, *x, dx);
                }
                workspace::give(g);
            }
            Op::PairNorm { x, s } => {
                if self.rg(*x) {
                    let dx = pairnorm_backward(self.tape.val(x.0), &g, *s);
                    accum(grads, *x, dx);
                }
                workspace::give(g);
            }
            Op::Hadamard(a, b) => {
                if self.rg(*a) {
                    let da = g.zip(self.tape.val(b.0), |gv, bv| gv * bv);
                    accum(grads, *a, da);
                }
                if self.rg(*b) {
                    let mut db = g;
                    for (t, &av) in db
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.tape.val(a.0).as_slice())
                    {
                        *t *= av;
                    }
                    accum(grads, *b, db);
                } else {
                    workspace::give(g);
                }
            }
            Op::LinComb(parts) => {
                let last_rg = parts.iter().rposition(|&(p, _)| self.rg(p));
                match last_rg {
                    None => workspace::give(g),
                    Some(li) => {
                        for &(p, c) in &parts[..li] {
                            if self.rg(p) {
                                let dp = &g * c;
                                accum(grads, p, dp);
                            }
                        }
                        let (p, c) = parts[li];
                        let mut dp = g;
                        dp.scale_in_place(c);
                        accum(grads, p, dp);
                    }
                }
            }
            Op::WeightedSum { xs, w } => {
                for (k, x) in xs.iter().enumerate() {
                    if self.rg(*x) {
                        let dx = &g * self.tape.val(w.0).get(0, k);
                        accum(grads, *x, dx);
                    }
                }
                if self.rg(*w) {
                    let mut dw = workspace::take(1, xs.len());
                    for (k, x) in xs.iter().enumerate() {
                        let xv = self.tape.val(x.0);
                        let dot: f64 = g
                            .as_slice()
                            .iter()
                            .zip(xv.as_slice())
                            .map(|(&gv, &xvv)| gv as f64 * xvv as f64)
                            .sum();
                        dw.set(0, k, dot as f32);
                    }
                    accum(grads, *w, dw);
                }
                workspace::give(g);
            }
            Op::EdgeScore { h, edges } => {
                if self.rg(*h) {
                    let hv = self.tape.val(h.0);
                    let mut dh = workspace::take(hv.rows(), hv.cols());
                    for (e, &(u, v)) in edges.iter().enumerate() {
                        let ge = g.get(e, 0);
                        for c in 0..hv.cols() {
                            let hu = hv.get(u, c);
                            let hvv = hv.get(v, c);
                            dh.set(u, c, dh.get(u, c) + ge * hvv);
                            dh.set(v, c, dh.get(v, c) + ge * hu);
                        }
                    }
                    accum(grads, *h, dh);
                }
                workspace::give(g);
            }
        }
        self.tape.nodes[idx].op = op;
    }
}

/// Node values a backward step reads (beyond the gradient flow itself).
/// Marking a superset is safe — it only delays recycling — but missing a
/// read would free a buffer the step still needs, so every `val(...)`
/// access in `backprop_one` / `backward_step` must be mirrored here.
fn backward_value_reads(tape: &Tape, idx: usize, f: &mut dyn FnMut(usize)) {
    let rg = |id: NodeId| tape.nodes[id.0].requires_grad;
    match &tape.nodes[idx].op {
        Op::Leaf
        | Op::Spmm { .. }
        | Op::AddScaled(..)
        | Op::Scale(..)
        | Op::AddBias(..)
        | Op::Mask { .. }
        | Op::RowMask { .. }
        | Op::RowCombine { .. }
        | Op::ConcatCols(..)
        | Op::MaxPool { .. }
        // Readout's backward reads only the upstream gradient plus the
        // op-resident segment table and argmax record.
        | Op::Readout { .. }
        | Op::LinComb(..) => {}
        Op::MatMul(a, b) => {
            if rg(*a) {
                f(b.0);
            }
            if rg(*b) {
                f(a.0);
            }
        }
        // The ReLU mask is read back from the node's own output.
        Op::Relu(_) => f(idx),
        Op::SkipConv {
            x,
            w,
            init_residual,
            residual,
            ..
        } => {
            if residual.is_none() {
                f(idx);
            }
            if rg(*x) || init_residual.is_some_and(|(h0, _)| rg(h0)) {
                f(w.0);
            }
        }
        Op::PairNorm { x, .. } => f(x.0),
        Op::Hadamard(a, b) => {
            if rg(*a) {
                f(b.0);
            }
            if rg(*b) {
                f(a.0);
            }
        }
        Op::WeightedSum { xs, w } => {
            f(w.0);
            if rg(*w) {
                xs.iter().for_each(|x| f(x.0));
            }
        }
        Op::EdgeScore { h, .. } => {
            if rg(*h) {
                f(h.0);
            }
        }
        Op::GatAggregate { .. } => unreachable!("rejected at compile"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Grads;
    use skipnode_sparse::gcn_adjacency;
    use std::sync::Arc;

    /// Uniform skip sampling, one bernoulli per node — mirrored by the
    /// eager builders below so RNG streams align.
    struct UniformSampler {
        p: f64,
    }

    impl EpochSampler for UniformSampler {
        fn skip_mask(&mut self, rng: &mut SplitRng, out: &mut [bool]) {
            for o in out.iter_mut() {
                *o = rng.bernoulli(self.p);
            }
        }
    }

    fn assert_same(tag: &str, a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape(), "{tag}: shape");
        assert_eq!(a.as_slice(), b.as_slice(), "{tag}: values differ bitwise");
    }

    struct Fixture {
        adj: Arc<CsrMatrix>,
        x: Matrix,
        w: Matrix,
        b: Matrix,
    }

    impl Fixture {
        fn new() -> Self {
            let mut init = SplitRng::new(1234);
            Self {
                adj: Arc::new(gcn_adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])),
                x: init.uniform_matrix(5, 4, -1.0, 1.0),
                w: init.uniform_matrix(4, 4, -0.5, 0.5),
                b: init.uniform_matrix(1, 4, -0.1, 0.1),
            }
        }

        /// Stochastic fused chain: spmm → matmul → skip_conv → dropout →
        /// row_combine → pairnorm → relu. Draws from `fwd` exactly where
        /// compiled replay redraws.
        fn record(&self, tape: &mut Tape, fwd: &mut SplitRng, skip_p: f64) -> NodeId {
            let adj = tape.register_adj(self.adj.clone());
            let xn = tape.constant(self.x.clone());
            let wn = tape.param(self.w.clone());
            let bn = tape.param(self.b.clone());
            let prop = tape.spmm(adj, xn);
            let sk = tape.matmul(prop, wn);
            let mask: Vec<bool> = (0..5).map(|_| fwd.bernoulli(skip_p)).collect();
            let fused = tape.skip_conv(adj, xn, sk, wn, bn, &mask);
            let dropped = tape.dropout(fused, 0.3, fwd);
            let rc_mask: Vec<bool> = (0..5).map(|_| fwd.bernoulli(skip_p)).collect();
            let comb = tape.row_combine(dropped, sk, &rc_mask);
            let normed = tape.pairnorm(comb, 1.0);
            tape.relu(normed)
        }
    }

    fn eager_epoch(fix: &Fixture, epoch: u64, skip_p: f64) -> (Matrix, Matrix, Matrix) {
        let mut fwd = SplitRng::new(1000 + epoch);
        let mut tape = Tape::new();
        let out = fix.record(&mut tape, &mut fwd, skip_p);
        let value = tape.value(out).clone();
        let seed = Matrix::full(5, 4, 1.0);
        let mut grads: Grads = tape.backward(out, seed);
        let params = tape.params().to_vec();
        let gw = grads.take(params[0]).unwrap();
        let gb = grads.take(params[1]).unwrap();
        (value, gw, gb)
    }

    #[test]
    fn replay_matches_fresh_eager_tapes_across_epochs() {
        let fix = Fixture::new();
        let skip_p = 0.4;
        let mut probe = SplitRng::new(0xdead);
        let mut tape = Tape::new();
        let out = fix.record(&mut tape, &mut probe, skip_p);
        let mut prog = TrainProgram::compile(tape, vec![out]).unwrap();
        let mut sampler = UniformSampler { p: skip_p };
        for epoch in 0..4 {
            let mut fwd = SplitRng::new(1000 + epoch);
            prog.set_adjacency(fix.adj.clone());
            prog.load_params([&fix.w, &fix.b]);
            prog.begin_epoch(&mut sampler, &mut fwd);
            prog.replay_forward();
            let (e_val, e_gw, e_gb) = eager_epoch(&fix, epoch, skip_p);
            assert_same(&format!("epoch {epoch} value"), prog.value(out), &e_val);
            let seed = Matrix::full(5, 4, 1.0);
            let mut pgrads = prog.backward(vec![(out, seed)]);
            let gw = pgrads[0].take().unwrap();
            let gb = pgrads[1].take().unwrap();
            assert_same(&format!("epoch {epoch} dW"), &gw, &e_gw);
            assert_same(&format!("epoch {epoch} db"), &gb, &e_gb);
            workspace::give(gw);
            workspace::give(gb);
        }
    }

    /// Coverage for the remaining backward ports: hadamard, add_scaled,
    /// scale, max_pool, concat_cols, weighted_sum, lin_comb, dropout_rows,
    /// add_bias — with two seeded heads.
    struct MiscFixture {
        x: Matrix,
        w1: Matrix,
        w2: Matrix,
        ws: Matrix,
        b: Matrix,
        adj: Arc<CsrMatrix>,
    }

    impl MiscFixture {
        fn new() -> Self {
            let mut init = SplitRng::new(77);
            Self {
                x: init.uniform_matrix(6, 3, -1.0, 1.0),
                w1: init.uniform_matrix(3, 3, -0.5, 0.5),
                w2: init.uniform_matrix(3, 3, -0.5, 0.5),
                ws: init.uniform_matrix(1, 3, -1.0, 1.0),
                b: init.uniform_matrix(1, 3, -0.2, 0.2),
                adj: Arc::new(gcn_adjacency(6, &[(0, 1), (1, 2), (3, 4), (4, 5)])),
            }
        }

        fn record(&self, tape: &mut Tape, fwd: &mut SplitRng) -> (NodeId, NodeId) {
            let _adj = tape.register_adj(self.adj.clone());
            let xn = tape.constant(self.x.clone());
            let w1 = tape.param(self.w1.clone());
            let w2 = tape.param(self.w2.clone());
            let ws = tape.param(self.ws.clone());
            let bn = tape.param(self.b.clone());
            let a = tape.matmul(xn, w1);
            let b2 = tape.matmul(xn, w2);
            let h = tape.hadamard(a, b2);
            let s = tape.add_scaled(a, h, 0.5);
            let sc = tape.scale(s, 1.25);
            let mp = tape.max_pool(&[a, b2, sc]);
            let cc = tape.concat_cols(&[mp, a]);
            let wsum = tape.weighted_sum(&[a, b2, mp], ws);
            let lc = tape.lin_comb(&[(wsum, 0.3), (mp, 0.7)]);
            let dr = tape.dropout_rows(lc, 0.4, fwd);
            let ab = tape.add_bias(dr, bn);
            let out = tape.relu(ab);
            (cc, out)
        }
    }

    #[test]
    fn misc_ops_replay_matches_eager_multi_head() {
        let fix = MiscFixture::new();
        let mut probe = SplitRng::new(0xbeef);
        let mut tape = Tape::new();
        let (cc, out) = fix.record(&mut tape, &mut probe);
        let mut prog = TrainProgram::compile(tape, vec![cc, out]).unwrap();
        let mut sampler = UniformSampler { p: 0.5 }; // never called: no skip ops
        for epoch in 0..3 {
            let mut fwd = SplitRng::new(500 + epoch);
            prog.load_params([&fix.w1, &fix.w2, &fix.ws, &fix.b]);
            prog.begin_epoch(&mut sampler, &mut fwd);
            prog.replay_forward();

            let mut e_fwd = SplitRng::new(500 + epoch);
            let mut e_tape = Tape::new();
            let (e_cc, e_out) = fix.record(&mut e_tape, &mut e_fwd);
            assert_same("cc", prog.value(cc), e_tape.value(e_cc));
            assert_same("out", prog.value(out), e_tape.value(e_out));

            let seed_cc = Matrix::full(6, 6, 0.5);
            let seed_out = Matrix::full(6, 3, 1.0);
            let mut pgrads = prog.backward(vec![(cc, seed_cc.clone()), (out, seed_out.clone())]);
            let mut e_grads = e_tape.backward_multi(vec![(e_cc, seed_cc), (e_out, seed_out)]);
            for (slot, &pid) in e_tape.params().iter().enumerate() {
                let pg = pgrads[slot].take().unwrap();
                let eg = e_grads.take(pid).unwrap();
                assert_same(&format!("epoch {epoch} param {slot}"), &pg, &eg);
                workspace::give(pg);
                workspace::give(eg);
            }
        }
    }

    #[test]
    fn dead_stochastic_nodes_still_consume_rng() {
        // A dead dropout branch must draw in replay exactly as eager
        // recording did, or every later mask desynchronizes.
        let build = |tape: &mut Tape, fwd: &mut SplitRng| -> NodeId {
            let x = tape.constant(Matrix::full(4, 2, 1.0));
            let w = tape.param(Matrix::full(2, 2, 0.5));
            let live = tape.matmul(x, w);
            let _dead = tape.dropout(live, 0.5, fwd);
            tape.dropout(live, 0.25, fwd)
        };
        let mut probe = SplitRng::new(9);
        let mut tape = Tape::new();
        let out = build(&mut tape, &mut probe);
        let mut prog = TrainProgram::compile(tape, vec![out]).unwrap();
        let mut sampler = UniformSampler { p: 0.0 };
        for epoch in 0..3 {
            let mut fwd = SplitRng::new(40 + epoch);
            prog.load_params([&Matrix::full(2, 2, 0.5)]);
            prog.begin_epoch(&mut sampler, &mut fwd);
            prog.replay_forward();

            let mut e_fwd = SplitRng::new(40 + epoch);
            let mut e_tape = Tape::new();
            let e_out = build(&mut e_tape, &mut e_fwd);
            assert_same("value", prog.value(out), e_tape.value(e_out));
        }
    }

    /// One training epoch on `prog`: returns (head value, dW, db).
    fn epoch_outputs(
        prog: &mut TrainProgram,
        fix: &Fixture,
        out: NodeId,
        skip_p: f64,
        epoch: u64,
    ) -> (Matrix, Matrix, Matrix) {
        let mut fwd = SplitRng::new(9000 + epoch);
        let mut sampler = UniformSampler { p: skip_p };
        prog.set_adjacency(fix.adj.clone());
        prog.load_params([&fix.w, &fix.b]);
        prog.begin_epoch(&mut sampler, &mut fwd);
        prog.replay_forward();
        let value = prog.value(out).clone();
        let mut pg = prog.backward(vec![(out, Matrix::full(5, 4, 1.0))]);
        (value, pg[0].take().unwrap(), pg[1].take().unwrap())
    }

    #[test]
    fn checkpointed_replay_is_bit_identical_to_plain() {
        let fix = Fixture::new();
        let skip_p = 0.4;
        // Every segment count from trivial to one-node-per-segment: the
        // boundary/drop/recompute bookkeeping must be invisible bitwise.
        for segments in [2usize, 3, 5, 10, 64] {
            let mut probe = SplitRng::new(0xabc);
            let mut tape = Tape::new();
            let out = fix.record(&mut tape, &mut probe, skip_p);
            let mut plain = TrainProgram::compile(tape, vec![out]).unwrap();
            let mut probe_ck = SplitRng::new(0xabc);
            let mut tape_ck = Tape::new();
            let out_ck = fix.record(&mut tape_ck, &mut probe_ck, skip_p);
            let mut ck = TrainProgram::compile(tape_ck, vec![out_ck]).unwrap();
            ck.enable_checkpointing(segments);
            assert!(ck.is_checkpointing());
            for epoch in 0..3 {
                let (v_p, gw_p, gb_p) = epoch_outputs(&mut plain, &fix, out, skip_p, epoch);
                let (v_c, gw_c, gb_c) = epoch_outputs(&mut ck, &fix, out_ck, skip_p, epoch);
                let tag = format!("segments {segments} epoch {epoch}");
                assert_same(&format!("{tag} value"), &v_p, &v_c);
                assert_same(&format!("{tag} dW"), &gw_p, &gw_c);
                assert_same(&format!("{tag} db"), &gb_p, &gb_c);
                for g in [gw_p, gb_p, gw_c, gb_c] {
                    workspace::give(g);
                }
            }
        }
    }

    #[test]
    fn checkpointing_disables_below_two_segments() {
        let fix = Fixture::new();
        let mut probe = SplitRng::new(3);
        let mut tape = Tape::new();
        let out = fix.record(&mut tape, &mut probe, 0.3);
        let mut prog = TrainProgram::compile(tape, vec![out]).unwrap();
        prog.enable_checkpointing(1);
        assert!(!prog.is_checkpointing());
        prog.enable_checkpointing(4);
        assert!(prog.is_checkpointing());
        prog.enable_checkpointing(0);
        assert!(!prog.is_checkpointing());
    }

    #[test]
    fn checkpointed_misc_ops_match_plain_multi_head() {
        let fix = MiscFixture::new();
        for segments in [2usize, 4, 7] {
            let build = |segs: Option<usize>| {
                let mut probe = SplitRng::new(0xf00);
                let mut tape = Tape::new();
                let (cc, out) = fix.record(&mut tape, &mut probe);
                let mut prog = TrainProgram::compile(tape, vec![cc, out]).unwrap();
                if let Some(s) = segs {
                    prog.enable_checkpointing(s);
                }
                (prog, cc, out)
            };
            let (mut plain, cc_p, out_p) = build(None);
            let (mut ck, cc_c, out_c) = build(Some(segments));
            let mut sampler = UniformSampler { p: 0.5 };
            for epoch in 0..2 {
                let mut run = |prog: &mut TrainProgram, cc: NodeId, out: NodeId| {
                    let mut fwd = SplitRng::new(700 + epoch);
                    prog.load_params([&fix.w1, &fix.w2, &fix.ws, &fix.b]);
                    prog.begin_epoch(&mut sampler, &mut fwd);
                    prog.replay_forward();
                    let vals = (prog.value(cc).clone(), prog.value(out).clone());
                    let seeds = vec![
                        (cc, Matrix::full(6, 6, 0.5)),
                        (out, Matrix::full(6, 3, 1.0)),
                    ];
                    (vals, prog.backward(seeds))
                };
                let ((vcc_p, vout_p), mut g_p) = run(&mut plain, cc_p, out_p);
                let ((vcc_c, vout_c), mut g_c) = run(&mut ck, cc_c, out_c);
                let tag = format!("segments {segments} epoch {epoch}");
                assert_same(&format!("{tag} cc"), &vcc_p, &vcc_c);
                assert_same(&format!("{tag} out"), &vout_p, &vout_c);
                for slot in 0..g_p.len() {
                    let gp = g_p[slot].take().unwrap();
                    let gc = g_c[slot].take().unwrap();
                    assert_same(&format!("{tag} param {slot}"), &gp, &gc);
                    workspace::give(gp);
                    workspace::give(gc);
                }
            }
        }
    }

    #[test]
    fn grads_are_drained_between_epochs() {
        let fix = Fixture::new();
        let mut probe = SplitRng::new(5);
        let mut tape = Tape::new();
        let out = fix.record(&mut tape, &mut probe, 0.3);
        let mut prog = TrainProgram::compile(tape, vec![out]).unwrap();
        let mut sampler = UniformSampler { p: 0.3 };
        let mut fwd = SplitRng::new(6);
        prog.begin_epoch(&mut sampler, &mut fwd);
        prog.replay_forward();
        let pg = prog.backward(vec![(out, Matrix::full(5, 4, 1.0))]);
        assert!(pg.iter().all(Option::is_some));
        for g in pg.into_iter().flatten() {
            workspace::give(g);
        }
        assert!(
            prog.grads.iter().all(Option::is_none),
            "all interior gradients recycled"
        );
    }
}
