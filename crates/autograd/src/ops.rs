//! Forward op constructors on [`Tape`].
//!
//! Every constructor has two modes. On a training tape the value is
//! computed eagerly and retained for backward. On an inference tape
//! ([`Tape::inference`]) the constructor performs the same shape checks and
//! draws the same RNG values (masks are part of the op record either way),
//! but pushes a shape-only placeholder; [`Tape::run`] materializes it later
//! with operand liveness, so intermediates can be recycled the moment their
//! last consumer has run.

use crate::tape::{pairnorm_forward, AdjId, NodeId, Op, SkipConvCache, Tape};
use skipnode_sparse::{CsrMatrix, COL_SKIP};
use skipnode_tensor::segment::segment_reduce_into;
use skipnode_tensor::{workspace, Matrix, ReadoutKind, SegmentTable, SplitRng};
use std::sync::Arc;

/// Operand bundle for the generalized fused masked layer
/// ([`Tape::skip_conv_step`]). Describes one activated graph-convolution
/// step `relu(support · W [+ b]) [+ residual]` where
/// `support = (1−α)·Ã·x + α·h0` when an initial residual is present (GCNII)
/// and plain `Ã·x` otherwise, with the identity map
/// `z = (1−β)·support + β·support·W` replacing the plain GEMM when
/// `identity_map` is set.
#[derive(Debug, Clone, Copy)]
pub struct FusedStep {
    /// Layer input propagated through the adjacency.
    pub x: NodeId,
    /// Skip branch: rows with `take_skip[i]` copy this node's row verbatim.
    /// Must already have the output shape `n × d_out`.
    pub skip: NodeId,
    /// Weight matrix (`d_in × d_out`).
    pub w: NodeId,
    /// Optional bias row (`1 × d_out`).
    pub b: Option<NodeId>,
    /// GCNII-style initial residual `(h0, α)`: the propagation is mixed
    /// with `h0` *before* the GEMM. `h0` must be `n × d_in`.
    pub init_residual: Option<(NodeId, f32)>,
    /// GCNII identity-map coefficient β: `z = (1−β)·support + β·support·W`.
    /// Requires `d_in == d_out`.
    pub identity_map: Option<f32>,
    /// ResGCN-style residual added *after* the ReLU on active rows. Must be
    /// `n × d_out`.
    pub residual: Option<NodeId>,
}

/// Borrowed operand values for [`skip_conv_compute`], mirroring
/// [`FusedStep`] with matrices in place of tape nodes.
pub(crate) struct SkipConvArgs<'a> {
    pub mat: &'a CsrMatrix,
    pub xv: &'a Matrix,
    pub wv: &'a Matrix,
    pub bv: Option<&'a Matrix>,
    pub sv: &'a Matrix,
    pub init: Option<(&'a Matrix, f32)>,
    pub beta: Option<f32>,
    pub resv: Option<&'a Matrix>,
}

/// Compute the generalized fused SkipNode layer value:
/// `row_combine(relu(support·W̃ [+ b]) [+ res], skip, mask)` with the
/// SpMM/GEMM restricted to the active (non-skipped) rows.
///
/// Returns `(value, gemm_left, relu_active)`:
/// - `gemm_left` is the compact GEMM left operand (`(Ã x)`, or the
///   initial-residual support), kept for the backward `dW` product;
/// - `relu_active` holds the pre-residual ReLU activations on active rows
///   when a post-activation residual is fused (the residual add hides the
///   ReLU mask from the output); `0×0` otherwise.
///
/// Every arithmetic step replays the unfused op chain's elementwise order
/// (`lin_comb` accumulation, bias-then-ReLU, post-ReLU residual add), so
/// the fused value is bit-identical to the eager chain. Shared between the
/// eager constructor and the inference executor so the two paths cannot
/// drift (they are asserted bit-identical by the equivalence tests).
pub(crate) fn skip_conv_compute(
    args: &SkipConvArgs<'_>,
    active: &[u32],
    col_map: &[u32],
) -> (Matrix, Matrix, Matrix) {
    let n = col_map.len();
    let d_out = args.wv.cols();
    // Compact gather: P = (Ã x) on active rows only.
    let mut p = workspace::take_scratch(active.len(), args.xv.cols());
    args.mat.spmm_rows_subset(args.xv, active, &mut p);
    // Initial residual: support = (1−α)·P + α·h0 (gathered), replaying
    // lin_comb's zero-init + add_scaled accumulation order.
    let s = match args.init {
        None => p,
        Some((h0, alpha)) => {
            let mut s = workspace::take(active.len(), p.cols());
            for (local, &r) in active.iter().enumerate() {
                let dst = s.row_mut(local);
                for (d, &pv) in dst.iter_mut().zip(p.row(local)) {
                    *d += (1.0 - alpha) * pv;
                }
                for (d, &hv) in dst.iter_mut().zip(h0.row(r as usize)) {
                    *d += alpha * hv;
                }
            }
            workspace::give(p);
            s
        }
    };
    // Compact GEMM: T = S·W, |active| × d_out.
    let mut t = workspace::take_scratch(active.len(), d_out);
    s.matmul_into(args.wv, &mut t);
    // Identity map (z = (1−β)·S + β·T), optional bias, ReLU.
    let mut z = match args.beta {
        None => t,
        Some(beta) => {
            let mut z = workspace::take(active.len(), d_out);
            z.add_scaled(&s, 1.0 - beta);
            z.add_scaled(&t, beta);
            workspace::give(t);
            z
        }
    };
    match args.bv {
        Some(bv) => {
            for local in 0..z.rows() {
                for (v, &bias) in z.row_mut(local).iter_mut().zip(bv.row(0)) {
                    *v = (*v + bias).max(0.0);
                }
            }
        }
        None => {
            for v in z.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
    }
    // Scatter: skipped rows copy the skip branch verbatim; active rows add
    // the post-activation residual when present.
    let mut value = workspace::take_scratch(n, d_out);
    for (r, &m) in col_map.iter().enumerate() {
        let dst = value.row_mut(r);
        if m == COL_SKIP {
            dst.copy_from_slice(args.sv.row(r));
        } else {
            dst.copy_from_slice(z.row(m as usize));
            if let Some(res) = args.resv {
                for (v, &rv) in dst.iter_mut().zip(res.row(r)) {
                    *v += rv;
                }
            }
        }
    }
    let relu_active = if args.resv.is_some() {
        z
    } else {
        workspace::give(z);
        Matrix::zeros(0, 0)
    };
    (value, s, relu_active)
}

impl Tape {
    fn rg(&self, id: NodeId) -> bool {
        self.requires_grad(id)
    }

    fn infer(&self) -> bool {
        self.is_inference()
    }

    /// Dense product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, inner) = self.shape(a);
        let (b_rows, cols) = self.shape(b);
        assert_eq!(inner, b_rows, "matmul shape mismatch");
        if self.infer() {
            return self.push_pending(rows, cols, Op::MatMul(a, b));
        }
        let value = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Sparse propagation `Ã * x`.
    pub fn spmm(&mut self, adj: AdjId, x: NodeId) -> NodeId {
        let rows = self.adjs[adj.0].mat.rows();
        let cols = self.shape(x).1;
        if self.infer() {
            return self.push_pending(rows, cols, Op::Spmm { adj: adj.0, x });
        }
        let value = self.adjs[adj.0].mat.spmm(self.value(x));
        let rg = self.rg(x);
        self.push(value, Op::Spmm { adj: adj.0, x }, rg)
    }

    /// `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_scaled(a, b, 1.0)
    }

    /// `a + c * b`.
    pub fn add_scaled(&mut self, a: NodeId, b: NodeId, c: f32) -> NodeId {
        let (rows, cols) = self.shape(a);
        assert_eq!((rows, cols), self.shape(b), "add_scaled shape mismatch");
        if self.infer() {
            return self.push_pending(rows, cols, Op::AddScaled(a, b, c));
        }
        let mut value = workspace::take_copy(self.value(a));
        value.add_scaled(self.value(b), c);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddScaled(a, b, c), rg)
    }

    /// `c * x`.
    pub fn scale(&mut self, x: NodeId, c: f32) -> NodeId {
        if self.infer() {
            let (rows, cols) = self.shape(x);
            return self.push_pending(rows, cols, Op::Scale(x, c));
        }
        let value = self.value(x) * c;
        let rg = self.rg(x);
        self.push(value, Op::Scale(x, c), rg)
    }

    /// Broadcast bias add: `x (n×d) + bias (1×d)`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (rows, cols) = self.shape(x);
        assert_eq!(self.shape(bias).0, 1, "bias must be a row vector");
        assert_eq!(self.shape(bias).1, cols, "bias width mismatch");
        if self.infer() {
            return self.push_pending(rows, cols, Op::AddBias(x, bias));
        }
        let mut value = workspace::take_copy(self.value(x));
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(self.val(bias.0).row(0)) {
                *v += bv;
            }
        }
        let rg = self.rg(x) || self.rg(bias);
        self.push(value, Op::AddBias(x, bias), rg)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        if self.infer() {
            let (rows, cols) = self.shape(x);
            return self.push_pending(rows, cols, Op::Relu(x));
        }
        let value = self.value(x).relu();
        let rg = self.rg(x);
        self.push(value, Op::Relu(x), rg)
    }

    /// Inverted dropout with rate `p` (no-op when `p == 0`).
    pub fn dropout(&mut self, x: NodeId, p: f64, rng: &mut SplitRng) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = (1.0 / (1.0 - p)) as f32;
        let (rows, cols) = self.shape(x);
        // The mask is drawn in both modes, so eager and inference forwards
        // consume identical RNG streams.
        let mask: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.bernoulli(p) { 0.0 } else { scale })
            .collect();
        if self.infer() {
            return self.push_pending(rows, cols, Op::Mask { x, mask, rate: p });
        }
        let mut value = workspace::take_copy(self.value(x));
        for (v, &m) in value.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        let rg = self.rg(x);
        self.push(value, Op::Mask { x, mask, rate: p }, rg)
    }

    /// Row-level dropout (GRAND's random propagation masks whole node
    /// feature rows), with inverted scaling.
    pub fn dropout_rows(&mut self, x: NodeId, p: f64, rng: &mut SplitRng) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = (1.0 / (1.0 - p)) as f32;
        let (rows, cols) = self.shape(x);
        let factors: Vec<f32> = (0..rows)
            .map(|_| if rng.bernoulli(p) { 0.0 } else { scale })
            .collect();
        if self.infer() {
            return self.push_pending(
                rows,
                cols,
                Op::RowMask {
                    x,
                    factors,
                    rate: p,
                },
            );
        }
        let mut value = workspace::take_copy(self.value(x));
        for (r, &f) in factors.iter().enumerate() {
            for v in value.row_mut(r) {
                *v *= f;
            }
        }
        let rg = self.rg(x);
        self.push(
            value,
            Op::RowMask {
                x,
                factors,
                rate: p,
            },
            rg,
        )
    }

    /// SkipNode combine (Eq. 4): row `i` of the output is `skip`'s row when
    /// `take_skip[i]`, else `conv`'s row. Gradients route through whichever
    /// branch supplied the row — this is what lets gradients bypass deep
    /// stacks of weight multiplications.
    pub fn row_combine(&mut self, conv: NodeId, skip: NodeId, take_skip: &[bool]) -> NodeId {
        let (rows, cols) = self.shape(conv);
        assert_eq!((rows, cols), self.shape(skip), "row_combine shape mismatch");
        assert_eq!(take_skip.len(), rows, "row_combine mask length");
        if self.infer() {
            return self.push_pending(
                rows,
                cols,
                Op::RowCombine {
                    conv,
                    skip,
                    take_skip: take_skip.to_vec(),
                },
            );
        }
        let mut value = workspace::take_copy(self.value(conv));
        for (r, &take) in take_skip.iter().enumerate() {
            if take {
                value.row_mut(r).copy_from_slice(self.val(skip.0).row(r));
            }
        }
        let rg = self.rg(conv) || self.rg(skip);
        self.push(
            value,
            Op::RowCombine {
                conv,
                skip,
                take_skip: take_skip.to_vec(),
            },
            rg,
        )
    }

    /// Fused SkipNode layer (Eq. 4 applied to a whole GCN layer):
    /// `row_combine(relu(Ã·x·W + b), skip, take_skip)` as one masked
    /// kernel. Convenience wrapper over [`Tape::skip_conv_step`] for the
    /// plain bias-only step.
    pub fn skip_conv(
        &mut self,
        adj: AdjId,
        x: NodeId,
        skip: NodeId,
        w: NodeId,
        b: NodeId,
        take_skip: &[bool],
    ) -> NodeId {
        self.skip_conv_step(
            adj,
            FusedStep {
                x,
                skip,
                w,
                b: Some(b),
                init_residual: None,
                identity_map: None,
                residual: None,
            },
            take_skip,
        )
    }

    /// Generalized fused SkipNode layer: one masked kernel computing
    /// `row_combine(relu(support·W̃ [+ b]) [+ residual], skip, take_skip)`
    /// where `support` optionally mixes in a GCNII initial residual and
    /// `W̃` optionally applies the identity map (see [`FusedStep`]).
    ///
    /// Unlike the unfused `spmm → [lin_comb] → matmul → [lin_comb] →
    /// [add_bias] → relu → [add] → row_combine` chain, rows with
    /// `take_skip[i]` never enter the SpMM or the GEMM — the sparse
    /// gather, dense product, bias, and ReLU all run on the compacted
    /// active-row set only, so per-layer work scales with the non-skipped
    /// fraction. Skipped rows copy `skip`'s row; their backward is the
    /// identity route, exactly as in [`Tape::row_combine`]. The value is
    /// bit-identical to the unfused chain in the same operand order.
    ///
    /// Requires `skip` to already have the output width (`n × d_out`),
    /// which holds for SkipNode's middle hidden→hidden layers.
    pub fn skip_conv_step(&mut self, adj: AdjId, step: FusedStep, take_skip: &[bool]) -> NodeId {
        let FusedStep {
            x,
            skip,
            w,
            b,
            init_residual,
            identity_map,
            residual,
        } = step;
        let (n, d_in) = self.shape(x);
        let d_out = self.shape(w).1;
        assert_eq!(take_skip.len(), n, "skip_conv mask length");
        assert_eq!(
            self.shape(skip),
            (n, d_out),
            "skip_conv skip branch must match the conv output shape"
        );
        if let Some(b) = b {
            assert_eq!(self.shape(b).0, 1, "bias must be a row vector");
            assert_eq!(self.shape(b).1, d_out, "bias width mismatch");
        }
        if let Some((h0, _)) = init_residual {
            assert_eq!(
                self.shape(h0),
                (n, d_in),
                "skip_conv initial residual must match the propagation shape"
            );
        }
        if identity_map.is_some() {
            assert_eq!(
                d_in, d_out,
                "skip_conv identity map needs a square weight (d_in == d_out)"
            );
        }
        if let Some(res) = residual {
            assert_eq!(
                self.shape(res),
                (n, d_out),
                "skip_conv residual must match the conv output shape"
            );
        }
        assert_eq!(
            self.adjs[adj.0].mat.rows(),
            n,
            "skip_conv adjacency row count"
        );

        let mut active = Vec::with_capacity(n);
        let mut col_map = vec![COL_SKIP; n];
        for (r, &take) in take_skip.iter().enumerate() {
            if !take {
                col_map[r] = active.len() as u32;
                active.push(r as u32);
            }
        }

        if self.infer() {
            // The active/col_map structure only depends on the mask, so the
            // deferred executor can run the fused kernel later; `p_active`
            // and `relu_active` are backward-only caches and stay empty.
            return self.push_pending(
                n,
                d_out,
                Op::SkipConv {
                    adj: adj.0,
                    x,
                    skip,
                    w,
                    b,
                    init_residual,
                    identity_map,
                    residual,
                    cache: Box::new(SkipConvCache {
                        active,
                        col_map,
                        p_active: Matrix::zeros(0, 0),
                        relu_active: Matrix::zeros(0, 0),
                    }),
                },
            );
        }

        let (value, cache) = {
            let args = SkipConvArgs {
                mat: &self.adjs[adj.0].mat,
                xv: self.val(x.0),
                wv: self.val(w.0),
                bv: b.map(|b| self.val(b.0)),
                sv: self.val(skip.0),
                init: init_residual.map(|(h0, a)| (self.val(h0.0), a)),
                beta: identity_map,
                resv: residual.map(|r| self.val(r.0)),
            };
            let (value, p_active, relu_active) = skip_conv_compute(&args, &active, &col_map);
            (
                value,
                Box::new(SkipConvCache {
                    active,
                    col_map,
                    p_active,
                    relu_active,
                }),
            )
        };
        let rg = self.rg(x)
            || self.rg(skip)
            || self.rg(w)
            || b.is_some_and(|b| self.rg(b))
            || init_residual.is_some_and(|(h0, _)| self.rg(h0))
            || residual.is_some_and(|r| self.rg(r));
        self.push(
            value,
            Op::SkipConv {
                adj: adj.0,
                x,
                skip,
                w,
                b,
                init_residual,
                identity_map,
                residual,
                cache,
            },
            rg,
        )
    }

    /// Column-wise concatenation (JKNet's layer aggregation).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat of zero parts");
        let rows = self.shape(parts[0]).0;
        let cols = parts.iter().map(|&p| self.shape(p).1).sum();
        if self.infer() {
            return self.push_pending(rows, cols, Op::ConcatCols(parts.to_vec()));
        }
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Matrix::hcat(&mats);
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Elementwise max across same-shaped inputs (JKNet max aggregation).
    pub fn max_pool(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "max_pool of zero parts");
        let shape = self.shape(parts[0]);
        for &p in parts {
            assert_eq!(self.shape(p), shape, "max_pool shape mismatch");
        }
        if self.infer() {
            // `argmax` is a backward-only record; the executor recomputes
            // the max directly.
            return self.push_pending(
                shape.0,
                shape.1,
                Op::MaxPool {
                    xs: parts.to_vec(),
                    argmax: Vec::new(),
                },
            );
        }
        let len = self.value(parts[0]).len();
        let mut value = workspace::take_copy(self.value(parts[0]));
        let mut argmax = vec![0u8; len];
        for (k, &p) in parts.iter().enumerate().skip(1) {
            let pv = self.value(p).as_slice().to_vec();
            for (i, &cand) in pv.iter().enumerate() {
                if cand > value.as_slice()[i] {
                    value.as_mut_slice()[i] = cand;
                    argmax[i] = k as u8;
                }
            }
        }
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(
            value,
            Op::MaxPool {
                xs: parts.to_vec(),
                argmax,
            },
            rg,
        )
    }

    /// Segmented graph readout: pool each segment's contiguous row range of
    /// `x` into one output row (`seg.num_segments() × d`). This is the
    /// graph-classification pooling layer over a packed multi-graph batch;
    /// a [`SegmentTable::single`] table reduces the whole matrix to one row.
    pub fn readout(&mut self, x: NodeId, kind: ReadoutKind, seg: &Arc<SegmentTable>) -> NodeId {
        let (n, d) = self.shape(x);
        assert_eq!(n, seg.total_rows(), "segment table must cover input rows");
        let g_rows = seg.num_segments();
        if self.infer() {
            // `argmax` is a backward-only record; the executor recomputes
            // the pooling (and refreshes the record on compiled replay).
            return self.push_pending(
                g_rows,
                d,
                Op::Readout {
                    x,
                    kind,
                    seg: Arc::clone(seg),
                    argmax: Vec::new(),
                },
            );
        }
        let mut value = workspace::take_scratch(g_rows, d);
        let mut argmax = Vec::new();
        segment_reduce_into(self.value(x), seg, kind, &mut value, &mut argmax);
        let rg = self.rg(x);
        self.push(
            value,
            Op::Readout {
                x,
                kind,
                seg: Arc::clone(seg),
                argmax,
            },
            rg,
        )
    }

    /// PairNorm center-and-scale with target scale `s`.
    pub fn pairnorm(&mut self, x: NodeId, s: f32) -> NodeId {
        if self.infer() {
            let (rows, cols) = self.shape(x);
            return self.push_pending(rows, cols, Op::PairNorm { x, s });
        }
        let value = pairnorm_forward(self.value(x), s);
        let rg = self.rg(x);
        self.push(value, Op::PairNorm { x, s }, rg)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, cols) = self.shape(a);
        assert_eq!((rows, cols), self.shape(b), "hadamard shape mismatch");
        if self.infer() {
            return self.push_pending(rows, cols, Op::Hadamard(a, b));
        }
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Hadamard(a, b), rg)
    }

    /// Fixed-coefficient linear combination `Σ c_k * x_k`.
    pub fn lin_comb(&mut self, parts: &[(NodeId, f32)]) -> NodeId {
        assert!(!parts.is_empty(), "lin_comb of zero parts");
        let shape = self.shape(parts[0].0);
        for &(p, _) in parts {
            assert_eq!(self.shape(p), shape, "lin_comb shape mismatch");
        }
        if self.infer() {
            return self.push_pending(shape.0, shape.1, Op::LinComb(parts.to_vec()));
        }
        let mut value = workspace::take(shape.0, shape.1);
        for &(p, c) in parts {
            value.add_scaled(self.value(p), c);
        }
        let rg = parts.iter().any(|&(p, _)| self.rg(p));
        self.push(value, Op::LinComb(parts.to_vec()), rg)
    }

    /// Learnable-weight combination `Σ_k w[0,k] * x_k` (GPRGNN's
    /// generalized-PageRank coefficients).
    pub fn weighted_sum(&mut self, xs: &[NodeId], w: NodeId) -> NodeId {
        assert!(!xs.is_empty(), "weighted_sum of zero parts");
        assert_eq!(self.shape(w).0, 1, "weights must be a row vector");
        assert_eq!(self.shape(w).1, xs.len(), "one weight per input");
        let shape = self.shape(xs[0]);
        for &x in xs {
            assert_eq!(self.shape(x), shape, "weighted_sum shape mismatch");
        }
        if self.infer() {
            return self.push_pending(shape.0, shape.1, Op::WeightedSum { xs: xs.to_vec(), w });
        }
        let coef: Vec<f32> = (0..xs.len()).map(|k| self.value(w).get(0, k)).collect();
        let mut value = workspace::take(shape.0, shape.1);
        for (&x, &c) in xs.iter().zip(&coef) {
            value.add_scaled(self.value(x), c);
        }
        let rg = xs.iter().any(|&p| self.rg(p)) || self.rg(w);
        self.push(value, Op::WeightedSum { xs: xs.to_vec(), w }, rg)
    }

    /// Per-edge dot-product scores `h_u · h_v` as an `m×1` column (the
    /// link-prediction decoder).
    pub fn edge_score(&mut self, h: NodeId, edges: &[(usize, usize)]) -> NodeId {
        let rows = self.shape(h).0;
        for &(u, v) in edges {
            assert!(u < rows && v < rows, "edge endpoint out of range");
        }
        if self.infer() {
            return self.push_pending(
                edges.len(),
                1,
                Op::EdgeScore {
                    h,
                    edges: edges.to_vec(),
                },
            );
        }
        let hv = self.value(h);
        let mut value = workspace::take(edges.len(), 1);
        for (e, &(u, v)) in edges.iter().enumerate() {
            let dot: f32 = hv.row(u).iter().zip(hv.row(v)).map(|(&a, &b)| a * b).sum();
            value.set(e, 0, dot);
        }
        let rg = self.rg(h);
        self.push(
            value,
            Op::EdgeScore {
                h,
                edges: edges.to_vec(),
            },
            rg,
        )
    }
}
