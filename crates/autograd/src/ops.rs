//! Forward op constructors on [`Tape`].

use crate::tape::{pairnorm_forward, AdjId, NodeId, Op, SkipConvCache, Tape};
use skipnode_sparse::COL_SKIP;
use skipnode_tensor::{workspace, Matrix, SplitRng};

impl Tape {
    fn rg(&self, id: NodeId) -> bool {
        self.requires_grad(id)
    }

    /// Dense product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Sparse propagation `Ã * x`.
    pub fn spmm(&mut self, adj: AdjId, x: NodeId) -> NodeId {
        let value = self.adjs[adj.0].mat.spmm(self.value(x));
        let rg = self.rg(x);
        self.push(value, Op::Spmm { adj: adj.0, x }, rg)
    }

    /// `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_scaled(a, b, 1.0)
    }

    /// `a + c * b`.
    pub fn add_scaled(&mut self, a: NodeId, b: NodeId, c: f32) -> NodeId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add_scaled shape mismatch"
        );
        let mut value = workspace::take_copy(self.value(a));
        value.add_scaled(self.value(b), c);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddScaled(a, b, c), rg)
    }

    /// `c * x`.
    pub fn scale(&mut self, x: NodeId, c: f32) -> NodeId {
        let value = self.value(x) * c;
        let rg = self.rg(x);
        self.push(value, Op::Scale(x, c), rg)
    }

    /// Broadcast bias add: `x (n×d) + bias (1×d)`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let b = self.value(bias);
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), self.value(x).cols(), "bias width mismatch");
        let mut value = workspace::take_copy(self.value(x));
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            for (v, &bv) in row.iter_mut().zip(self.nodes[bias.0].value.row(0)) {
                *v += bv;
            }
        }
        let rg = self.rg(x) || self.rg(bias);
        self.push(value, Op::AddBias(x, bias), rg)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let value = self.value(x).relu();
        let rg = self.rg(x);
        self.push(value, Op::Relu(x), rg)
    }

    /// Inverted dropout with rate `p` (no-op when `p == 0`).
    pub fn dropout(&mut self, x: NodeId, p: f64, rng: &mut SplitRng) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = (1.0 / (1.0 - p)) as f32;
        let len = self.value(x).len();
        let mask: Vec<f32> = (0..len)
            .map(|_| if rng.bernoulli(p) { 0.0 } else { scale })
            .collect();
        let mut value = workspace::take_copy(self.value(x));
        for (v, &m) in value.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        let rg = self.rg(x);
        self.push(value, Op::Mask { x, mask }, rg)
    }

    /// Row-level dropout (GRAND's random propagation masks whole node
    /// feature rows), with inverted scaling.
    pub fn dropout_rows(&mut self, x: NodeId, p: f64, rng: &mut SplitRng) -> NodeId {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = (1.0 / (1.0 - p)) as f32;
        let rows = self.value(x).rows();
        let factors: Vec<f32> = (0..rows)
            .map(|_| if rng.bernoulli(p) { 0.0 } else { scale })
            .collect();
        let mut value = workspace::take_copy(self.value(x));
        for (r, &f) in factors.iter().enumerate() {
            for v in value.row_mut(r) {
                *v *= f;
            }
        }
        let rg = self.rg(x);
        self.push(value, Op::RowMask { x, factors }, rg)
    }

    /// SkipNode combine (Eq. 4): row `i` of the output is `skip`'s row when
    /// `take_skip[i]`, else `conv`'s row. Gradients route through whichever
    /// branch supplied the row — this is what lets gradients bypass deep
    /// stacks of weight multiplications.
    pub fn row_combine(&mut self, conv: NodeId, skip: NodeId, take_skip: &[bool]) -> NodeId {
        assert_eq!(
            self.value(conv).shape(),
            self.value(skip).shape(),
            "row_combine shape mismatch"
        );
        assert_eq!(
            take_skip.len(),
            self.value(conv).rows(),
            "row_combine mask length"
        );
        let mut value = workspace::take_copy(self.value(conv));
        for (r, &take) in take_skip.iter().enumerate() {
            if take {
                value
                    .row_mut(r)
                    .copy_from_slice(self.nodes[skip.0].value.row(r));
            }
        }
        let rg = self.rg(conv) || self.rg(skip);
        self.push(
            value,
            Op::RowCombine {
                conv,
                skip,
                take_skip: take_skip.to_vec(),
            },
            rg,
        )
    }

    /// Fused SkipNode layer (Eq. 4 applied to a whole GCN layer):
    /// `row_combine(relu(Ã·x·W + b), skip, take_skip)` as one masked kernel.
    ///
    /// Unlike the unfused `spmm → matmul → add_bias → relu → row_combine`
    /// chain, rows with `take_skip[i]` never enter the SpMM or the GEMM —
    /// the sparse gather, dense product, bias, and ReLU all run on the
    /// compacted active-row set only, so per-layer work scales with the
    /// non-skipped fraction. Skipped rows copy `skip`'s row; their backward
    /// is the identity route, exactly as in [`Tape::row_combine`].
    ///
    /// Requires `skip` to already have the output width (`n × d_out`),
    /// which holds for SkipNode's middle hidden→hidden layers.
    pub fn skip_conv(
        &mut self,
        adj: AdjId,
        x: NodeId,
        skip: NodeId,
        w: NodeId,
        b: NodeId,
        take_skip: &[bool],
    ) -> NodeId {
        let n = self.value(x).rows();
        let d_out = self.value(w).cols();
        assert_eq!(take_skip.len(), n, "skip_conv mask length");
        assert_eq!(
            self.value(skip).shape(),
            (n, d_out),
            "skip_conv skip branch must match the conv output shape"
        );
        assert_eq!(self.value(b).rows(), 1, "bias must be a row vector");
        assert_eq!(self.value(b).cols(), d_out, "bias width mismatch");

        let mut active = Vec::with_capacity(n);
        let mut col_map = vec![COL_SKIP; n];
        for (r, &take) in take_skip.iter().enumerate() {
            if !take {
                col_map[r] = active.len() as u32;
                active.push(r as u32);
            }
        }

        let (value, cache) = {
            let mat = &self.adjs[adj.0].mat;
            let xv = &self.nodes[x.0].value;
            let wv = &self.nodes[w.0].value;
            let bv = &self.nodes[b.0].value;
            let sv = &self.nodes[skip.0].value;
            assert_eq!(mat.rows(), n, "skip_conv adjacency row count");

            // Compact gather: P = (Ã x) on active rows only.
            let mut p_active = workspace::take_scratch(active.len(), xv.cols());
            mat.spmm_rows_subset(xv, &active, &mut p_active);
            // Compact conv: Z = relu(P·W + b), |active| × d_out.
            let mut z = workspace::take_scratch(active.len(), d_out);
            p_active.matmul_into(wv, &mut z);
            for local in 0..z.rows() {
                for (v, &bias) in z.row_mut(local).iter_mut().zip(bv.row(0)) {
                    *v = (*v + bias).max(0.0);
                }
            }
            // Scatter: skipped rows copy the skip branch verbatim.
            let mut value = workspace::take_scratch(n, d_out);
            for (r, &m) in col_map.iter().enumerate() {
                let src = if m == COL_SKIP {
                    sv.row(r)
                } else {
                    z.row(m as usize)
                };
                value.row_mut(r).copy_from_slice(src);
            }
            workspace::give(z);
            (
                value,
                Box::new(SkipConvCache {
                    active,
                    col_map,
                    p_active,
                }),
            )
        };
        let rg = self.rg(x) || self.rg(skip) || self.rg(w) || self.rg(b);
        self.push(
            value,
            Op::SkipConv {
                adj: adj.0,
                x,
                skip,
                w,
                b,
                cache,
            },
            rg,
        )
    }

    /// Column-wise concatenation (JKNet's layer aggregation).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat of zero parts");
        let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Matrix::hcat(&mats);
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Elementwise max across same-shaped inputs (JKNet max aggregation).
    pub fn max_pool(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "max_pool of zero parts");
        let shape = self.value(parts[0]).shape();
        for &p in parts {
            assert_eq!(self.value(p).shape(), shape, "max_pool shape mismatch");
        }
        let len = self.value(parts[0]).len();
        let mut value = workspace::take_copy(self.value(parts[0]));
        let mut argmax = vec![0u8; len];
        for (k, &p) in parts.iter().enumerate().skip(1) {
            let pv = self.value(p).as_slice().to_vec();
            for (i, &cand) in pv.iter().enumerate() {
                if cand > value.as_slice()[i] {
                    value.as_mut_slice()[i] = cand;
                    argmax[i] = k as u8;
                }
            }
        }
        let rg = parts.iter().any(|&p| self.rg(p));
        self.push(
            value,
            Op::MaxPool {
                xs: parts.to_vec(),
                argmax,
            },
            rg,
        )
    }

    /// PairNorm center-and-scale with target scale `s`.
    pub fn pairnorm(&mut self, x: NodeId, s: f32) -> NodeId {
        let value = pairnorm_forward(self.value(x), s);
        let rg = self.rg(x);
        self.push(value, Op::PairNorm { x, s }, rg)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::Hadamard(a, b), rg)
    }

    /// Fixed-coefficient linear combination `Σ c_k * x_k`.
    pub fn lin_comb(&mut self, parts: &[(NodeId, f32)]) -> NodeId {
        assert!(!parts.is_empty(), "lin_comb of zero parts");
        let shape = self.value(parts[0].0).shape();
        let mut value = workspace::take(shape.0, shape.1);
        for &(p, c) in parts {
            assert_eq!(self.value(p).shape(), shape, "lin_comb shape mismatch");
            value.add_scaled(self.value(p), c);
        }
        let rg = parts.iter().any(|&(p, _)| self.rg(p));
        self.push(value, Op::LinComb(parts.to_vec()), rg)
    }

    /// Learnable-weight combination `Σ_k w[0,k] * x_k` (GPRGNN's
    /// generalized-PageRank coefficients).
    pub fn weighted_sum(&mut self, xs: &[NodeId], w: NodeId) -> NodeId {
        assert!(!xs.is_empty(), "weighted_sum of zero parts");
        let wv = self.value(w);
        assert_eq!(wv.rows(), 1, "weights must be a row vector");
        assert_eq!(wv.cols(), xs.len(), "one weight per input");
        let shape = self.value(xs[0]).shape();
        let coef: Vec<f32> = (0..xs.len()).map(|k| self.value(w).get(0, k)).collect();
        let mut value = workspace::take(shape.0, shape.1);
        for (&x, &c) in xs.iter().zip(&coef) {
            assert_eq!(self.value(x).shape(), shape, "weighted_sum shape mismatch");
            value.add_scaled(self.value(x), c);
        }
        let rg = xs.iter().any(|&p| self.rg(p)) || self.rg(w);
        self.push(value, Op::WeightedSum { xs: xs.to_vec(), w }, rg)
    }

    /// Per-edge dot-product scores `h_u · h_v` as an `m×1` column (the
    /// link-prediction decoder).
    pub fn edge_score(&mut self, h: NodeId, edges: &[(usize, usize)]) -> NodeId {
        let hv = self.value(h);
        let mut value = workspace::take(edges.len(), 1);
        for (e, &(u, v)) in edges.iter().enumerate() {
            assert!(u < hv.rows() && v < hv.rows(), "edge endpoint out of range");
            let dot: f32 = hv.row(u).iter().zip(hv.row(v)).map(|(&a, &b)| a * b).sum();
            value.set(e, 0, dot);
        }
        let rg = self.rg(h);
        self.push(
            value,
            Op::EdgeScore {
                h,
                edges: edges.to_vec(),
            },
            rg,
        )
    }
}
