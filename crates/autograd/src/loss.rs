//! Loss heads.
//!
//! Losses return both the scalar loss and the *seed gradient at the
//! logits*. Keeping the seed explicit (rather than pushing a scalar node)
//! lets the training loop hand the exact "gradient at the classification
//! layer" to the Figure-2(b) diagnostics, and lets multi-head objectives
//! (GRAND's consistency regularization) sum seeds before one backward pass.

use skipnode_tensor::{row_softmax_in_place, Matrix};

/// Loss value plus the gradient of the loss w.r.t. the logits.
pub struct LossOutput {
    /// Mean loss over the supervised rows.
    pub loss: f64,
    /// `∂L/∂Z`, zero outside the supervised rows.
    pub grad: Matrix,
    /// Row-softmax probabilities (useful to callers computing metrics).
    pub probs: Matrix,
}

/// Masked softmax cross-entropy over the rows listed in `idx`.
///
/// `logits` is `n × C`; `labels[i] < C` for every `i ∈ idx`. The gradient
/// rows follow the standard `(softmax − one_hot)/B` form — exactly the
/// quantity analyzed in Theorem 1 of the paper.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize], idx: &[usize]) -> LossOutput {
    assert!(!idx.is_empty(), "empty supervision set");
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let c = logits.cols();
    let mut probs = logits.clone();
    row_softmax_in_place(&mut probs);
    let b = idx.len() as f64;
    let mut grad = Matrix::zeros(logits.rows(), c);
    let mut loss = 0.0f64;
    for &i in idx {
        let y = labels[i];
        assert!(y < c, "label {y} out of range for {c} classes");
        let p = probs.get(i, y).max(1e-12) as f64;
        loss -= p.ln();
        let grow = grad.row_mut(i);
        for (j, g) in grow.iter_mut().enumerate() {
            let indicator = if j == y { 1.0 } else { 0.0 };
            *g = ((probs.get(i, j) - indicator) as f64 / b) as f32;
        }
    }
    LossOutput {
        loss: loss / b,
        grad,
        probs,
    }
}

/// Binary cross-entropy with logits over an `m × 1` score column.
///
/// `targets[e] ∈ {0.0, 1.0}`. Numerically stable log-sum-exp form.
pub fn bce_with_logits(scores: &Matrix, targets: &[f32]) -> LossOutput {
    assert_eq!(scores.cols(), 1, "scores must be a column");
    assert_eq!(scores.rows(), targets.len(), "one target per score");
    assert!(!targets.is_empty(), "empty target set");
    let m = targets.len() as f64;
    let mut grad = Matrix::zeros(scores.rows(), 1);
    let mut probs = Matrix::zeros(scores.rows(), 1);
    let mut loss = 0.0f64;
    for (e, &t) in targets.iter().enumerate() {
        let z = scores.get(e, 0) as f64;
        // log(1 + e^{-|z|}) + max(z, 0) − t·z
        loss += (1.0 + (-z.abs()).exp()).ln() + z.max(0.0) - t as f64 * z;
        let sigma = 1.0 / (1.0 + (-z).exp());
        probs.set(e, 0, sigma as f32);
        grad.set(e, 0, ((sigma - t as f64) / m) as f32);
    }
    LossOutput {
        loss: loss / m,
        grad,
        probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let out = softmax_cross_entropy(&logits, &[0, 1], &[0, 1]);
        assert!(out.loss < 1e-4, "loss {}", out.loss);
        assert!(out.grad.max_abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let logits = Matrix::zeros(3, 4);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2], &[0, 1, 2]);
        assert!((out.loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[1.0, 0.0, -1.0]]);
        let labels = [2usize, 0];
        let idx = [0usize, 1];
        let out = softmax_cross_entropy(&logits, &labels, &idx);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let lp = softmax_cross_entropy(&plus, &labels, &idx).loss;
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let lm = softmax_cross_entropy(&minus, &labels, &idx).loss;
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let an = out.grad.get(r, c);
                assert!((fd - an).abs() < 1e-3, "({r},{c}): fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn cross_entropy_ignores_unsupervised_rows() {
        let logits = Matrix::from_rows(&[&[5.0, -5.0], &[3.0, 3.0]]);
        let out = softmax_cross_entropy(&logits, &[0, 0], &[0]);
        assert_eq!(out.grad.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn theorem_1_balanced_classes_zero_column_gradient_at_trivial_output() {
        // Theorem 1: with zero logits (the over-smoothed fixed point) and a
        // class-balanced training set, the per-class summed gradient is 0.
        let c = 4;
        let b = 40;
        let logits = Matrix::zeros(b, c);
        let labels: Vec<usize> = (0..b).map(|i| i % c).collect();
        let idx: Vec<usize> = (0..b).collect();
        let out = softmax_cross_entropy(&logits, &labels, &idx);
        for j in 0..c {
            let col_sum: f64 = (0..b).map(|i| out.grad.get(i, j) as f64).sum();
            assert!(col_sum.abs() < 1e-7, "class {j}: {col_sum}");
        }
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let scores = Matrix::from_rows(&[&[0.3], &[-1.2], &[2.0]]);
        let targets = [1.0f32, 0.0, 1.0];
        let out = bce_with_logits(&scores, &targets);
        let eps = 1e-3f32;
        for e in 0..3 {
            let mut plus = scores.clone();
            plus.set(e, 0, plus.get(e, 0) + eps);
            let lp = bce_with_logits(&plus, &targets).loss;
            let mut minus = scores.clone();
            minus.set(e, 0, minus.get(e, 0) - eps);
            let lm = bce_with_logits(&minus, &targets).loss;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let an = out.grad.get(e, 0);
            assert!((fd - an).abs() < 1e-3, "edge {e}: fd {fd} vs {an}");
        }
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let scores = Matrix::from_rows(&[&[60.0], &[-60.0]]);
        let out = bce_with_logits(&scores, &[1.0, 0.0]);
        assert!(out.loss.is_finite());
        assert!(out.loss < 1e-6);
    }
}
