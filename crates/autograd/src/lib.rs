#![warn(missing_docs)]

//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! The engine is deliberately specialized to what GNN training needs:
//! values are whole [`Matrix`] activations (nodes × features), the op set
//! is a closed enum (GEMM, sparse propagation, ReLU, dropout, PairNorm, the
//! SkipNode row-combine, …), and losses produce explicit seed gradients so
//! the *gradient at the classification layer* — the quantity Figure 2(b) of
//! the paper tracks — is directly observable.
//!
//! A fresh [`Tape`] is built per forward pass; parameters are copied in as
//! leaf nodes and their gradients read back out by registration order.
//!
//! ```
//! use skipnode_autograd::Tape;
//! use skipnode_tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let w = tape.param(Matrix::from_rows(&[&[2.0]]));
//! let x = tape.constant(Matrix::from_rows(&[&[3.0]]));
//! let y = tape.matmul(x, w);
//! // dL/dy = 1 seeds the backward pass.
//! let grads = tape.backward(y, Matrix::from_rows(&[&[1.0]]));
//! assert_eq!(grads[&w].get(0, 0), 3.0); // dy/dw = x
//! ```

mod attention;
mod gradcheck;
mod infer;
mod loss;
mod ops;
pub mod subset;
mod tape;
mod train_exec;

pub use attention::AttentionGraph;
pub use gradcheck::finite_difference_check;
pub use loss::{bce_with_logits, softmax_cross_entropy, LossOutput};
pub use ops::FusedStep;
pub use tape::{AdjId, NodeId, Tape};
pub use train_exec::{CompileError, EpochSampler, TrainProgram};
