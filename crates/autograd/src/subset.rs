//! Scalar semantics of the elementwise tape ops, factored out so
//! row-subset consumers can reuse them verbatim.
//!
//! The serving engine (`skipnode-serve`) re-executes a compiled
//! [`LayerPlan`](../../skipnode_nn/plan/struct.LayerPlan.html) over
//! *frontier-compacted* matrices instead of a tape: every intermediate
//! holds only the rows a micro-batch of queries can reach. Its bitwise
//! gate — batched answers identical to the full-graph forward — only
//! holds if every elementwise op applies the exact same scalar
//! operations in the same order as the tape executors. These helpers
//! are those operations, shared by [`crate::infer`]'s deferred executor
//! and the subset interpreter so the two can never drift.
//!
//! Everything here is row-local (each output row depends only on the
//! same row of each operand), which is precisely why a row-compacted
//! execution can be bitwise identical to the full one.

use skipnode_tensor::Matrix;

/// `v[r, :] += bias[0, :]` for every row — the tape's `AddBias`.
pub fn add_bias_in_place(v: &mut Matrix, bias: &Matrix) {
    for r in 0..v.rows() {
        let row = v.row_mut(r);
        for (t, &bv) in row.iter_mut().zip(bias.row(0)) {
            *t += bv;
        }
    }
}

/// Elementwise `max(x, 0)` — the tape's `Relu`.
pub fn relu_in_place(v: &mut Matrix) {
    for t in v.as_mut_slice() {
        *t = t.max(0.0);
    }
}

/// `v = Σ parts[k].0 · parts[k].1` accumulated in part order onto a
/// zeroed buffer — the tape's `LinComb` (and `WeightedSum`, whose
/// coefficients come from a `1 × K` parameter row).
///
/// # Panics
/// Panics if `v` and any part disagree in shape.
pub fn lin_comb_into(v: &mut Matrix, parts: &[(&Matrix, f32)]) {
    v.as_mut_slice().fill(0.0);
    for &(p, c) in parts {
        v.add_scaled(p, c);
    }
}

/// Elementwise `v = max(v, cand)` keeping `v` on ties — the tape's
/// `MaxPool` accumulation step (parts after the first fold in with this).
pub fn max_pool_in_place(v: &mut Matrix, cand: &Matrix) {
    for (t, &c) in v.as_mut_slice().iter_mut().zip(cand.as_slice()) {
        if c > *t {
            *t = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_bias_adds_the_bias_row_to_every_row() {
        let mut v = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0]]);
        add_bias_in_place(&mut v, &b);
        assert_eq!(v.as_slice(), &[1.5, 1.0, 3.5, 3.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut v = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        relu_in_place(&mut v);
        assert_eq!(v.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn lin_comb_accumulates_in_order() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        let mut v = Matrix::full(1, 2, f32::NAN);
        lin_comb_into(&mut v, &[(&a, 0.5), (&b, 0.1)]);
        assert_eq!(v.as_slice(), &[1.5, 3.0]);
    }

    #[test]
    fn max_pool_keeps_the_larger_entry() {
        let mut v = Matrix::from_rows(&[&[1.0, 5.0]]);
        let c = Matrix::from_rows(&[&[3.0, 2.0]]);
        max_pool_in_place(&mut v, &c);
        assert_eq!(v.as_slice(), &[3.0, 5.0]);
    }
}
