//! The tape: node storage, adjacency registry, and the backward pass.

use skipnode_sparse::CsrMatrix;
use skipnode_tensor::segment::segment_reduce_backward_into;
use skipnode_tensor::{workspace, Matrix, ReadoutKind, SegmentTable};
use std::ops::Index;
use std::sync::Arc;

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Handle to a registered sparse propagation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjId(pub(crate) usize);

pub(crate) struct AdjEntry {
    pub mat: Arc<CsrMatrix>,
    /// `None` when the matrix is symmetric (backward reuses `mat`). Shared
    /// with the matrix's own metadata cache, so re-registering the same
    /// adjacency every epoch never re-transposes.
    pub transpose: Option<Arc<CsrMatrix>>,
}

impl AdjEntry {
    /// The matrix backward propagates through (`Ãᵀ`, which is `Ã` itself
    /// for the symmetric GCN normalization).
    pub fn backward_mat(&self) -> &CsrMatrix {
        match &self.transpose {
            Some(t) => t,
            None => &self.mat,
        }
    }
}

/// The operation that produced a node (closed-world op set).
pub(crate) enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Spmm {
        adj: usize,
        x: NodeId,
    },
    /// `a + c * b`
    AddScaled(NodeId, NodeId, f32),
    Scale(NodeId, f32),
    /// `x (n×d) + bias (1×d)` broadcast over rows
    AddBias(NodeId, NodeId),
    Relu(NodeId),
    /// Elementwise mask multiply (inverted-dropout mask, already scaled).
    /// `rate` keeps the original drop probability so compiled replay
    /// ([`crate::train_exec`]) can redraw the mask each epoch.
    Mask {
        x: NodeId,
        mask: Vec<f32>,
        rate: f64,
    },
    /// Per-row mask multiply (GRAND-style row dropout; factors scaled).
    RowMask {
        x: NodeId,
        factors: Vec<f32>,
        rate: f64,
    },
    /// SkipNode combine: row i comes from `skip` when `take_skip[i]`,
    /// otherwise from `conv`.
    RowCombine {
        conv: NodeId,
        skip: NodeId,
        take_skip: Vec<bool>,
    },
    /// Fused SkipNode layer:
    /// `row_combine(relu(support·W̃ [+ b]) [+ residual], skip, mask)` as one
    /// masked kernel, where `support` optionally mixes an initial residual
    /// (`init_residual`) into the propagation and `W̃` optionally applies
    /// GCNII's identity map (`identity_map`). Skipped rows copy `skip` and
    /// never enter the SpMM/GEMM; their backward is the identity route. See
    /// [`Tape::skip_conv_step`].
    SkipConv {
        adj: usize,
        x: NodeId,
        skip: NodeId,
        w: NodeId,
        b: Option<NodeId>,
        init_residual: Option<(NodeId, f32)>,
        identity_map: Option<f32>,
        residual: Option<NodeId>,
        cache: Box<SkipConvCache>,
    },
    ConcatCols(Vec<NodeId>),
    /// Elementwise max across same-shaped inputs; `argmax[i]` records the
    /// winning input per element.
    MaxPool {
        xs: Vec<NodeId>,
        argmax: Vec<u8>,
    },
    /// Segmented graph readout: pools each segment's contiguous row range
    /// of `x` into one output row (`g × d`, one row per graph in the packed
    /// batch). `argmax` is the max-pool backward record — row index per
    /// `(segment, column)`, [`skipnode_tensor::segment::SEG_NO_ARGMAX`] for
    /// empty segments, empty vec for mean/sum — refreshed on compiled
    /// replay exactly like [`Op::MaxPool`]'s.
    Readout {
        x: NodeId,
        kind: ReadoutKind,
        seg: Arc<SegmentTable>,
        argmax: Vec<u32>,
    },
    /// PairNorm center-and-scale with target scale `s`.
    PairNorm {
        x: NodeId,
        s: f32,
    },
    Hadamard(NodeId, NodeId),
    /// Fixed-coefficient linear combination of same-shaped inputs.
    LinComb(Vec<(NodeId, f32)>),
    /// `Σ_k w[0,k] * xs[k]` with learnable `w` (1×K).
    WeightedSum {
        xs: Vec<NodeId>,
        w: NodeId,
    },
    /// Per-edge dot products `h_u · h_v` producing an `m×1` score column.
    EdgeScore {
        h: NodeId,
        edges: Vec<(usize, usize)>,
    },
    /// Fused GAT neighborhood attention (see the `attention` module).
    GatAggregate {
        h: NodeId,
        s_src: NodeId,
        s_dst: NodeId,
        cache: Box<crate::attention::GatCache>,
    },
}

/// Forward-pass intermediates the fused SkipNode layer keeps for backward.
pub(crate) struct SkipConvCache {
    /// Non-skipped row indices, ascending.
    pub active: Vec<u32>,
    /// Inverse map: node → position in `active`, or
    /// [`skipnode_sparse::COL_SKIP`] for skipped rows.
    pub col_map: Vec<u32>,
    /// The GEMM left operand gathered on the active rows
    /// (`|active| × d_in`): `(Ã x)` — or the initial-residual mix
    /// `(1-α)(Ã x) + α h0` when one is fused — reused for `dW = Sᵀ·dZ`.
    pub p_active: Matrix,
    /// Pre-residual ReLU output on the active rows (`|active| × d_out`).
    /// Only kept when a post-activation residual is fused (the fused
    /// output then includes the residual, so the ReLU mask can no longer
    /// be read back from it); empty (`0×0`) otherwise.
    pub relu_active: Matrix,
}

/// A node's storage. Training tapes materialize every node eagerly
/// (`Owned`); inference tapes record shape-only `Pending` placeholders that
/// [`Tape::run`] materializes and frees again as liveness allows. `Shared`
/// holds borrowed constants (e.g. the graph's feature matrix) that are
/// registered by `Arc` instead of being copied onto every tape.
pub(crate) enum Value {
    Owned(Matrix),
    Shared(Arc<Matrix>),
    Pending { rows: usize, cols: usize },
}

impl Value {
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Value::Owned(m) => m.shape(),
            Value::Shared(m) => m.shape(),
            Value::Pending { rows, cols } => (*rows, *cols),
        }
    }

    /// The materialized matrix.
    ///
    /// # Panics
    /// Panics on `Pending` — reading data from an unmaterialized (or
    /// already-freed) inference node is a liveness bug.
    pub fn matrix(&self) -> &Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(m) => m,
            Value::Pending { rows, cols } => panic!(
                "node value ({rows}x{cols}) is not materialized; \
                 inference tapes only hold data during Tape::run"
            ),
        }
    }
}

pub(crate) struct Node {
    pub value: Value,
    pub op: Op,
    pub requires_grad: bool,
}

/// Gradients produced by a backward pass, indexed by [`NodeId`].
pub struct Grads(Vec<Option<Matrix>>);

impl Grads {
    /// Gradient for `id`, if the node participated in the backward pass.
    pub fn get(&self, id: NodeId) -> Option<&Matrix> {
        self.0.get(id.0).and_then(|g| g.as_ref())
    }

    /// Move the gradient for `id` out of the map.
    pub fn take(&mut self, id: NodeId) -> Option<Matrix> {
        self.0.get_mut(id.0).and_then(|g| g.take())
    }
}

impl Index<NodeId> for Grads {
    type Output = Matrix;
    fn index(&self, id: NodeId) -> &Matrix {
        self.get(id).expect("no gradient recorded for node")
    }
}

impl Index<&NodeId> for Grads {
    type Output = Matrix;
    fn index(&self, id: &NodeId) -> &Matrix {
        &self[*id]
    }
}

impl Drop for Grads {
    fn drop(&mut self) {
        for slot in self.0.iter_mut() {
            if let Some(g) = slot.take() {
                workspace::give(g);
            }
        }
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        for node in self.nodes.drain(..) {
            if let Op::SkipConv { cache, .. } = node.op {
                workspace::give(cache.p_active);
                if cache.relu_active.rows() > 0 {
                    workspace::give(cache.relu_active);
                }
            }
            if let Value::Owned(m) = node.value {
                workspace::give(m);
            }
        }
    }
}

/// A single-use computation tape.
///
/// Dropping a tape returns every node's value buffer to the
/// [`workspace`] free-list, so the next epoch's forward pass reuses the
/// same allocations.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) adjs: Vec<AdjEntry>,
    params: Vec<NodeId>,
    infer: bool,
    quantized: bool,
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh tape in no-grad inference mode.
    ///
    /// Op constructors record shape-only placeholder nodes (drawing from
    /// the RNG exactly as the eager path does, so streams stay aligned) and
    /// [`Tape::run`] later materializes just the nodes the requested
    /// outputs need, freeing every intermediate back to the [`workspace`]
    /// free-list as soon as its last consumer has run. The backward pass is
    /// unavailable on an inference tape.
    pub fn inference() -> Self {
        let mut tape = Self::default();
        tape.infer = true;
        tape
    }

    /// True when this tape was created with [`Tape::inference`].
    pub fn is_inference(&self) -> bool {
        self.infer
    }

    /// Fresh no-grad inference tape whose dense `MatMul` products against
    /// leaf weight matrices run through int8 symmetric post-training
    /// quantization ([`skipnode_tensor::quant`]) instead of the f32 GEMM.
    /// Weights are calibrated per column at evaluation time; everything
    /// else (SpMM, elementwise, the fused SkipNode layer) stays f32, so
    /// the quantization error is confined to the dense projections.
    pub fn inference_quantized() -> Self {
        let mut tape = Self::inference();
        tape.quantized = true;
        tape
    }

    /// True when this tape routes leaf-weight `MatMul`s through int8.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            value: Value::Owned(value),
            // Inference tapes never backprop, so no node needs gradients.
            requires_grad: requires_grad && !self.infer,
            op,
        });
        id
    }

    /// Record a shape-only placeholder (inference mode): the value is
    /// materialized later by [`Tape::run`].
    pub(crate) fn push_pending(&mut self, rows: usize, cols: usize, op: Op) -> NodeId {
        debug_assert!(self.infer, "pending nodes only exist on inference tapes");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            value: Value::Pending { rows, cols },
            op,
            requires_grad: false,
        });
        id
    }

    /// Register a trainable leaf. Gradients are produced for it.
    pub fn param(&mut self, value: Matrix) -> NodeId {
        let id = self.push(value, Op::Leaf, true);
        self.params.push(id);
        id
    }

    /// Register a non-trainable leaf (inputs, cached activations).
    pub fn constant(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf, false)
    }

    /// Register a non-trainable leaf shared by `Arc` — no copy onto the
    /// tape. This is how the per-run feature matrix is registered once per
    /// graph instead of being duplicated into every epoch's tape.
    pub fn constant_shared(&mut self, value: Arc<Matrix>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            value: Value::Shared(value),
            op: Op::Leaf,
            requires_grad: false,
        });
        id
    }

    /// Parameters in registration order (for optimizer hookup).
    pub fn params(&self) -> &[NodeId] {
        &self.params
    }

    /// Register a sparse propagation matrix. Symmetric matrices (the usual
    /// GCN `Ã`) reuse themselves in backward; asymmetric ones (row
    /// normalized) use a transpose. Both the symmetry test and the
    /// transpose are cached **on the matrix itself**, so re-registering the
    /// same `Arc` every epoch (a fresh tape per forward pass) costs one
    /// flag read instead of an O(nnz) transpose.
    pub fn register_adj(&mut self, mat: Arc<CsrMatrix>) -> AdjId {
        let transpose = if mat.is_symmetric_cached() {
            None
        } else {
            Some(mat.transpose_arc())
        };
        let id = AdjId(self.adjs.len());
        self.adjs.push(AdjEntry { mat, transpose });
        id
    }

    /// Swap an already-registered adjacency for a new matrix (compiled
    /// replay re-points the recorded slot at each epoch's sampled
    /// adjacency). Symmetry/transpose metadata comes from the matrix's own
    /// caches, exactly as in [`Tape::register_adj`].
    pub(crate) fn replace_adj(&mut self, idx: usize, mat: Arc<CsrMatrix>) {
        let transpose = if mat.is_symmetric_cached() {
            None
        } else {
            Some(mat.transpose_arc())
        };
        self.adjs[idx] = AdjEntry { mat, transpose };
    }

    /// Value of a node.
    ///
    /// # Panics
    /// Panics on an inference-tape node that is not materialized (use
    /// [`Tape::shape`] for shape queries, which always work).
    pub fn value(&self, id: NodeId) -> &Matrix {
        self.nodes[id.0].value.matrix()
    }

    /// Internal value accessor by raw index.
    pub(crate) fn val(&self, idx: usize) -> &Matrix {
        self.nodes[idx].value.matrix()
    }

    /// Shape of a node. Works in every mode, including on inference-tape
    /// placeholders and already-freed intermediates.
    pub fn shape(&self, id: NodeId) -> (usize, usize) {
        self.nodes[id.0].value.shape()
    }

    /// Move a node's value out of the tape (e.g. evaluation logits), leaving
    /// a shape-only placeholder behind. Shared constants are copied via the
    /// workspace; the caller owns the result either way.
    ///
    /// # Panics
    /// Panics if the value was never materialized or was already taken.
    pub fn take_value(&mut self, id: NodeId) -> Matrix {
        let (rows, cols) = self.nodes[id.0].value.shape();
        match std::mem::replace(&mut self.nodes[id.0].value, Value::Pending { rows, cols }) {
            Value::Owned(m) => m,
            Value::Shared(m) => workspace::take_copy(&m),
            Value::Pending { .. } => panic!("take_value on an unmaterialized node"),
        }
    }

    /// Whether gradients flow to this node.
    pub fn requires_grad(&self, id: NodeId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// Backward pass from a single root with the given seed gradient.
    pub fn backward(&self, root: NodeId, seed: Matrix) -> Grads {
        self.backward_multi(vec![(root, seed)])
    }

    /// Backward pass from several roots at once (used by GRAND, whose loss
    /// seeds gradients into every augmented prediction head).
    pub fn backward_multi(&self, seeds: Vec<(NodeId, Matrix)>) -> Grads {
        assert!(
            !self.infer,
            "backward on an inference tape; Tape::inference keeps no gradient bookkeeping"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        let mut max_id = 0usize;
        for (root, seed) in seeds {
            assert_eq!(
                seed.shape(),
                self.nodes[root.0].value.shape(),
                "seed gradient shape mismatch"
            );
            max_id = max_id.max(root.0);
            accum(&mut grads, root, seed);
        }
        for idx in (0..=max_id).rev() {
            let Some(g) = grads[idx].take() else {
                continue;
            };
            if !self.nodes[idx].requires_grad && !matches!(self.nodes[idx].op, Op::Leaf) {
                continue;
            }
            self.backprop_one(idx, &g, &mut grads);
            // Leaf gradients are kept; interior gradients are kept too so
            // diagnostics can inspect them. Put the gradient back.
            grads[idx] = Some(g);
        }
        Grads(grads)
    }

    fn backprop_one(&self, idx: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                if self.nodes[a.0].requires_grad {
                    let da = g.matmul_t(self.val(b.0));
                    accum(grads, *a, da);
                }
                if self.nodes[b.0].requires_grad {
                    let db = self.val(a.0).t_matmul(g);
                    accum(grads, *b, db);
                }
            }
            Op::Spmm { adj, x } => {
                if self.nodes[x.0].requires_grad {
                    let dx = self.adjs[*adj].backward_mat().spmm(g);
                    accum(grads, *x, dx);
                }
            }
            Op::AddScaled(a, b, c) => {
                if self.nodes[a.0].requires_grad {
                    accum_ref(grads, *a, g);
                }
                if self.nodes[b.0].requires_grad {
                    let db = g * *c;
                    accum(grads, *b, db);
                }
            }
            Op::Scale(x, c) => {
                if self.nodes[x.0].requires_grad {
                    let dx = g * *c;
                    accum(grads, *x, dx);
                }
            }
            Op::AddBias(x, b) => {
                if self.nodes[x.0].requires_grad {
                    accum_ref(grads, *x, g);
                }
                if self.nodes[b.0].requires_grad {
                    // Sum over rows.
                    let mut db = workspace::take(1, g.cols());
                    for r in 0..g.rows() {
                        let row = g.row(r);
                        let dst = db.row_mut(0);
                        for (d, &v) in dst.iter_mut().zip(row) {
                            *d += v;
                        }
                    }
                    accum(grads, *b, db);
                }
            }
            Op::Relu(x) => {
                if self.nodes[x.0].requires_grad {
                    let out = self.val(idx);
                    let dx = g.zip(out, |gv, ov| if ov > 0.0 { gv } else { 0.0 });
                    accum(grads, *x, dx);
                }
            }
            Op::Mask { x, mask, .. } => {
                if self.nodes[x.0].requires_grad {
                    let mut dx = workspace::take_copy(g);
                    for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                        *v *= m;
                    }
                    accum(grads, *x, dx);
                }
            }
            Op::RowMask { x, factors, .. } => {
                if self.nodes[x.0].requires_grad {
                    let mut dx = workspace::take_copy(g);
                    for (r, &f) in factors.iter().enumerate() {
                        for v in dx.row_mut(r) {
                            *v *= f;
                        }
                    }
                    accum(grads, *x, dx);
                }
            }
            Op::RowCombine {
                conv,
                skip,
                take_skip,
            } => {
                let route = |take: bool| -> Matrix {
                    let mut d = workspace::take_copy(g);
                    for (r, &ts) in take_skip.iter().enumerate() {
                        if ts != take {
                            for v in d.row_mut(r) {
                                *v = 0.0;
                            }
                        }
                    }
                    d
                };
                if self.nodes[conv.0].requires_grad {
                    accum(grads, *conv, route(false));
                }
                if self.nodes[skip.0].requires_grad {
                    accum(grads, *skip, route(true));
                }
            }
            Op::SkipConv {
                adj,
                x,
                skip,
                w,
                b,
                init_residual,
                identity_map,
                residual,
                cache,
            } => {
                let out = self.val(idx);
                let d_out = g.cols();
                // dZ on the active rows only: gather g and apply the ReLU
                // mask (skipped rows never flow through the conv branch).
                // With a fused post-activation residual the output rows
                // already include it, so the mask comes from the cached
                // pre-residual activation instead of the fused output.
                let mut gz = workspace::take_scratch(cache.active.len(), d_out);
                for (local, &r) in cache.active.iter().enumerate() {
                    let r = r as usize;
                    let mask_row = if residual.is_some() {
                        cache.relu_active.row(local)
                    } else {
                        out.row(r)
                    };
                    let dst = gz.row_mut(local);
                    for ((dv, &gv), &ov) in dst.iter_mut().zip(g.row(r)).zip(mask_row) {
                        *dv = if ov > 0.0 { gv } else { 0.0 };
                    }
                }
                if let Some(res) = residual {
                    if self.nodes[res.0].requires_grad {
                        // Added after the ReLU: its gradient is the unmasked
                        // upstream gradient on the active rows.
                        let mut dres = workspace::take(g.rows(), d_out);
                        for &r in &cache.active {
                            let r = r as usize;
                            dres.row_mut(r).copy_from_slice(g.row(r));
                        }
                        accum(grads, *res, dres);
                    }
                }
                if let Some(b) = b {
                    if self.nodes[b.0].requires_grad {
                        let mut db = workspace::take(1, d_out);
                        for local in 0..gz.rows() {
                            let dst = db.row_mut(0);
                            for (dv, &v) in dst.iter_mut().zip(gz.row(local)) {
                                *dv += v;
                            }
                        }
                        accum(grads, *b, db);
                    }
                }
                if self.nodes[w.0].requires_grad {
                    // dW = Sᵀ · dT over the active rows (cached compact
                    // support); with the identity map z = (1-β)s + β·s·W,
                    // so dT = β·dZ.
                    let mut dw = cache.p_active.t_matmul(&gz);
                    if let Some(beta) = identity_map {
                        dw.scale_in_place(*beta);
                    }
                    accum(grads, *w, dw);
                }
                let needs_ds = self.nodes[x.0].requires_grad
                    || init_residual.is_some_and(|(h0, _)| self.nodes[h0.0].requires_grad);
                if needs_ds {
                    // dS: gradient wrt the GEMM left operand.
                    let mut ds = gz.matmul_t(self.val(w.0));
                    if let Some(beta) = identity_map {
                        // z = (1-β)s + β·(s·W): both branches route to s.
                        ds.scale_in_place(*beta);
                        ds.add_scaled(&gz, 1.0 - *beta);
                    }
                    if let Some((h0, alpha)) = init_residual {
                        if self.nodes[h0.0].requires_grad {
                            // s = (1-α)p + α·h0 on the active rows.
                            let n0 = self.nodes[h0.0].value.shape().0;
                            let mut dh0 = workspace::take(n0, ds.cols());
                            for (local, &r) in cache.active.iter().enumerate() {
                                let dst = dh0.row_mut(r as usize);
                                for (dv, &v) in dst.iter_mut().zip(ds.row(local)) {
                                    *dv = *alpha * v;
                                }
                            }
                            accum(grads, *h0, dh0);
                        }
                    }
                    if self.nodes[x.0].requires_grad {
                        if let Some((_, alpha)) = init_residual {
                            ds.scale_in_place(1.0 - *alpha);
                        }
                        // dX = Ãᵀ · scatter(dS): the scatter never
                        // materializes — the masked column kernel skips
                        // columns mapped to COL_SKIP, whose contribution is
                        // exactly 0.
                        let back = self.adjs[*adj].backward_mat();
                        let mut dx = workspace::take_scratch(back.rows(), ds.cols());
                        back.spmm_cols_compact(&ds, &cache.col_map, &mut dx);
                        accum(grads, *x, dx);
                    }
                    workspace::give(ds);
                }
                if self.nodes[skip.0].requires_grad {
                    // Identity route: skipped rows pass the gradient straight
                    // through to the skip input.
                    let mut dsk = workspace::take(g.rows(), d_out);
                    for (r, &m) in cache.col_map.iter().enumerate() {
                        if m == skipnode_sparse::COL_SKIP {
                            dsk.row_mut(r).copy_from_slice(g.row(r));
                        }
                    }
                    accum(grads, *skip, dsk);
                }
                workspace::give(gz);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for p in parts {
                    let pc = self.nodes[p.0].value.shape().1;
                    if self.nodes[p.0].requires_grad {
                        let mut dp = workspace::take(g.rows(), pc);
                        for r in 0..g.rows() {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + pc]);
                        }
                        accum(grads, *p, dp);
                    }
                    off += pc;
                }
            }
            Op::MaxPool { xs, argmax } => {
                for (k, x) in xs.iter().enumerate() {
                    if !self.nodes[x.0].requires_grad {
                        continue;
                    }
                    let mut dx = workspace::take(g.rows(), g.cols());
                    for (i, (&a, &gv)) in argmax.iter().zip(g.as_slice()).enumerate() {
                        if a as usize == k {
                            dx.as_mut_slice()[i] = gv;
                        }
                    }
                    accum(grads, *x, dx);
                }
            }
            Op::Readout {
                x,
                kind,
                seg,
                argmax,
            } => {
                if self.nodes[x.0].requires_grad {
                    let (n, d) = self.nodes[x.0].value.shape();
                    let mut dx = workspace::take(n, d);
                    segment_reduce_backward_into(g, seg, *kind, argmax, &mut dx);
                    accum(grads, *x, dx);
                }
            }
            Op::PairNorm { x, s } => {
                if self.nodes[x.0].requires_grad {
                    let dx = pairnorm_backward(self.val(x.0), g, *s);
                    accum(grads, *x, dx);
                }
            }
            Op::Hadamard(a, b) => {
                if self.nodes[a.0].requires_grad {
                    let da = g.zip(self.val(b.0), |gv, bv| gv * bv);
                    accum(grads, *a, da);
                }
                if self.nodes[b.0].requires_grad {
                    let db = g.zip(self.val(a.0), |gv, av| gv * av);
                    accum(grads, *b, db);
                }
            }
            Op::LinComb(parts) => {
                for (p, c) in parts {
                    if self.nodes[p.0].requires_grad {
                        let dp = g * *c;
                        accum(grads, *p, dp);
                    }
                }
            }
            Op::WeightedSum { xs, w } => {
                let wv = self.val(w.0);
                for (k, x) in xs.iter().enumerate() {
                    if self.nodes[x.0].requires_grad {
                        let dx = g * wv.get(0, k);
                        accum(grads, *x, dx);
                    }
                }
                if self.nodes[w.0].requires_grad {
                    let mut dw = workspace::take(1, xs.len());
                    for (k, x) in xs.iter().enumerate() {
                        let xv = self.val(x.0);
                        let dot: f64 = g
                            .as_slice()
                            .iter()
                            .zip(xv.as_slice())
                            .map(|(&gv, &xvv)| gv as f64 * xvv as f64)
                            .sum();
                        dw.set(0, k, dot as f32);
                    }
                    accum(grads, *w, dw);
                }
            }
            Op::GatAggregate {
                h,
                s_src,
                s_dst,
                cache,
            } => {
                let (dh, dsrc, ddst) = crate::attention::gat_backward(self.val(h.0), cache, g);
                for (target, delta) in [(*h, dh), (*s_src, dsrc), (*s_dst, ddst)] {
                    if self.nodes[target.0].requires_grad {
                        accum(grads, target, delta);
                    } else {
                        workspace::give(delta);
                    }
                }
            }
            Op::EdgeScore { h, edges } => {
                if self.nodes[h.0].requires_grad {
                    let hv = self.val(h.0);
                    let mut dh = workspace::take(hv.rows(), hv.cols());
                    for (e, &(u, v)) in edges.iter().enumerate() {
                        let ge = g.get(e, 0);
                        // dh_u += ge * h_v ; dh_v += ge * h_u — split the
                        // borrows via raw indexing.
                        for c in 0..hv.cols() {
                            let hu = hv.get(u, c);
                            let hvv = hv.get(v, c);
                            dh.set(u, c, dh.get(u, c) + ge * hvv);
                            dh.set(v, c, dh.get(v, c) + ge * hu);
                        }
                    }
                    accum(grads, *h, dh);
                }
            }
        }
    }
}

/// PairNorm forward used by the ops module; exposed here so forward and
/// backward stay in one place.
pub(crate) fn pairnorm_forward(x: &Matrix, s: f32) -> Matrix {
    let mean = x.col_mean();
    let mut xc = workspace::take_copy(x);
    for r in 0..xc.rows() {
        let row = xc.row_mut(r);
        for (v, &m) in row.iter_mut().zip(mean.row(0)) {
            *v -= m;
        }
    }
    let fro = skipnode_tensor::frobenius_norm(&xc).max(1e-12);
    let alpha = (s as f64) * (x.rows() as f64).sqrt() / fro;
    xc.scale_in_place(alpha as f32);
    xc
}

pub(crate) fn pairnorm_backward(x: &Matrix, g: &Matrix, s: f32) -> Matrix {
    // y = α Xc / r with α = s·sqrt(n), Xc = X − 1·mean, r = ||Xc||_F.
    // dXc = α/r · G − α ⟨G, Xc⟩ / r³ · Xc ; dX = dXc − colmean(dXc).
    let mean = x.col_mean();
    let mut xc = workspace::take_copy(x);
    for r in 0..xc.rows() {
        let row = xc.row_mut(r);
        for (v, &m) in row.iter_mut().zip(mean.row(0)) {
            *v -= m;
        }
    }
    let r = skipnode_tensor::frobenius_norm(&xc).max(1e-12);
    let alpha = (s as f64) * (x.rows() as f64).sqrt();
    let dot: f64 = g
        .as_slice()
        .iter()
        .zip(xc.as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    let c1 = (alpha / r) as f32;
    let c2 = (alpha * dot / (r * r * r)) as f32;
    let mut dxc = g.zip(&xc, |gv, xcv| c1 * gv - c2 * xcv);
    workspace::give(xc);
    let dmean = dxc.col_mean();
    for rr in 0..dxc.rows() {
        let row = dxc.row_mut(rr);
        for (v, &m) in row.iter_mut().zip(dmean.row(0)) {
            *v -= m;
        }
    }
    dxc
}

/// Accumulate an owned delta. On first touch the buffer is stored as the
/// gradient (no copy); otherwise it is added and recycled to the workspace.
pub(crate) fn accum(grads: &mut [Option<Matrix>], id: NodeId, delta: Matrix) {
    match &mut grads[id.0] {
        Some(g) => {
            g.add_scaled(&delta, 1.0);
            workspace::give(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Accumulate a borrowed delta; first touch copies it into a recycled
/// workspace buffer.
pub(crate) fn accum_ref(grads: &mut [Option<Matrix>], id: NodeId, delta: &Matrix) {
    match &mut grads[id.0] {
        Some(g) => g.add_scaled(delta, 1.0),
        slot @ None => *slot = Some(workspace::take_copy(delta)),
    }
}
