//! Engine-level behavioural tests: multi-root backward, gradient routing,
//! dropout semantics, and the exact SkipNode gradient-bypass property the
//! paper's Section 5.2.2 claims.

use skipnode_autograd::Tape;
use skipnode_sparse::gcn_adjacency;
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::Arc;

#[test]
fn backward_multi_accumulates_across_roots() {
    // y1 = 2x, y2 = 3x; seeding both with ones gives dx = 2 + 3.
    let mut tape = Tape::new();
    let x = tape.param(Matrix::from_rows(&[&[1.0]]));
    let y1 = tape.scale(x, 2.0);
    let y2 = tape.scale(x, 3.0);
    let ones = Matrix::from_rows(&[&[1.0]]);
    let grads = tape.backward_multi(vec![(y1, ones.clone()), (y2, ones)]);
    assert_eq!(grads[x].get(0, 0), 5.0);
}

#[test]
fn unused_parameters_get_no_gradient() {
    let mut tape = Tape::new();
    let used = tape.param(Matrix::from_rows(&[&[1.0]]));
    let unused = tape.param(Matrix::from_rows(&[&[1.0]]));
    let y = tape.scale(used, 2.0);
    let grads = tape.backward(y, Matrix::from_rows(&[&[1.0]]));
    assert!(grads.get(used).is_some());
    assert!(grads.get(unused).is_none());
}

#[test]
fn constants_block_gradient_flow() {
    let mut tape = Tape::new();
    let c = tape.constant(Matrix::from_rows(&[&[4.0]]));
    let w = tape.param(Matrix::from_rows(&[&[2.0]]));
    let y = tape.matmul(c, w);
    let grads = tape.backward(y, Matrix::from_rows(&[&[1.0]]));
    assert!(
        grads.get(c).is_none(),
        "constant must not receive gradients"
    );
    assert_eq!(grads[w].get(0, 0), 4.0);
}

#[test]
fn diamond_graph_accumulates_through_both_paths() {
    // y = (x * 2) + (x * 3): dx = 5.
    let mut tape = Tape::new();
    let x = tape.param(Matrix::from_rows(&[&[1.0]]));
    let a = tape.scale(x, 2.0);
    let b = tape.scale(x, 3.0);
    let y = tape.add(a, b);
    let grads = tape.backward(y, Matrix::from_rows(&[&[1.0]]));
    assert_eq!(grads[x].get(0, 0), 5.0);
}

#[test]
fn dropout_zero_rate_is_identity_node() {
    let mut tape = Tape::new();
    let mut rng = SplitRng::new(1);
    let x = tape.param(Matrix::from_rows(&[&[1.0, 2.0]]));
    let y = tape.dropout(x, 0.0, &mut rng);
    assert_eq!(x, y, "p=0 must not add a node");
}

#[test]
fn dropout_preserves_expectation() {
    let mut rng = SplitRng::new(2);
    let n = 20_000;
    let mut tape = Tape::new();
    let x = tape.constant(Matrix::full(1, n, 1.0));
    let y = tape.dropout(x, 0.3, &mut rng);
    let mean = tape.value(y).mean();
    assert!((mean - 1.0).abs() < 0.03, "inverted dropout mean {mean}");
}

/// The paper's §5.2.2 gradient-bypass claim, verified mechanically: for a
/// node that skips a layer, the gradient reaching the layer input equals
/// the output gradient exactly (no weight multiplication in between),
/// while non-skipped rows see the usual `W`-transformed gradient.
#[test]
fn skipnode_rows_bypass_weight_multiplication_in_backward() {
    let n = 4;
    let d = 3;
    let mut rng = SplitRng::new(3);
    let adj = Arc::new(gcn_adjacency(n, &[(0, 1), (1, 2), (2, 3)]));
    let x_val = rng.uniform_matrix(n, d, 0.1, 1.0);
    let w_val = rng.uniform_matrix(d, d, -0.5, 0.5);

    let run = |mask: &[bool]| -> Matrix {
        let mut tape = Tape::new();
        let x = tape.param(x_val.clone());
        let w = tape.constant(w_val.clone());
        let a = tape.register_adj(adj.clone());
        let conv = tape.spmm(a, x);
        let conv = tape.matmul(conv, w);
        let out = tape.row_combine(conv, x, mask);
        // Seed only row 0 of the output.
        let mut seed = Matrix::zeros(n, d);
        for c in 0..d {
            seed.set(0, c, 1.0);
        }
        let grads = tape.backward(out, seed);
        grads[x].clone()
    };

    // Row 0 skipped: its input gradient must be exactly the seed (identity
    // path), untouched by Ã or W.
    let g_skip = run(&[true, false, false, false]);
    for c in 0..d {
        assert!((g_skip.get(0, c) - 1.0).abs() < 1e-6);
    }
    // Rows 1..: zero, since only row 0 was seeded and it bypassed the conv.
    for r in 1..n {
        for c in 0..d {
            assert_eq!(g_skip.get(r, c), 0.0);
        }
    }

    // Row 0 not skipped: gradient spreads through Ã and Wᵀ — different
    // from the identity and reaching neighbors.
    let g_conv = run(&[false, false, false, false]);
    let mut differs = false;
    for c in 0..d {
        if (g_conv.get(0, c) - 1.0).abs() > 1e-4 {
            differs = true;
        }
    }
    assert!(differs, "conv path should transform the gradient");
    let neighbor_mass: f32 = (0..d).map(|c| g_conv.get(1, c).abs()).sum();
    assert!(neighbor_mass > 0.0, "conv path should reach neighbors");
}

#[test]
fn relu_kills_gradient_on_negative_preactivations() {
    let mut tape = Tape::new();
    let x = tape.param(Matrix::from_rows(&[&[-1.0, 2.0]]));
    let y = tape.relu(x);
    let grads = tape.backward(y, Matrix::from_rows(&[&[1.0, 1.0]]));
    assert_eq!(grads[x].row(0), &[0.0, 1.0]);
}

#[test]
fn interior_gradients_are_observable() {
    // The Figure 2(b) diagnostic relies on reading gradients at interior
    // nodes (the classification layer), not just parameters.
    let mut tape = Tape::new();
    let x = tape.param(Matrix::from_rows(&[&[1.0]]));
    let h = tape.scale(x, 2.0);
    let y = tape.scale(h, 3.0);
    let grads = tape.backward(y, Matrix::from_rows(&[&[1.0]]));
    assert_eq!(grads[h].get(0, 0), 3.0);
    assert_eq!(grads[y].get(0, 0), 1.0);
}

#[test]
fn seed_shape_mismatch_panics() {
    let mut tape = Tape::new();
    let x = tape.param(Matrix::zeros(2, 2));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = tape.backward(x, Matrix::zeros(1, 1));
    }));
    assert!(result.is_err());
}
