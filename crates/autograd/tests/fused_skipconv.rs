//! Fused `Op::SkipConv` equivalence: forward and backward must match the
//! unfused `spmm → matmul → add_bias → relu → row_combine` chain within
//! 1e-5 across skip ratios and odd (non-round, d_in ≠ d_out) shapes.

use skipnode_autograd::{NodeId, Tape};
use skipnode_sparse::CooBuilder;
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::Arc;

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal();
    }
    m
}

fn random_adjacency(n: usize, rng: &mut SplitRng) -> Arc<skipnode_sparse::CsrMatrix> {
    let mut b = CooBuilder::new(n, n);
    for u in 0..n {
        b.push(u, u, 0.5);
        for _ in 0..3 {
            let v = rng.below(n);
            if v != u {
                // Asymmetric weights so backward exercises the cached
                // transpose route, not the symmetric shortcut.
                b.push(u, v, 0.1 + rng.unit() as f32 * 0.3);
            }
        }
    }
    Arc::new(b.build())
}

struct Run {
    out: Matrix,
    dx: Option<Matrix>,
    dskip: Option<Matrix>,
    dw: Matrix,
    db: Matrix,
}

fn run(fused: bool, mask: &[bool], n: usize, d_in: usize, d_out: usize) -> Run {
    let mut rng = SplitRng::new(99);
    let adj_mat = random_adjacency(n, &mut rng);
    let xv = random_matrix(n, d_in, &mut rng);
    let sv = random_matrix(n, d_out, &mut rng);
    let wv = random_matrix(d_in, d_out, &mut rng);
    let bv = random_matrix(1, d_out, &mut rng);
    let seed = random_matrix(n, d_out, &mut rng);

    let mut tape = Tape::new();
    let adj = tape.register_adj(adj_mat);
    let x = tape.param(xv);
    let skip = tape.param(sv);
    let w = tape.param(wv);
    let b = tape.param(bv);
    let out: NodeId = if fused {
        tape.skip_conv(adj, x, skip, w, b, mask)
    } else {
        let p = tape.spmm(adj, x);
        let z = tape.matmul(p, w);
        let zb = tape.add_bias(z, b);
        let a = tape.relu(zb);
        tape.row_combine(a, skip, mask)
    };
    let value = tape.value(out).clone();
    let mut grads = tape.backward(out, seed);
    Run {
        out: value,
        dx: grads.take(x),
        dskip: grads.take(skip),
        dw: grads.take(w).expect("dW"),
        db: grads.take(b).expect("db"),
    }
}

fn assert_close(got: &Matrix, want: &Matrix, label: &str) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-5,
            "{label}: element {i} differs: {a} vs {b}"
        );
    }
}

fn mask_with_ratio(n: usize, ratio: f64) -> Vec<bool> {
    // Deterministic interleaving at the requested skip ratio.
    (0..n)
        .map(|i| ((i as f64 * ratio) as usize) != (((i + 1) as f64 * ratio) as usize))
        .collect()
}

fn check_equivalence(n: usize, d_in: usize, d_out: usize, ratio: f64) {
    let mask = mask_with_ratio(n, ratio);
    let fused = run(true, &mask, n, d_in, d_out);
    let unfused = run(false, &mask, n, d_in, d_out);
    let label = format!("n={n} d_in={d_in} d_out={d_out} ratio={ratio}");
    assert_close(&fused.out, &unfused.out, &format!("{label} forward"));
    assert_close(
        fused.dx.as_ref().expect("fused dx"),
        unfused.dx.as_ref().expect("unfused dx"),
        &format!("{label} dx"),
    );
    assert_close(
        fused.dskip.as_ref().expect("fused dskip"),
        unfused.dskip.as_ref().expect("unfused dskip"),
        &format!("{label} dskip"),
    );
    assert_close(&fused.dw, &unfused.dw, &format!("{label} dW"));
    assert_close(&fused.db, &unfused.db, &format!("{label} db"));
}

#[test]
fn fused_matches_unfused_at_skip_ratio_zero() {
    check_equivalence(64, 16, 16, 0.0);
}

#[test]
fn fused_matches_unfused_at_skip_ratio_half() {
    check_equivalence(64, 16, 16, 0.5);
}

#[test]
fn fused_matches_unfused_at_skip_ratio_one() {
    check_equivalence(64, 16, 16, 1.0);
}

#[test]
fn fused_matches_unfused_on_odd_shapes() {
    // Non-round node count, d_in ≠ d_out, and a lopsided ratio.
    check_equivalence(37, 13, 11, 0.5);
    check_equivalence(101, 7, 19, 0.25);
}

#[test]
fn skipped_rows_copy_skip_branch_exactly() {
    let n = 40;
    let mask = mask_with_ratio(n, 0.5);
    let mut rng = SplitRng::new(3);
    let adj_mat = random_adjacency(n, &mut rng);
    let xv = random_matrix(n, 8, &mut rng);
    let sv = random_matrix(n, 8, &mut rng);
    let wv = random_matrix(8, 8, &mut rng);
    let bv = random_matrix(1, 8, &mut rng);
    let mut tape = Tape::new();
    let adj = tape.register_adj(adj_mat);
    let x = tape.param(xv);
    let skip_node = tape.param(sv.clone());
    let w = tape.param(wv);
    let b = tape.param(bv);
    let out = tape.skip_conv(adj, x, skip_node, w, b, &mask);
    for (r, &take) in mask.iter().enumerate() {
        if take {
            assert_eq!(tape.value(out).row(r), sv.row(r), "row {r}");
        }
    }
}
