//! Fused `Op::SkipConv` equivalence: forward and backward must match the
//! unfused `spmm → matmul → add_bias → relu → row_combine` chain within
//! 1e-5 across skip ratios and odd (non-round, d_in ≠ d_out) shapes.

use skipnode_autograd::{NodeId, Tape};
use skipnode_sparse::CooBuilder;
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::Arc;

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal();
    }
    m
}

fn random_adjacency(n: usize, rng: &mut SplitRng) -> Arc<skipnode_sparse::CsrMatrix> {
    let mut b = CooBuilder::new(n, n);
    for u in 0..n {
        b.push(u, u, 0.5);
        for _ in 0..3 {
            let v = rng.below(n);
            if v != u {
                // Asymmetric weights so backward exercises the cached
                // transpose route, not the symmetric shortcut.
                b.push(u, v, 0.1 + rng.unit() as f32 * 0.3);
            }
        }
    }
    Arc::new(b.build())
}

struct Run {
    out: Matrix,
    dx: Option<Matrix>,
    dskip: Option<Matrix>,
    dw: Matrix,
    db: Matrix,
}

fn run(fused: bool, mask: &[bool], n: usize, d_in: usize, d_out: usize) -> Run {
    let mut rng = SplitRng::new(99);
    let adj_mat = random_adjacency(n, &mut rng);
    let xv = random_matrix(n, d_in, &mut rng);
    let sv = random_matrix(n, d_out, &mut rng);
    let wv = random_matrix(d_in, d_out, &mut rng);
    let bv = random_matrix(1, d_out, &mut rng);
    let seed = random_matrix(n, d_out, &mut rng);

    let mut tape = Tape::new();
    let adj = tape.register_adj(adj_mat);
    let x = tape.param(xv);
    let skip = tape.param(sv);
    let w = tape.param(wv);
    let b = tape.param(bv);
    let out: NodeId = if fused {
        tape.skip_conv(adj, x, skip, w, b, mask)
    } else {
        let p = tape.spmm(adj, x);
        let z = tape.matmul(p, w);
        let zb = tape.add_bias(z, b);
        let a = tape.relu(zb);
        tape.row_combine(a, skip, mask)
    };
    let value = tape.value(out).clone();
    let mut grads = tape.backward(out, seed);
    Run {
        out: value,
        dx: grads.take(x),
        dskip: grads.take(skip),
        dw: grads.take(w).expect("dW"),
        db: grads.take(b).expect("db"),
    }
}

fn assert_close(got: &Matrix, want: &Matrix, label: &str) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape");
    for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-5,
            "{label}: element {i} differs: {a} vs {b}"
        );
    }
}

fn mask_with_ratio(n: usize, ratio: f64) -> Vec<bool> {
    // Deterministic interleaving at the requested skip ratio.
    (0..n)
        .map(|i| ((i as f64 * ratio) as usize) != (((i + 1) as f64 * ratio) as usize))
        .collect()
}

fn check_equivalence(n: usize, d_in: usize, d_out: usize, ratio: f64) {
    let mask = mask_with_ratio(n, ratio);
    let fused = run(true, &mask, n, d_in, d_out);
    let unfused = run(false, &mask, n, d_in, d_out);
    let label = format!("n={n} d_in={d_in} d_out={d_out} ratio={ratio}");
    assert_close(&fused.out, &unfused.out, &format!("{label} forward"));
    assert_close(
        fused.dx.as_ref().expect("fused dx"),
        unfused.dx.as_ref().expect("unfused dx"),
        &format!("{label} dx"),
    );
    assert_close(
        fused.dskip.as_ref().expect("fused dskip"),
        unfused.dskip.as_ref().expect("unfused dskip"),
        &format!("{label} dskip"),
    );
    assert_close(&fused.dw, &unfused.dw, &format!("{label} dW"));
    assert_close(&fused.db, &unfused.db, &format!("{label} db"));
}

#[test]
fn fused_matches_unfused_at_skip_ratio_zero() {
    check_equivalence(64, 16, 16, 0.0);
}

#[test]
fn fused_matches_unfused_at_skip_ratio_half() {
    check_equivalence(64, 16, 16, 0.5);
}

#[test]
fn fused_matches_unfused_at_skip_ratio_one() {
    check_equivalence(64, 16, 16, 1.0);
}

#[test]
fn fused_matches_unfused_on_odd_shapes() {
    // Non-round node count, d_in ≠ d_out, and a lopsided ratio.
    check_equivalence(37, 13, 11, 0.5);
    check_equivalence(101, 7, 19, 0.25);
}

/// Outputs and gradients of one generalized fused-step run
/// ([`Tape::skip_conv_step`]) or its unfused reference chain.
struct VariantRun {
    out: Matrix,
    dx: Matrix,
    dskip: Matrix,
    dw: Matrix,
    db: Option<Matrix>,
    dh0: Option<Matrix>,
    dres: Option<Matrix>,
}

/// Run the generalized step `post_conv(relu(support · W̃ [+ b]) [+ res])`
/// where `support = (1-α)·Ã·x + α·h0` (when `init_alpha`) and
/// `W̃ = (1-β)·I + β·W` (when `beta`), fused or as the canonical unfused
/// op chain.
#[allow(clippy::too_many_arguments)]
fn run_variant(
    fused: bool,
    mask: &[bool],
    n: usize,
    d_in: usize,
    d_out: usize,
    with_bias: bool,
    init_alpha: Option<f32>,
    beta: Option<f32>,
    with_residual: bool,
) -> VariantRun {
    assert!(
        beta.is_none() || d_in == d_out,
        "identity map needs square W"
    );
    let mut rng = SplitRng::new(99);
    let adj_mat = random_adjacency(n, &mut rng);
    let xv = random_matrix(n, d_in, &mut rng);
    let sv = random_matrix(n, d_out, &mut rng);
    let wv = random_matrix(d_in, d_out, &mut rng);
    let bv = random_matrix(1, d_out, &mut rng);
    let h0v = random_matrix(n, d_in, &mut rng);
    let resv = random_matrix(n, d_out, &mut rng);
    let seed = random_matrix(n, d_out, &mut rng);

    let mut tape = Tape::new();
    let adj = tape.register_adj(adj_mat);
    let x = tape.param(xv);
    let skip = tape.param(sv);
    let w = tape.param(wv);
    let b = with_bias.then(|| tape.param(bv));
    let h0 = init_alpha.is_some().then(|| tape.param(h0v));
    let res = with_residual.then(|| tape.param(resv));
    let out: NodeId = if fused {
        tape.skip_conv_step(
            adj,
            skipnode_autograd::FusedStep {
                x,
                skip,
                w,
                b,
                init_residual: h0.map(|h0| (h0, init_alpha.unwrap())),
                identity_map: beta,
                residual: res,
            },
            mask,
        )
    } else {
        let p = tape.spmm(adj, x);
        let support = match (h0, init_alpha) {
            (Some(h0), Some(alpha)) => tape.lin_comb(&[(p, 1.0 - alpha), (h0, alpha)]),
            _ => p,
        };
        let t = tape.matmul(support, w);
        let z = match beta {
            Some(beta) => tape.lin_comb(&[(support, 1.0 - beta), (t, beta)]),
            None => t,
        };
        let z = match b {
            Some(b) => tape.add_bias(z, b),
            None => z,
        };
        let a = tape.relu(z);
        let a = match res {
            Some(res) => tape.add(a, res),
            None => a,
        };
        tape.row_combine(a, skip, mask)
    };
    let value = tape.value(out).clone();
    let mut grads = tape.backward(out, seed);
    VariantRun {
        out: value,
        dx: grads.take(x).expect("dx"),
        dskip: grads.take(skip).expect("dskip"),
        dw: grads.take(w).expect("dW"),
        db: b.map(|b| grads.take(b).expect("db")),
        dh0: h0.map(|h0| grads.take(h0).expect("dh0")),
        dres: res.map(|res| grads.take(res).expect("dres")),
    }
}

/// Fused-vs-unfused forward + full-gradient equivalence for one variant.
#[allow(clippy::too_many_arguments)]
fn check_variant(
    n: usize,
    d_in: usize,
    d_out: usize,
    ratio: f64,
    with_bias: bool,
    init_alpha: Option<f32>,
    beta: Option<f32>,
    with_residual: bool,
) {
    let mask = mask_with_ratio(n, ratio);
    let args = (n, d_in, d_out, with_bias, init_alpha, beta, with_residual);
    let fused = run_variant(
        true,
        &mask,
        n,
        d_in,
        d_out,
        with_bias,
        init_alpha,
        beta,
        with_residual,
    );
    let unfused = run_variant(
        false,
        &mask,
        n,
        d_in,
        d_out,
        with_bias,
        init_alpha,
        beta,
        with_residual,
    );
    let label = format!("variant {args:?} ratio={ratio}");
    assert_close(&fused.out, &unfused.out, &format!("{label} forward"));
    assert_close(&fused.dx, &unfused.dx, &format!("{label} dx"));
    assert_close(&fused.dskip, &unfused.dskip, &format!("{label} dskip"));
    assert_close(&fused.dw, &unfused.dw, &format!("{label} dW"));
    for (got, want, grad) in [
        (&fused.db, &unfused.db, "db"),
        (&fused.dh0, &unfused.dh0, "dh0"),
        (&fused.dres, &unfused.dres, "dres"),
    ] {
        match (got, want) {
            (Some(got), Some(want)) => assert_close(got, want, &format!("{label} {grad}")),
            (None, None) => {}
            _ => panic!("{label}: {grad} present on one path only"),
        }
    }
}

#[test]
fn fused_step_without_bias_matches_unfused() {
    for ratio in [0.0, 0.5] {
        check_variant(64, 16, 16, ratio, false, None, None, false);
        check_variant(37, 13, 11, ratio, false, None, None, false);
    }
}

#[test]
fn fused_step_with_initial_residual_matches_unfused() {
    // GCNII's `support = (1-α)·Ã·x + α·h0` — h0 gets its own gradient.
    for ratio in [0.0, 0.5] {
        check_variant(64, 16, 16, ratio, true, Some(0.1), None, false);
        check_variant(37, 13, 11, ratio, false, Some(0.25), None, false);
    }
}

#[test]
fn fused_step_with_identity_map_matches_unfused() {
    // GCNII's `W̃ = (1-β)·I + β·W` — requires a square weight.
    for ratio in [0.0, 0.5] {
        check_variant(64, 16, 16, ratio, false, None, Some(0.3), false);
        check_variant(41, 12, 12, ratio, true, None, Some(0.7), false);
    }
}

#[test]
fn fused_step_with_post_relu_residual_matches_unfused() {
    // ResGCN's skip connection added after the ReLU — the backward must
    // route the residual's gradient around the ReLU mask.
    for ratio in [0.0, 0.5] {
        check_variant(64, 16, 16, ratio, true, None, None, true);
        check_variant(37, 13, 11, ratio, true, None, None, true);
    }
}

#[test]
fn fused_step_with_all_options_matches_unfused() {
    // The full GCNII-shaped step plus a residual, at several ratios.
    for ratio in [0.0, 0.25, 0.5, 1.0] {
        check_variant(53, 14, 14, ratio, false, Some(0.1), Some(0.4), true);
    }
}

#[test]
fn skipped_rows_copy_skip_branch_exactly() {
    let n = 40;
    let mask = mask_with_ratio(n, 0.5);
    let mut rng = SplitRng::new(3);
    let adj_mat = random_adjacency(n, &mut rng);
    let xv = random_matrix(n, 8, &mut rng);
    let sv = random_matrix(n, 8, &mut rng);
    let wv = random_matrix(8, 8, &mut rng);
    let bv = random_matrix(1, 8, &mut rng);
    let mut tape = Tape::new();
    let adj = tape.register_adj(adj_mat);
    let x = tape.param(xv);
    let skip_node = tape.param(sv.clone());
    let w = tape.param(wv);
    let b = tape.param(bv);
    let out = tape.skip_conv(adj, x, skip_node, w, b, &mask);
    for (r, &take) in mask.iter().enumerate() {
        if take {
            assert_eq!(tape.value(out).row(r), sv.row(r), "row {r}");
        }
    }
}
