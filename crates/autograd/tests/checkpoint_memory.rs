//! Peak-residency check for checkpointed replay.
//!
//! The workspace counters are process-global, so this file holds exactly
//! one test: a deep matmul+relu chain trained with and without tape-level
//! gradient checkpointing, asserting both bitwise parity and a real peak
//! reduction.

use skipnode_autograd::{EpochSampler, NodeId, Tape, TrainProgram};
use skipnode_tensor::{workspace, Matrix, SplitRng};

struct NoSkips;

impl EpochSampler for NoSkips {
    fn skip_mask(&mut self, _rng: &mut SplitRng, out: &mut [bool]) {
        out.iter_mut().for_each(|o| *o = false);
    }
}

const DEPTH: usize = 64;

fn record_chain(tape: &mut Tape, x: &Matrix, w: &Matrix) -> NodeId {
    let xn = tape.constant(x.clone());
    let wn = tape.param(w.clone());
    let mut h = xn;
    for _ in 0..DEPTH {
        let z = tape.matmul(h, wn);
        h = tape.relu(z);
    }
    h
}

/// One warm-up epoch, then a measured epoch: returns
/// (peak_live_bytes, head value, dW).
fn measured_epoch(prog: &mut TrainProgram, w: &Matrix, rows: usize) -> (i64, Matrix, Matrix) {
    let mut result = (0i64, Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    for pass in 0..2 {
        let mut rng = SplitRng::new(7);
        prog.load_params([w]);
        prog.begin_epoch(&mut NoSkips, &mut rng);
        if pass == 1 {
            workspace::reset_peak();
        }
        prog.replay_forward();
        let out = *prog.heads().last().expect("one head");
        let value = prog.value(out).clone();
        let mut grads = prog.backward(vec![(out, Matrix::full(rows, w.cols(), 1.0))]);
        let gw = grads[0].take().expect("dW");
        if pass == 1 {
            result = (workspace::stats().peak_live_bytes, value, gw);
        } else {
            workspace::give(gw);
        }
    }
    result
}

#[test]
fn checkpointing_cuts_peak_residency_without_changing_results() {
    let mut init = SplitRng::new(42);
    let rows = 64;
    let x = init.uniform_matrix(rows, 32, -1.0, 1.0);
    let w = init.uniform_matrix(32, 32, -0.2, 0.2);

    let build = |segments: usize| {
        let mut tape = Tape::new();
        let out = record_chain(&mut tape, &x, &w);
        let mut prog = TrainProgram::compile(tape, vec![out]).expect("compile");
        prog.enable_checkpointing(segments);
        prog
    };

    let mut plain = build(0);
    let mut ck = build(8);
    let (plain_peak, plain_val, plain_gw) = measured_epoch(&mut plain, &w, rows);
    let (ck_peak, ck_val, ck_gw) = measured_epoch(&mut ck, &w, rows);

    assert_eq!(plain_val.as_slice(), ck_val.as_slice(), "values diverge");
    assert_eq!(plain_gw.as_slice(), ck_gw.as_slice(), "dW diverges");
    workspace::give(plain_gw);
    workspace::give(ck_gw);

    // Depth-64 retains ~one activation per layer without checkpointing;
    // 8 segments should keep roughly boundaries + one segment live. A 2x
    // margin leaves plenty of slack for gradient traffic.
    assert!(
        ck_peak * 2 < plain_peak,
        "checkpointed peak {ck_peak} not well below plain peak {plain_peak}"
    );
}
