//! The fused SkipNode layer must demonstrably *skip* work: SpMM row work
//! (as recorded by `skipnode_sparse::stats`) has to scale with the
//! non-skipped fraction. Kept alone in this file — the counter is
//! process-global, and a dedicated test binary keeps concurrent tests from
//! polluting the deltas.

use skipnode_autograd::Tape;
use skipnode_sparse::{stats, CooBuilder};
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::Arc;

#[test]
fn fused_forward_row_work_scales_with_active_fraction() {
    let n = 600;
    let d = 12;
    let mut rng = SplitRng::new(5);
    let mut b = CooBuilder::new(n, n);
    for u in 0..n {
        b.push_symmetric(u, (u + 1) % n, 1.0);
        b.push_symmetric(u, (u + 7) % n, 0.5);
    }
    let adj_mat = Arc::new(b.build());
    let mut xv = Matrix::zeros(n, d);
    for v in xv.as_mut_slice() {
        *v = rng.normal();
    }

    let forward_rows = |skip_every: Option<usize>| -> u64 {
        let mask: Vec<bool> = (0..n)
            .map(|i| skip_every.is_some_and(|k| i % k != 0))
            .collect();
        let mut tape = Tape::new();
        let adj = tape.register_adj(Arc::clone(&adj_mat));
        let x = tape.param(xv.clone());
        let skip = tape.param(xv.clone());
        let w = tape.param(Matrix::eye(d));
        let bias = tape.param(Matrix::zeros(1, d));
        let before = stats::spmm_rows_computed();
        let _ = tape.skip_conv(adj, x, skip, w, bias, &mask);
        stats::spmm_rows_computed() - before
    };

    let full = forward_rows(None); // nothing skipped
    let quarter = forward_rows(Some(4)); // 1 in 4 active
    assert_eq!(full, n as u64, "unmasked fused layer computes every row");
    assert_eq!(
        quarter,
        (n / 4) as u64,
        "row work must equal the active-row count"
    );
}
