//! Cross-model behavioural tests: evaluation determinism, parameter
//! accounting, strategy transparency, and depth scaling for every backbone.

use skipnode_autograd::Tape;
use skipnode_core::{Sampling, SkipNodeConfig};
use skipnode_graph::{load, DatasetName, Graph, Scale};
use skipnode_nn::models::{
    Appnp, Gcn, Gcnii, GprGnn, Grand, InceptGcn, JkAggregate, JkNet, Model, Sgc,
};
use skipnode_nn::{ForwardCtx, Strategy};
use skipnode_tensor::{Matrix, SplitRng};

fn graph() -> Graph {
    load(DatasetName::Cornell, Scale::Bench, 7)
}

fn all_models(g: &Graph, depth: usize, rng: &mut SplitRng) -> Vec<Box<dyn Model>> {
    let (fi, h, c) = (g.feature_dim(), 12, g.num_classes());
    vec![
        Box::new(Gcn::new(fi, h, c, depth.max(2), 0.0, rng)),
        Box::new(Gcn::residual(fi, h, c, depth.max(2), 0.0, rng)),
        Box::new(JkNet::new(fi, h, c, depth, 0.0, JkAggregate::Concat, rng)),
        Box::new(InceptGcn::new(fi, h, c, depth, 0.0, rng)),
        Box::new(Gcnii::new(fi, h, c, depth, 0.0, rng)),
        Box::new(Appnp::new(fi, h, c, depth, 0.1, 0.0, rng)),
        Box::new(GprGnn::new(fi, h, c, depth, 0.1, 0.0, rng)),
        Box::new(Grand::new(fi, h, c, depth, 2, 0.5, 0.0, rng)),
        Box::new(Sgc::new(fi, c, depth, 0.0, rng)),
    ]
}

fn eval_forward(model: &dyn Model, g: &Graph, strategy: &Strategy, seed: u64) -> Matrix {
    let mut tape = Tape::new();
    let binding = model.store().bind(&mut tape);
    let adj = tape.register_adj(g.gcn_adjacency());
    let x = tape.constant(g.features().clone());
    let degrees = g.degrees();
    let mut rng = SplitRng::new(seed);
    let mut ctx = ForwardCtx::new(adj, x, &degrees, strategy, false, &mut rng);
    let out = model.forward(&mut tape, &binding, &mut ctx);
    tape.value(out).clone()
}

#[test]
fn every_model_is_deterministic_at_eval() {
    let g = graph();
    let mut rng = SplitRng::new(1);
    for model in all_models(&g, 4, &mut rng) {
        let a = eval_forward(model.as_ref(), &g, &Strategy::None, 10);
        let b = eval_forward(model.as_ref(), &g, &Strategy::None, 99);
        assert_eq!(a, b, "{} eval must ignore the RNG", model.name());
    }
}

#[test]
fn skipnode_is_transparent_at_eval_for_every_model() {
    let g = graph();
    let mut rng = SplitRng::new(2);
    let skip = Strategy::SkipNode(SkipNodeConfig::new(0.7, Sampling::Biased));
    for model in all_models(&g, 4, &mut rng) {
        let plain = eval_forward(model.as_ref(), &g, &Strategy::None, 5);
        let with = eval_forward(model.as_ref(), &g, &skip, 5);
        assert_eq!(plain, with, "{}: SkipNode must be train-only", model.name());
    }
}

#[test]
fn every_model_emits_logits_and_penultimate() {
    let g = graph();
    let mut rng = SplitRng::new(3);
    for model in all_models(&g, 3, &mut rng) {
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(4);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        assert_eq!(
            tape.value(out).shape(),
            (g.num_nodes(), g.num_classes()),
            "{} logits shape",
            model.name()
        );
        assert!(
            ctx.penultimate.is_some(),
            "{} must expose a penultimate representation",
            model.name()
        );
        assert!(tape.value(out).all_finite(), "{}", model.name());
    }
}

#[test]
fn parameter_counts_scale_with_depth_where_expected() {
    let g = graph();
    let mut rng = SplitRng::new(5);
    // Stacked-conv models grow parameters with depth...
    let shallow = Gcn::new(g.feature_dim(), 12, g.num_classes(), 2, 0.0, &mut rng);
    let deep = Gcn::new(g.feature_dim(), 12, g.num_classes(), 8, 0.0, &mut rng);
    assert!(deep.store().scalar_count() > shallow.store().scalar_count());
    // ...while propagation models (APPNP/SGC) do not.
    let a_shallow = Appnp::new(g.feature_dim(), 12, g.num_classes(), 2, 0.1, 0.0, &mut rng);
    let a_deep = Appnp::new(g.feature_dim(), 12, g.num_classes(), 32, 0.1, 0.0, &mut rng);
    assert_eq!(
        a_shallow.store().scalar_count(),
        a_deep.store().scalar_count()
    );
    // GPRGNN adds exactly one scalar per extra hop.
    let g_shallow = GprGnn::new(g.feature_dim(), 12, g.num_classes(), 2, 0.1, 0.0, &mut rng);
    let g_deep = GprGnn::new(g.feature_dim(), 12, g.num_classes(), 5, 0.1, 0.0, &mut rng);
    assert_eq!(
        g_deep.store().scalar_count() - g_shallow.store().scalar_count(),
        3
    );
}

#[test]
fn pairnorm_changes_training_forward_for_every_conv_model() {
    let g = graph();
    let mut rng = SplitRng::new(6);
    let pn = Strategy::PairNorm { scale: 1.0 };
    for model in all_models(&g, 4, &mut rng) {
        // PairNorm is architectural: even the eval forward must change
        // (except models without middle conv hooks — none here).
        let plain = eval_forward(model.as_ref(), &g, &Strategy::None, 5);
        let with = eval_forward(model.as_ref(), &g, &pn, 5);
        assert_ne!(
            plain,
            with,
            "{}: PairNorm should alter the forward",
            model.name()
        );
    }
}

#[test]
fn grand_head_count_follows_train_flag() {
    let g = graph();
    let mut rng = SplitRng::new(7);
    let model = Grand::new(
        g.feature_dim(),
        12,
        g.num_classes(),
        3,
        3,
        0.5,
        0.0,
        &mut rng,
    );
    let mut tape = Tape::new();
    let binding = model.store().bind(&mut tape);
    let adj = tape.register_adj(g.gcn_adjacency());
    let x = tape.constant(g.features().clone());
    let degrees = g.degrees();
    let strategy = Strategy::None;
    let mut fwd_rng = SplitRng::new(8);
    let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, true, &mut fwd_rng);
    assert_eq!(model.forward_heads(&mut tape, &binding, &mut ctx).len(), 3);
}
