//! Reorder round-trip: training on a cache-locality-reordered graph must
//! reproduce the unreordered run.
//!
//! `reorder_graph` renumbers nodes; the permuted graph carries its
//! `Reordering` so skip masks are drawn in logical order (same RNG
//! stream, same per-node decisions). The only residual difference is
//! float reassociation — permuted CSR rows accumulate neighbors in a
//! different order — so loss curves and un-permuted outputs are compared
//! under a tolerance, not bitwise. Dropout is held at zero: elementwise
//! dropout masks are drawn in physical row-major order and are the one
//! stochastic piece that does *not* permute covariantly.

use skipnode_core::{Sampling, SkipNodeConfig};
use skipnode_graph::{
    full_supervised_split, partition_graph, reorder_graph, FeatureStyle, Graph, GraphReorder,
    PartitionConfig, Split,
};
use skipnode_nn::models::Gcn;
use skipnode_nn::{evaluate, train_node_classifier, Strategy, TrainConfig};
use skipnode_tensor::{Matrix, SplitRng};

fn test_graph() -> Graph {
    let mut rng = SplitRng::new(91);
    partition_graph(
        &PartitionConfig {
            n: 300,
            m: 1200,
            classes: 3,
            homophily: 0.75,
            power: 0.6,
        },
        32,
        FeatureStyle::TfidfGaussian { separation: 0.6 },
        &mut rng,
    )
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 15,
        patience: 0,
        eval_every: 5,
        diagnostics_every: 1,
        ..Default::default()
    }
}

/// Train a fresh depth-4 GCN (dropout 0) on `g`, returning the per-epoch
/// loss curve and the final evaluation logits.
fn train_once(g: &Graph, split: &Split, strategy: &Strategy) -> (Vec<f64>, Matrix) {
    let mut rng = SplitRng::new(7);
    let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 4, 0.0, &mut rng);
    let result = train_node_classifier(&mut model, g, split, strategy, &config(), &mut rng);
    let losses: Vec<f64> = result.diagnostics.iter().map(|d| d.train_loss).collect();
    assert_eq!(losses.len(), config().epochs);
    let (logits, _) = evaluate(&model, g, &g.gcn_adjacency(), strategy, &mut rng);
    (losses, logits)
}

fn assert_close_curves(base: &[f64], got: &[f64], label: &str) {
    assert_eq!(base.len(), got.len(), "{label}: curve length");
    for (epoch, (a, b)) in base.iter().zip(got).enumerate() {
        let tol = 1e-3 * a.abs().max(1.0);
        assert!(
            (a - b).abs() <= tol,
            "{label}: epoch {epoch} loss {a} vs {b}"
        );
    }
}

fn assert_close_rows(base: &Matrix, got: &Matrix, label: &str) {
    assert_eq!(base.shape(), got.shape(), "{label}: shape");
    for (i, (a, b)) in base.as_slice().iter().zip(got.as_slice()).enumerate() {
        let tol = 1e-2 * a.abs().max(1.0);
        assert!((a - b).abs() <= tol, "{label}: elem {i}: {a} vs {b}");
    }
}

fn round_trip(strategy: Strategy) {
    let g = test_graph();
    let mut split_rng = SplitRng::new(5);
    let split = full_supervised_split(&g, &mut split_rng);
    let (base_losses, base_logits) = train_once(&g, &split, &strategy);
    for mode in [GraphReorder::DegreeSort, GraphReorder::Rcm] {
        let (rg, ord) = reorder_graph(&g, mode);
        let mapped = ord.map_split(&split);
        let (losses, logits) = train_once(&rg, &mapped, &strategy);
        let label = format!("{} under {}", strategy.label(), mode.name());
        assert_close_curves(&base_losses, &losses, &label);
        let restored = ord.restore_rows(&logits);
        assert_close_rows(&base_logits, &restored, &label);
    }
}

/// Plain GCN: the pure-kernel case — no strategy randomness at all.
#[test]
fn gcn_round_trips_through_reordering() {
    round_trip(Strategy::None);
}

/// Fused SkipNode with degree-biased sampling: exercises both the fused
/// masked kernel and the logical-order (degree-covariant) mask draws.
#[test]
fn fused_skipnode_round_trips_through_reordering() {
    round_trip(Strategy::SkipNode(SkipNodeConfig::new(
        0.5,
        Sampling::Biased,
    )));
}
