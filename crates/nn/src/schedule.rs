//! Learning-rate schedules and gradient clipping.
//!
//! Deep GCN training is sensitive to the optimization trajectory —
//! especially in the collapse regime the paper studies — so the trainer
//! exposes standard stabilizers: step/cosine decay with warmup, and
//! global-norm gradient clipping.

use skipnode_tensor::Matrix;

/// Learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f64,
    },
    /// Cosine decay from the base lr to `floor` over `total` epochs.
    Cosine {
        /// Total epochs in the schedule.
        total: usize,
        /// Final learning-rate fraction (of base).
        floor: f64,
    },
    /// Linear warmup over `warmup` epochs, then constant.
    Warmup {
        /// Warmup length in epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// The learning-rate multiplier at `epoch` (applied to the base lr).
    pub fn factor(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "step interval must be positive");
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { total, floor } => {
                if total == 0 {
                    return 1.0;
                }
                let t = (epoch.min(total)) as f64 / total as f64;
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || epoch >= warmup {
                    1.0
                } else {
                    (epoch + 1) as f64 / warmup as f64
                }
            }
        }
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Option<Matrix>], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip threshold must be positive");
    let total_sq: f64 = grads
        .iter()
        .flatten()
        .map(skipnode_tensor::l2_norm_sq)
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        for g in grads.iter_mut().flatten() {
            g.scale_in_place(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.factor(0), 1.0);
        assert_eq!(LrSchedule::Constant.factor(1000), 1.0);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_hits_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            floor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-12);
        assert!((s.factor(100) - 0.1).abs() < 1e-12);
        assert!((s.factor(200) - 0.1).abs() < 1e-12); // clamped past total
        let mid = s.factor(50);
        assert!(mid > 0.1 && mid < 1.0);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(10), 1.0);
    }

    #[test]
    fn clipping_preserves_direction_and_caps_norm() {
        let mut grads = vec![
            Some(Matrix::from_rows(&[&[3.0, 0.0]])),
            None,
            Some(Matrix::from_rows(&[&[0.0, 4.0]])),
        ];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post_sq: f64 = grads
            .iter()
            .flatten()
            .map(skipnode_tensor::l2_norm_sq)
            .sum();
        assert!((post_sq.sqrt() - 1.0).abs() < 1e-5);
        // Direction preserved: components stay proportional (3:4).
        let a = grads[0].as_ref().unwrap().get(0, 0);
        let b = grads[2].as_ref().unwrap().get(0, 1);
        assert!((a / b - 0.75).abs() < 1e-5);
    }

    #[test]
    fn small_gradients_untouched() {
        let mut grads = vec![Some(Matrix::from_rows(&[&[0.1, 0.1]]))];
        let before = grads[0].clone().unwrap();
        clip_global_norm(&mut grads, 10.0);
        assert_eq!(grads[0].as_ref().unwrap(), &before);
    }
}
