//! GPRGNN [7]: generalized PageRank with *learnable* hop weights.

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::{Matrix, SplitRng};

/// GPRGNN: `Z = Σ_{k=0}^{K} γ_k Ã^k H` where `H` is an MLP's output and the
/// `γ_k` are trained. Initialized PPR-style: `γ_k = α(1−α)^k`,
/// `γ_K = (1−α)^K`.
pub struct GprGnn {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    gamma: ParamId,
    k: usize,
    dropout: f64,
}

impl GprGnn {
    /// New GPRGNN with `k` propagation hops; `alpha` sets the PPR-style
    /// initialization of the hop weights (paper default 0.1).
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        k: usize,
        alpha: f32,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(k >= 1, "GPRGNN needs at least one hop");
        let mut store = ParamStore::new();
        let mut init = LayerInit::new(&mut store, rng);
        let (w1, b1) = init.linear("w1", "b1", in_dim, hidden);
        let (w2, b2) = init.linear("w2", "b2", hidden, out_dim);
        let mut g = Matrix::zeros(1, k + 1);
        for i in 0..=k {
            let v = if i == k {
                (1.0 - alpha).powi(k as i32)
            } else {
                alpha * (1.0 - alpha).powi(i as i32)
            };
            g.set(0, i, v);
        }
        let gamma = store.add("gamma", g);
        Self {
            store,
            w1,
            b1,
            w2,
            b2,
            gamma,
            k,
            dropout,
        }
    }

    /// Number of propagation hops `K`.
    pub fn hops(&self) -> usize {
        self.k
    }
}

impl Model for GprGnn {
    fn name(&self) -> &'static str {
        "gprgnn"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let x = b.dropout(PlanBuilder::input(), self.dropout);
        let h = b.dense(x, self.w1, self.b1);
        let h = b.relu(h);
        b.penultimate(h);
        let h = b.dropout(h, self.dropout);
        let h0 = b.dense(h, self.w2, self.b2);
        let mut hops = Vec::with_capacity(self.k + 1);
        hops.push(h0);
        let mut z = h0;
        for _ in 0..self.k {
            z = b.propagate(z, z, None);
            hops.push(z);
        }
        let out = b.weighted_sum(hops, self.gamma);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};

    #[test]
    fn gamma_initialization_is_ppr() {
        let mut rng = SplitRng::new(1);
        let m = GprGnn::new(8, 4, 2, 3, 0.1, 0.0, &mut rng);
        let g = m.store().value(m.gamma);
        assert!((g.get(0, 0) - 0.1).abs() < 1e-6);
        assert!((g.get(0, 1) - 0.09).abs() < 1e-6);
        assert!((g.get(0, 3) - 0.729).abs() < 1e-6);
        // PPR weights sum to 1.
        let total: f32 = g.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_produces_logits() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(2);
        let model = GprGnn::new(g.feature_dim(), 16, g.num_classes(), 10, 0.1, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(3);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        assert_eq!(tape.value(out).shape(), (183, 5));
        assert!(tape.value(out).all_finite());
    }
}
