//! Graph-level classifier: a GCN-family backbone over a packed
//! multi-graph batch, a per-graph [`PlanOp::Readout`] pooling, and a dense
//! classification head.
//!
//! The backbone layers are ordinary activated convolutions, so every
//! plug-and-play strategy — SkipNode included — applies to them unchanged;
//! the readout then collapses each graph's node embeddings to one row and
//! the head maps it to graph-class logits (`num_graphs × C`). Plans from
//! this model only execute against a segment-aware [`ForwardCtx`]
//! (`ctx.segments` set from a [`skipnode_graph::GraphBatch`]).
//!
//! [`PlanOp::Readout`]: crate::plan::PlanOp::Readout
//! [`ForwardCtx`]: crate::context::ForwardCtx

use super::{BuildError, Model};
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::{ReadoutKind, SplitRng};

/// Backbone wiring of a [`GraphClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphBackbone {
    /// Stacked convolutions (GCN).
    Plain,
    /// Stacked convolutions with identity skips on equal-width layers
    /// (ResGCN).
    Residual,
    /// Jumping-knowledge concat across all layer outputs (JKNet).
    Jk,
}

impl GraphBackbone {
    /// Parse a node-backbone table name into its graph-level counterpart.
    pub fn parse(name: &str) -> Result<Self, BuildError> {
        match name {
            "gcn" => Ok(Self::Plain),
            "resgcn" => Ok(Self::Residual),
            "jknet" => Ok(Self::Jk),
            other => Err(BuildError::UnknownBackbone(other.to_string())),
        }
    }
}

/// GCN-family backbone + per-graph readout + dense head.
pub struct GraphClassifier {
    store: ParamStore,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
    head_w: ParamId,
    head_b: ParamId,
    dropout: f64,
    readout: ReadoutKind,
    backbone: GraphBackbone,
    name: &'static str,
}

impl GraphClassifier {
    /// Build a graph classifier with `depth ≥ 1` convolutions
    /// (`in_dim → hidden → … → hidden`), a `readout` pooling, and a
    /// `hidden → graph_classes` head (`hidden·depth` for JK concat).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        backbone: GraphBackbone,
        in_dim: usize,
        hidden: usize,
        graph_classes: usize,
        depth: usize,
        dropout: f64,
        readout: ReadoutKind,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(depth >= 1, "graph classifier needs at least 1 conv layer");
        let mut store = ParamStore::new();
        let mut weights = Vec::with_capacity(depth);
        let mut biases = Vec::with_capacity(depth);
        let mut init = LayerInit::new(&mut store, rng);
        for l in 0..depth {
            let fi = if l == 0 { in_dim } else { hidden };
            let (w, b) = init.linear(format!("w{l}"), format!("b{l}"), fi, hidden);
            weights.push(w);
            biases.push(b);
        }
        let head_in = match backbone {
            GraphBackbone::Jk => hidden * depth,
            _ => hidden,
        };
        let (head_w, head_b) = init.linear("head_w", "head_b", head_in, graph_classes);
        let name = match backbone {
            GraphBackbone::Plain => "gcls-gcn",
            GraphBackbone::Residual => "gcls-resgcn",
            GraphBackbone::Jk => "gcls-jknet",
        };
        Self {
            store,
            weights,
            biases,
            head_w,
            head_b,
            dropout,
            readout,
            backbone,
            name,
        }
    }

    /// Number of convolutional layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// The readout kind pooling node embeddings per graph.
    pub fn readout_kind(&self) -> ReadoutKind {
        self.readout
    }
}

impl Model for GraphClassifier {
    fn name(&self) -> &'static str {
        self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let mut h = PlanBuilder::input();
        let mut layer_outs = Vec::with_capacity(self.depth());
        for l in 0..self.depth() {
            let h_in = b.dropout(h, self.dropout);
            h = match self.backbone {
                GraphBackbone::Residual => {
                    // Identity skip after the ReLU; shape-gated by the
                    // executor exactly as in node-level ResGCN.
                    b.activated_conv_residual(h_in, h, self.weights[l], self.biases[l], h)
                }
                _ => b.activated_conv(h_in, h, self.weights[l], self.biases[l]),
            };
            layer_outs.push(h);
        }
        if self.backbone == GraphBackbone::Jk {
            h = b.aggregate(layer_outs, super::JkAggregate::Concat);
        }
        b.penultimate(h);
        let pooled = b.readout(h, self.readout);
        let drop = b.dropout(pooled, self.dropout);
        let out = b.dense(drop, self.head_w, self.head_b);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_core::{Sampling, SkipNodeConfig};
    use skipnode_graph::{graph_classification_dataset, GraphBatch, GraphClassConfig};
    use skipnode_tensor::Matrix;

    fn forward_logits(backbone: GraphBackbone, strategy: &Strategy, train: bool) -> Matrix {
        let set = graph_classification_dataset(
            &GraphClassConfig {
                graphs: 12,
                ..GraphClassConfig::default()
            },
            &mut SplitRng::new(5),
        );
        let refs: Vec<&skipnode_graph::Graph> = set.graphs.iter().collect();
        let batch = GraphBatch::pack(&refs, &set.labels, set.num_classes);
        let mut rng = SplitRng::new(1);
        let model = GraphClassifier::new(
            backbone,
            batch.features_arc().cols(),
            16,
            batch.graph_classes(),
            3,
            0.2,
            ReadoutKind::Mean,
            &mut rng,
        );
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(batch.gcn_adjacency());
        let x = tape.constant_shared(batch.features_arc());
        let degrees: Vec<usize> = batch.degrees().to_vec();
        let mut fwd_rng = rng.split();
        let mut ctx = ForwardCtx::new(adj, x, &degrees, strategy, train, &mut fwd_rng);
        let seg = std::sync::Arc::clone(batch.segments());
        ctx.segments = Some(&seg);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn logits_are_one_row_per_graph() {
        for backbone in [
            GraphBackbone::Plain,
            GraphBackbone::Residual,
            GraphBackbone::Jk,
        ] {
            let logits = forward_logits(backbone, &Strategy::None, false);
            assert_eq!(logits.shape(), (12, 3));
            assert!(logits.all_finite());
        }
    }

    #[test]
    fn skipnode_applies_at_train_time_only() {
        let s = Strategy::SkipNode(SkipNodeConfig::new(0.5, Sampling::Uniform));
        let eval_a = forward_logits(GraphBackbone::Plain, &s, false);
        let eval_b = forward_logits(GraphBackbone::Plain, &Strategy::None, false);
        assert_eq!(eval_a, eval_b);
        let train_a = forward_logits(GraphBackbone::Plain, &s, true);
        assert_ne!(train_a, eval_a);
    }

    #[test]
    fn backbone_names_parse() {
        assert_eq!(GraphBackbone::parse("gcn").unwrap(), GraphBackbone::Plain);
        assert_eq!(GraphBackbone::parse("jknet").unwrap(), GraphBackbone::Jk);
        assert!(GraphBackbone::parse("nope").is_err());
    }
}
