//! GRAND [10]: random propagation + MLP with consistency regularization.
//!
//! Each training step draws `S` stochastic augmentations: node features are
//! row-dropped (DropNode-as-augmentation), diffused by the mean of the
//! first `K+1` propagation powers, and classified by a shared MLP. The
//! trainer adds a consistency penalty pulling the `S` predictive
//! distributions toward their sharpened mean.

use super::{Consistency, Model};
use crate::context::ForwardCtx;
use crate::param::{Binding, LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_autograd::{NodeId, Tape};
use skipnode_tensor::SplitRng;

/// GRAND with a 2-layer MLP head.
pub struct Grand {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    order: usize,
    heads: usize,
    drop_node: f64,
    dropout: f64,
    consistency: Consistency,
}

impl Grand {
    /// `order` = propagation order `K` (the depth knob), `heads` = number
    /// of augmentations `S` during training (paper uses 2–4).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        order: usize,
        heads: usize,
        drop_node: f64,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(order >= 1, "GRAND needs propagation order >= 1");
        assert!(heads >= 1, "GRAND needs at least one head");
        let mut store = ParamStore::new();
        let mut init = LayerInit::new(&mut store, rng);
        let (w1, b1) = init.linear("w1", "b1", in_dim, hidden);
        let (w2, b2) = init.linear("w2", "b2", hidden, out_dim);
        Self {
            store,
            w1,
            b1,
            w2,
            b2,
            order,
            heads,
            drop_node,
            dropout,
            consistency: Consistency {
                lambda: 1.0,
                temperature: 0.5,
            },
        }
    }
}

impl Model for Grand {
    fn name(&self) -> &'static str {
        "grand"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// One stochastic head: random propagation (row dropout + power mean)
    /// feeding the shared MLP. [`Model::forward_heads`] executes this plan
    /// `S` times during training, drawing fresh augmentations each run.
    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let x = b.drop_rows(PlanBuilder::input(), self.drop_node);
        let mut powers = Vec::with_capacity(self.order + 1);
        powers.push(x);
        let mut z = x;
        for _ in 0..self.order {
            z = b.propagate(z, z, None);
            powers.push(z);
        }
        let coef = 1.0 / (self.order + 1) as f32;
        let xbar = b.lin_comb(powers.into_iter().map(|p| (p, coef)).collect());
        let h_in = b.dropout(xbar, self.dropout);
        let h = b.dense(h_in, self.w1, self.b1);
        let h = b.relu(h);
        b.penultimate(h);
        let h = b.dropout(h, self.dropout);
        let out = b.dense(h, self.w2, self.b2);
        Some(b.finish(out))
    }

    fn forward_heads(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        ctx: &mut ForwardCtx,
    ) -> Vec<NodeId> {
        let s = if ctx.train { self.heads } else { 1 };
        (0..s).map(|_| self.forward(tape, binding, ctx)).collect()
    }

    fn consistency(&self) -> Option<Consistency> {
        (self.heads > 1).then_some(self.consistency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Strategy;
    use skipnode_graph::{load, DatasetName, Scale};

    fn setup() -> (skipnode_graph::Graph, Grand) {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Grand::new(
            g.feature_dim(),
            16,
            g.num_classes(),
            4,
            2,
            0.5,
            0.2,
            &mut rng,
        );
        (g, model)
    }

    #[test]
    fn training_produces_multiple_distinct_heads() {
        let (g, model) = setup();
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, true, &mut rng);
        let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
        assert_eq!(heads.len(), 2);
        assert_ne!(tape.value(heads[0]), tape.value(heads[1]));
    }

    #[test]
    fn eval_uses_single_deterministic_head() {
        let (g, model) = setup();
        let run = || {
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let adj = tape.register_adj(g.gcn_adjacency());
            let x = tape.constant(g.features().clone());
            let degrees = g.degrees();
            let strategy = Strategy::None;
            let mut rng = SplitRng::new(3);
            let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut rng);
            let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
            assert_eq!(heads.len(), 1);
            tape.value(heads[0]).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn consistency_config_present_only_with_multiple_heads() {
        let (_, model) = setup();
        assert!(model.consistency().is_some());
        let mut rng = SplitRng::new(4);
        let single = Grand::new(8, 4, 2, 2, 1, 0.5, 0.0, &mut rng);
        assert!(single.consistency().is_none());
    }
}
