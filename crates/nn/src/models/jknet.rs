//! JKNet [6]: jumping-knowledge network aggregating all layer outputs.

use super::{conv_activated, dense, Model};
use crate::context::ForwardCtx;
use crate::param::{Binding, ParamId, ParamStore};
use skipnode_autograd::{NodeId, Tape};
use skipnode_tensor::{glorot_uniform, Matrix, SplitRng};

/// How JKNet fuses per-layer representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JkAggregate {
    /// Concatenate all layer outputs (the paper's default).
    Concat,
    /// Elementwise max across layer outputs.
    MaxPool,
}

/// JKNet: a stack of GCN layers whose *every* intermediate representation
/// feeds the classifier, making depth-induced smoothing survivable.
pub struct JkNet {
    store: ParamStore,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
    out_w: ParamId,
    out_b: ParamId,
    dropout: f64,
    aggregate: JkAggregate,
}

impl JkNet {
    /// `layers ≥ 1` convolutions plus a jumping classifier head.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        aggregate: JkAggregate,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "JKNet needs at least 1 layer");
        let mut store = ParamStore::new();
        let mut weights = Vec::with_capacity(layers);
        let mut biases = Vec::with_capacity(layers);
        for l in 0..layers {
            let fi = if l == 0 { in_dim } else { hidden };
            weights.push(store.add(format!("w{l}"), glorot_uniform(fi, hidden, rng)));
            biases.push(store.add(format!("b{l}"), Matrix::zeros(1, hidden)));
        }
        let head_in = match aggregate {
            JkAggregate::Concat => hidden * layers,
            JkAggregate::MaxPool => hidden,
        };
        let out_w = store.add("out_w", glorot_uniform(head_in, out_dim, rng));
        let out_b = store.add("out_b", Matrix::zeros(1, out_dim));
        Self {
            store,
            weights,
            biases,
            out_w,
            out_b,
            dropout,
            aggregate,
        }
    }

    /// Number of convolutional layers.
    pub fn layers(&self) -> usize {
        self.weights.len()
    }
}

impl Model for JkNet {
    fn name(&self) -> &'static str {
        "jknet"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId {
        let mut h = ctx.x;
        let mut collected = Vec::with_capacity(self.layers());
        for l in 0..self.layers() {
            let h_in = ctx.dropout(tape, h, self.dropout);
            let a = conv_activated(tape, ctx, binding, h_in, h, self.weights[l], self.biases[l]);
            collected.push(a);
            h = a;
        }
        let rep = match self.aggregate {
            JkAggregate::Concat => tape.concat_cols(&collected),
            JkAggregate::MaxPool => tape.max_pool(&collected),
        };
        ctx.penultimate = Some(rep);
        let rep = ctx.dropout(tape, rep, self.dropout);
        dense(tape, binding, rep, self.out_w, self.out_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Strategy;
    use skipnode_graph::{load, DatasetName, Scale};

    fn run(aggregate: JkAggregate) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = JkNet::new(
            g.feature_dim(),
            16,
            g.num_classes(),
            4,
            0.0,
            aggregate,
            &mut rng,
        );
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn concat_head_produces_class_logits() {
        let logits = run(JkAggregate::Concat);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn max_pool_head_produces_class_logits() {
        let logits = run(JkAggregate::MaxPool);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn aggregators_differ() {
        assert_ne!(run(JkAggregate::Concat), run(JkAggregate::MaxPool));
    }
}
