//! JKNet [6]: jumping-knowledge network aggregating all layer outputs.

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

/// How JKNet fuses per-layer representations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JkAggregate {
    /// Concatenate all layer outputs (the paper's default).
    Concat,
    /// Elementwise max across layer outputs.
    MaxPool,
}

/// JKNet: a stack of GCN layers whose *every* intermediate representation
/// feeds the classifier, making depth-induced smoothing survivable.
pub struct JkNet {
    store: ParamStore,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
    out_w: ParamId,
    out_b: ParamId,
    dropout: f64,
    aggregate: JkAggregate,
}

impl JkNet {
    /// `layers ≥ 1` convolutions plus a jumping classifier head.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        aggregate: JkAggregate,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "JKNet needs at least 1 layer");
        let mut store = ParamStore::new();
        let mut weights = Vec::with_capacity(layers);
        let mut biases = Vec::with_capacity(layers);
        let mut init = LayerInit::new(&mut store, rng);
        for l in 0..layers {
            let fi = if l == 0 { in_dim } else { hidden };
            let (w, b) = init.linear(format!("w{l}"), format!("b{l}"), fi, hidden);
            weights.push(w);
            biases.push(b);
        }
        let head_in = match aggregate {
            JkAggregate::Concat => hidden * layers,
            JkAggregate::MaxPool => hidden,
        };
        let (out_w, out_b) = init.linear("out_w", "out_b", head_in, out_dim);
        Self {
            store,
            weights,
            biases,
            out_w,
            out_b,
            dropout,
            aggregate,
        }
    }

    /// Number of convolutional layers.
    pub fn layers(&self) -> usize {
        self.weights.len()
    }
}

impl Model for JkNet {
    fn name(&self) -> &'static str {
        "jknet"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let mut h = PlanBuilder::input();
        let mut collected = Vec::with_capacity(self.layers());
        for l in 0..self.layers() {
            let h_in = b.dropout(h, self.dropout);
            h = b.activated_conv(h_in, h, self.weights[l], self.biases[l]);
            collected.push(h);
        }
        let rep = b.aggregate(collected, self.aggregate);
        b.penultimate(rep);
        let rep = b.dropout(rep, self.dropout);
        let out = b.dense(rep, self.out_w, self.out_b);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};
    use skipnode_tensor::Matrix;

    fn run(aggregate: JkAggregate) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = JkNet::new(
            g.feature_dim(),
            16,
            g.num_classes(),
            4,
            0.0,
            aggregate,
            &mut rng,
        );
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn concat_head_produces_class_logits() {
        let logits = run(JkAggregate::Concat);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn max_pool_head_produces_class_logits() {
        let logits = run(JkAggregate::MaxPool);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn aggregators_differ() {
        assert_ne!(run(JkAggregate::Concat), run(JkAggregate::MaxPool));
    }
}
