//! APPNP [8]: predict (MLP) then propagate (personalized PageRank).

use super::{dense, Model};
use crate::context::ForwardCtx;
use crate::param::{Binding, ParamId, ParamStore};
use skipnode_autograd::{NodeId, Tape};
use skipnode_tensor::{glorot_uniform, Matrix, SplitRng};

/// APPNP: a 2-layer MLP produces per-node predictions `H`, then `K`
/// personalized-PageRank steps `Z ← (1−α) Ã Z + α H` diffuse them. The
/// depth knob of Tables 3/6 maps to `K`.
pub struct Appnp {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    k: usize,
    alpha: f32,
    dropout: f64,
}

impl Appnp {
    /// New APPNP with `k` propagation steps and teleport `alpha` (paper
    /// default 0.1).
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        k: usize,
        alpha: f32,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(k >= 1, "APPNP needs at least one propagation step");
        let mut store = ParamStore::new();
        let w1 = store.add("w1", glorot_uniform(in_dim, hidden, rng));
        let b1 = store.add("b1", Matrix::zeros(1, hidden));
        let w2 = store.add("w2", glorot_uniform(hidden, out_dim, rng));
        let b2 = store.add("b2", Matrix::zeros(1, out_dim));
        Self {
            store,
            w1,
            b1,
            w2,
            b2,
            k,
            alpha,
            dropout,
        }
    }

    /// Number of propagation steps.
    pub fn steps(&self) -> usize {
        self.k
    }
}

impl Model for Appnp {
    fn name(&self) -> &'static str {
        "appnp"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId {
        let x = ctx.dropout(tape, ctx.x, self.dropout);
        let h = dense(tape, binding, x, self.w1, self.b1);
        let h = tape.relu(h);
        ctx.penultimate = Some(h);
        let h = ctx.dropout(tape, h, self.dropout);
        let h0 = dense(tape, binding, h, self.w2, self.b2);
        let mut z = h0;
        for _ in 0..self.k {
            let z_prev = z;
            let p = tape.spmm(ctx.adj, z);
            let step = tape.lin_comb(&[(p, 1.0 - self.alpha), (h0, self.alpha)]);
            z = ctx.post_conv(tape, step, z_prev);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Strategy;
    use skipnode_graph::{load, DatasetName, Scale};

    fn run(k: usize) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Appnp::new(g.feature_dim(), 16, g.num_classes(), k, 0.1, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn forward_produces_logits() {
        let logits = run(10);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn deep_propagation_stays_finite_thanks_to_teleport() {
        let logits = run(64);
        assert!(logits.all_finite());
        assert!(logits.max_abs() > 1e-4);
    }

    #[test]
    fn more_steps_change_output() {
        assert_ne!(run(2), run(12));
    }
}
