//! APPNP [8]: predict (MLP) then propagate (personalized PageRank).

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

/// APPNP: a 2-layer MLP produces per-node predictions `H`, then `K`
/// personalized-PageRank steps `Z ← (1−α) Ã Z + α H` diffuse them. The
/// depth knob of Tables 3/6 maps to `K`.
pub struct Appnp {
    store: ParamStore,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    k: usize,
    alpha: f32,
    dropout: f64,
}

impl Appnp {
    /// New APPNP with `k` propagation steps and teleport `alpha` (paper
    /// default 0.1).
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        k: usize,
        alpha: f32,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(k >= 1, "APPNP needs at least one propagation step");
        let mut store = ParamStore::new();
        let mut init = LayerInit::new(&mut store, rng);
        let (w1, b1) = init.linear("w1", "b1", in_dim, hidden);
        let (w2, b2) = init.linear("w2", "b2", hidden, out_dim);
        Self {
            store,
            w1,
            b1,
            w2,
            b2,
            k,
            alpha,
            dropout,
        }
    }

    /// Number of propagation steps.
    pub fn steps(&self) -> usize {
        self.k
    }
}

impl Model for Appnp {
    fn name(&self) -> &'static str {
        "appnp"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let x = b.dropout(PlanBuilder::input(), self.dropout);
        let h = b.dense(x, self.w1, self.b1);
        let h = b.relu(h);
        b.penultimate(h);
        let h = b.dropout(h, self.dropout);
        let h0 = b.dense(h, self.w2, self.b2);
        let mut z = h0;
        for _ in 0..self.k {
            z = b.propagate(z, z, Some((h0, self.alpha)));
        }
        Some(b.finish(z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};
    use skipnode_tensor::Matrix;

    fn run(k: usize) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Appnp::new(g.feature_dim(), 16, g.num_classes(), k, 0.1, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn forward_produces_logits() {
        let logits = run(10);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn deep_propagation_stays_finite_thanks_to_teleport() {
        let logits = run(64);
        assert!(logits.all_finite());
        assert!(logits.max_abs() > 1e-4);
    }

    #[test]
    fn more_steps_change_output() {
        assert_ne!(run(2), run(12));
    }
}
