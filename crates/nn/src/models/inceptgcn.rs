//! InceptGCN [28]: parallel GCN branches of increasing receptive field.
//!
//! The original InceptionGCN runs a small number of parallel convolution
//! towers with different depths and fuses them. To keep the parameter and
//! compute budget sane at the paper's deepest settings (L = 64), we use at
//! most `MAX_BRANCHES` towers whose depths are spread evenly up to `L`
//! (documented adaptation; the receptive-field mixture is what matters).

use super::{JkAggregate, Model};
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

const MAX_BRANCHES: usize = 4;

struct Branch {
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
}

/// Inception-style GCN with parallel towers of depths spread over `1..=L`.
pub struct InceptGcn {
    store: ParamStore,
    branches: Vec<Branch>,
    out_w: ParamId,
    out_b: ParamId,
    dropout: f64,
}

impl InceptGcn {
    /// Build towers with depths evenly spaced up to `layers`.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "InceptGCN needs at least 1 layer");
        let mut store = ParamStore::new();
        let b = MAX_BRANCHES.min(layers);
        let depths: Vec<usize> = (1..=b)
            .map(|i| ((layers * i) as f64 / b as f64).round().max(1.0) as usize)
            .collect();
        let mut branches = Vec::with_capacity(b);
        let mut init = LayerInit::new(&mut store, rng);
        for (bi, &depth) in depths.iter().enumerate() {
            let mut weights = Vec::with_capacity(depth);
            let mut biases = Vec::with_capacity(depth);
            for l in 0..depth {
                let fi = if l == 0 { in_dim } else { hidden };
                let (w, b) = init.linear(format!("b{bi}_w{l}"), format!("b{bi}_b{l}"), fi, hidden);
                weights.push(w);
                biases.push(b);
            }
            branches.push(Branch { weights, biases });
        }
        let (out_w, out_b) = init.linear("out_w", "out_b", hidden * b, out_dim);
        Self {
            store,
            branches,
            out_w,
            out_b,
            dropout,
        }
    }

    /// Branch depths (ascending).
    pub fn branch_depths(&self) -> Vec<usize> {
        self.branches.iter().map(|b| b.weights.len()).collect()
    }
}

impl Model for InceptGcn {
    fn name(&self) -> &'static str {
        "inceptgcn"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let mut outs = Vec::with_capacity(self.branches.len());
        for branch in &self.branches {
            let mut h = PlanBuilder::input();
            for l in 0..branch.weights.len() {
                let h_in = b.dropout(h, self.dropout);
                h = b.activated_conv(h_in, h, branch.weights[l], branch.biases[l]);
            }
            outs.push(h);
        }
        let rep = b.aggregate(outs, JkAggregate::Concat);
        b.penultimate(rep);
        let rep = b.dropout(rep, self.dropout);
        let out = b.dense(rep, self.out_w, self.out_b);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};

    #[test]
    fn branch_depths_spread_to_requested_depth() {
        let mut rng = SplitRng::new(1);
        let m = InceptGcn::new(10, 8, 3, 8, 0.0, &mut rng);
        let depths = m.branch_depths();
        assert_eq!(depths.len(), 4);
        assert_eq!(*depths.last().unwrap(), 8);
        assert!(depths.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shallow_model_gets_fewer_branches() {
        let mut rng = SplitRng::new(2);
        let m = InceptGcn::new(10, 8, 3, 2, 0.0, &mut rng);
        assert_eq!(m.branch_depths(), vec![1, 2]);
    }

    #[test]
    fn forward_produces_logits() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(3);
        let model = InceptGcn::new(g.feature_dim(), 16, g.num_classes(), 5, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(4);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        assert_eq!(tape.value(out).shape(), (183, 5));
        assert!(tape.value(out).all_finite());
    }
}
