//! SGC [20]: Simplified Graph Convolution.
//!
//! SGC removes nonlinearities and collapses the weight stack:
//! `Z = softmax(Ã^K X W)`. The paper cites it as the "remove nonlinearity"
//! family of over-smoothing workarounds; it serves here as a cheap extra
//! baseline whose propagation `Ã^K X` can optionally be precomputed.

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

/// SGC: `K` linear propagation steps followed by one linear classifier.
pub struct Sgc {
    store: ParamStore,
    w: ParamId,
    b: ParamId,
    k: usize,
    dropout: f64,
}

impl Sgc {
    /// New SGC with `k` propagation hops.
    pub fn new(in_dim: usize, out_dim: usize, k: usize, dropout: f64, rng: &mut SplitRng) -> Self {
        assert!(k >= 1, "SGC needs at least one hop");
        let mut store = ParamStore::new();
        let mut init = LayerInit::new(&mut store, rng);
        let (w, b) = init.linear("w", "b", in_dim, out_dim);
        Self {
            store,
            w,
            b,
            k,
            dropout,
        }
    }

    /// Number of propagation hops.
    pub fn hops(&self) -> usize {
        self.k
    }
}

impl Model for Sgc {
    fn name(&self) -> &'static str {
        "sgc"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let mut h = PlanBuilder::input();
        for _ in 0..self.k {
            h = b.propagate(h, h, None);
        }
        b.penultimate(h);
        let h = b.dropout(h, self.dropout);
        let out = b.dense(h, self.w, self.b);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};

    #[test]
    fn forward_produces_logits_with_two_params_only() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Sgc::new(g.feature_dim(), g.num_classes(), 4, 0.0, &mut rng);
        assert_eq!(model.store().len(), 2);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        assert_eq!(tape.value(out).shape(), (183, 5));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn sgc_propagation_matches_manual_powers() {
        // With SkipNode inactive, SGC's penultimate is exactly Ã^K X.
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let adj = g.gcn_adjacency();
        let mut want = g.features().clone();
        for _ in 0..3 {
            want = adj.spmm(&want);
        }
        let mut rng = SplitRng::new(1);
        let model = Sgc::new(g.feature_dim(), g.num_classes(), 3, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj_id = tape.register_adj(adj);
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj_id, x, &degrees, &strategy, false, &mut fwd_rng);
        let _ = model.forward(&mut tape, &binding, &mut ctx);
        let got = tape.value(ctx.penultimate.expect("penultimate set"));
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
