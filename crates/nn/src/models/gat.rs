//! GAT [42]: graph attention network.
//!
//! Each layer transforms features (`h = X W`), scores every edge with a
//! decomposed additive attention (`e_uv = LeakyReLU(a_srcᵀh_u + a_dstᵀh_v)`),
//! softmax-normalizes per destination, and aggregates. Not one of the
//! paper's backbones, but included to demonstrate SkipNode's
//! model-agnosticism on attention-based message passing.

use super::{dense, Model};
use crate::context::ForwardCtx;
use crate::param::{Binding, ParamId, ParamStore};
use skipnode_autograd::{AttentionGraph, NodeId, Tape};
use skipnode_tensor::{glorot_uniform, Matrix, SplitRng};

const LEAKY_SLOPE: f32 = 0.2;

struct GatLayer {
    w: ParamId,
    a_src: ParamId,
    a_dst: ParamId,
}

/// Single-head GAT stack with a linear classifier.
///
/// The attention neighborhoods come from the *full* graph (built once at
/// construction); graph-modifying strategies (DropEdge/DropNode) act on
/// the propagation used by other models and are not supported here — use
/// PairNorm or SkipNode, which hook the layer outputs.
pub struct Gat {
    store: ParamStore,
    layers: Vec<GatLayer>,
    out_w: ParamId,
    out_b: ParamId,
    graph: AttentionGraph,
    dropout: f64,
}

impl Gat {
    /// Build a `layers`-deep GAT over the given graph structure.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        edges: &[(usize, usize)],
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "GAT needs at least one layer");
        let mut store = ParamStore::new();
        let mut ls = Vec::with_capacity(layers);
        for l in 0..layers {
            let fi = if l == 0 { in_dim } else { hidden };
            ls.push(GatLayer {
                w: store.add(format!("w{l}"), glorot_uniform(fi, hidden, rng)),
                a_src: store.add(format!("a_src{l}"), glorot_uniform(hidden, 1, rng)),
                a_dst: store.add(format!("a_dst{l}"), glorot_uniform(hidden, 1, rng)),
            });
        }
        let out_w = store.add("out_w", glorot_uniform(hidden, out_dim, rng));
        let out_b = store.add("out_b", Matrix::zeros(1, out_dim));
        Self {
            store,
            layers: ls,
            out_w,
            out_b,
            graph: AttentionGraph::from_edges(n, edges),
            dropout,
        }
    }

    /// Number of attention layers.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }
}

impl Model for Gat {
    fn name(&self) -> &'static str {
        "gat"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId {
        let mut h = ctx.x;
        for layer in &self.layers {
            let h_in = ctx.dropout(tape, h, self.dropout);
            let t = tape.matmul(h_in, binding.node(layer.w));
            let s_src = tape.matmul(t, binding.node(layer.a_src));
            let s_dst = tape.matmul(t, binding.node(layer.a_dst));
            let agg = tape.gat_aggregate(t, s_src, s_dst, &self.graph, LEAKY_SLOPE);
            let a = tape.relu(agg);
            h = ctx.post_conv(tape, a, h);
        }
        ctx.penultimate = Some(h);
        let h = ctx.dropout(tape, h, self.dropout);
        dense(tape, binding, h, self.out_w, self.out_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Strategy;
    use skipnode_core::{Sampling, SkipNodeConfig};
    use skipnode_graph::{load, DatasetName, Scale};

    fn run(strategy: &Strategy, train: bool) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Gat::new(
            g.num_nodes(),
            g.edges(),
            g.feature_dim(),
            8,
            g.num_classes(),
            3,
            0.0,
            &mut rng,
        );
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, strategy, train, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn forward_produces_finite_logits() {
        let logits = run(&Strategy::None, false);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn skipnode_hooks_into_attention_layers() {
        let s = Strategy::SkipNode(SkipNodeConfig::new(0.6, Sampling::Uniform));
        let with = run(&s, true);
        let without = run(&Strategy::None, true);
        assert_ne!(with, without);
        // ... and stays transparent at eval.
        assert_eq!(run(&s, false), run(&Strategy::None, false));
    }
}
