//! GCNII [9]: initial residual + identity mapping.
//!
//! `H^(l+1) = σ( ((1−α) Ã H^(l) + α H^(0)) ((1−β_l) I + β_l W^(l)) )`
//! with `β_l = ln(λ/l + 1)`.

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

/// GCNII with the paper's standard hyperparameters (α = 0.1, λ = 0.5).
pub struct Gcnii {
    store: ParamStore,
    in_w: ParamId,
    in_b: ParamId,
    mids: Vec<ParamId>,
    out_w: ParamId,
    out_b: ParamId,
    dropout: f64,
    alpha: f32,
    lambda: f64,
}

impl Gcnii {
    /// `layers` propagation blocks between an input projection and a
    /// linear classifier.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "GCNII needs at least 1 block");
        let mut store = ParamStore::new();
        let mut init = LayerInit::new(&mut store, rng);
        let (in_w, in_b) = init.linear("in_w", "in_b", in_dim, hidden);
        let mids = (0..layers)
            .map(|l| init.weight(format!("w{l}"), hidden, hidden))
            .collect();
        let (out_w, out_b) = init.linear("out_w", "out_b", hidden, out_dim);
        Self {
            store,
            in_w,
            in_b,
            mids,
            out_w,
            out_b,
            dropout,
            alpha: 0.1,
            lambda: 0.5,
        }
    }

    /// Number of propagation blocks.
    pub fn layers(&self) -> usize {
        self.mids.len()
    }
}

impl Model for Gcnii {
    fn name(&self) -> &'static str {
        "gcnii"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let mut b = PlanBuilder::new();
        let x = b.dropout(PlanBuilder::input(), self.dropout);
        let z = b.dense(x, self.in_w, self.in_b);
        let h0 = b.relu(z);
        let mut h = h0;
        for (l, &w) in self.mids.iter().enumerate() {
            let beta = (self.lambda / (l + 1) as f64 + 1.0).ln() as f32;
            let h_in = b.dropout(h, self.dropout);
            h = b.activated_conv_gcnii(h_in, h, w, h0, self.alpha, beta);
        }
        b.penultimate(h);
        let h = b.dropout(h, self.dropout);
        let out = b.dense(h, self.out_w, self.out_b);
        Some(b.finish(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_graph::{load, DatasetName, Scale};

    #[test]
    fn deep_gcnii_forward_stays_finite() {
        // GCNII's raison d'être: no collapse at depth 32.
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Gcnii::new(g.feature_dim(), 16, g.num_classes(), 32, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        let logits = tape.value(out);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
        // Initial residual keeps activations alive: logits must not be
        // uniformly ~0 the way a collapsed deep GCN's would be.
        assert!(logits.max_abs() > 1e-3);
    }

    #[test]
    fn layer_count_reported() {
        let mut rng = SplitRng::new(3);
        let m = Gcnii::new(8, 4, 2, 5, 0.0, &mut rng);
        assert_eq!(m.layers(), 5);
        assert_eq!(m.name(), "gcnii");
    }
}
