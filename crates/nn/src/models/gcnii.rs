//! GCNII [9]: initial residual + identity mapping.
//!
//! `H^(l+1) = σ( ((1−α) Ã H^(l) + α H^(0)) ((1−β_l) I + β_l W^(l)) )`
//! with `β_l = ln(λ/l + 1)`.

use super::{dense, Model};
use crate::context::ForwardCtx;
use crate::param::{Binding, ParamId, ParamStore};
use skipnode_autograd::{NodeId, Tape};
use skipnode_tensor::{glorot_uniform, Matrix, SplitRng};

/// GCNII with the paper's standard hyperparameters (α = 0.1, λ = 0.5).
pub struct Gcnii {
    store: ParamStore,
    in_w: ParamId,
    in_b: ParamId,
    mids: Vec<ParamId>,
    out_w: ParamId,
    out_b: ParamId,
    dropout: f64,
    alpha: f32,
    lambda: f64,
}

impl Gcnii {
    /// `layers` propagation blocks between an input projection and a
    /// linear classifier.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 1, "GCNII needs at least 1 block");
        let mut store = ParamStore::new();
        let in_w = store.add("in_w", glorot_uniform(in_dim, hidden, rng));
        let in_b = store.add("in_b", Matrix::zeros(1, hidden));
        let mids = (0..layers)
            .map(|l| store.add(format!("w{l}"), glorot_uniform(hidden, hidden, rng)))
            .collect();
        let out_w = store.add("out_w", glorot_uniform(hidden, out_dim, rng));
        let out_b = store.add("out_b", Matrix::zeros(1, out_dim));
        Self {
            store,
            in_w,
            in_b,
            mids,
            out_w,
            out_b,
            dropout,
            alpha: 0.1,
            lambda: 0.5,
        }
    }

    /// Number of propagation blocks.
    pub fn layers(&self) -> usize {
        self.mids.len()
    }
}

impl Model for Gcnii {
    fn name(&self) -> &'static str {
        "gcnii"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId {
        let x = ctx.dropout(tape, ctx.x, self.dropout);
        let h0 = {
            let z = dense(tape, binding, x, self.in_w, self.in_b);
            tape.relu(z)
        };
        let mut h = h0;
        for (l, &w) in self.mids.iter().enumerate() {
            let beta = (self.lambda / (l + 1) as f64 + 1.0).ln() as f32;
            let h_in = ctx.dropout(tape, h, self.dropout);
            let p = tape.spmm(ctx.adj, h_in);
            let support = tape.lin_comb(&[(p, 1.0 - self.alpha), (h0, self.alpha)]);
            let sw = tape.matmul(support, binding.node(w));
            let z = tape.lin_comb(&[(support, 1.0 - beta), (sw, beta)]);
            let a = tape.relu(z);
            h = ctx.post_conv(tape, a, h);
        }
        ctx.penultimate = Some(h);
        let h = ctx.dropout(tape, h, self.dropout);
        dense(tape, binding, h, self.out_w, self.out_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Strategy;
    use skipnode_graph::{load, DatasetName, Scale};

    #[test]
    fn deep_gcnii_forward_stays_finite() {
        // GCNII's raison d'être: no collapse at depth 32.
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Gcnii::new(g.feature_dim(), 16, g.num_classes(), 32, 0.0, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let strategy = Strategy::None;
        let mut fwd_rng = SplitRng::new(2);
        let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        let logits = tape.value(out);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
        // Initial residual keeps activations alive: logits must not be
        // uniformly ~0 the way a collapsed deep GCN's would be.
        assert!(logits.max_abs() > 1e-3);
    }

    #[test]
    fn layer_count_reported() {
        let mut rng = SplitRng::new(3);
        let m = Gcnii::new(8, 4, 2, 5, 0.0, &mut rng);
        assert_eq!(m.layers(), 5);
        assert_eq!(m.name(), "gcnii");
    }
}
