//! Vanilla GCN [5] and ResGCN (GCN + skip connections [33]).

use super::Model;
use crate::param::{LayerInit, ParamId, ParamStore};
use crate::plan::{LayerPlan, PlanBuilder};
use skipnode_tensor::SplitRng;

/// Multi-layer GCN: `X^(l) = ReLU(Ã X^(l-1) W^(l))` with a linear
/// classification layer on top, optionally with residual connections
/// between equal-width middle layers (ResGCN).
pub struct Gcn {
    store: ParamStore,
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
    dropout: f64,
    residual: bool,
    name: &'static str,
}

impl Gcn {
    /// Plain deep GCN with `layers ≥ 2` convolutions
    /// (`in_dim → hidden → … → hidden → out_dim`).
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        Self::build(in_dim, hidden, out_dim, layers, dropout, false, "gcn", rng)
    }

    /// ResGCN: adds identity skip connections on the equal-width middle
    /// layers.
    pub fn residual(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        rng: &mut SplitRng,
    ) -> Self {
        Self::build(
            in_dim, hidden, out_dim, layers, dropout, true, "resgcn", rng,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        layers: usize,
        dropout: f64,
        residual: bool,
        name: &'static str,
        rng: &mut SplitRng,
    ) -> Self {
        assert!(layers >= 2, "GCN needs at least 2 layers, got {layers}");
        let mut store = ParamStore::new();
        let mut weights = Vec::with_capacity(layers);
        let mut biases = Vec::with_capacity(layers);
        let mut init = LayerInit::new(&mut store, rng);
        for l in 0..layers {
            let (fi, fo) = if l == 0 {
                (in_dim, hidden)
            } else if l == layers - 1 {
                (hidden, out_dim)
            } else {
                (hidden, hidden)
            };
            let (w, b) = init.linear(format!("w{l}"), format!("b{l}"), fi, fo);
            weights.push(w);
            biases.push(b);
        }
        Self {
            store,
            weights,
            biases,
            dropout,
            residual,
            name,
        }
    }

    /// Number of convolutional layers.
    pub fn layers(&self) -> usize {
        self.weights.len()
    }
}

impl Model for Gcn {
    fn name(&self) -> &'static str {
        self.name
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn plan(&self) -> Option<LayerPlan> {
        let layers = self.layers();
        let mut b = PlanBuilder::new();
        let mut h = PlanBuilder::input();
        for l in 0..layers {
            let last = l == layers - 1;
            if last {
                b.penultimate(h);
            }
            let h_in = b.dropout(h, self.dropout);
            h = if last {
                b.conv(h_in, self.weights[l], self.biases[l])
            } else if self.residual {
                // ResGCN: identity skip added after the ReLU; the executor
                // gates it (and the fused path) on shape compatibility.
                b.activated_conv_residual(h_in, h, self.weights[l], self.biases[l], h)
            } else {
                b.activated_conv(h_in, h, self.weights[l], self.biases[l])
            };
        }
        Some(b.finish(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ForwardCtx, Strategy};
    use skipnode_autograd::Tape;
    use skipnode_core::{Sampling, SkipNodeConfig};
    use skipnode_graph::{load, DatasetName, Scale};
    use skipnode_tensor::Matrix;

    fn forward_logits(strategy: &Strategy, train: bool, layers: usize) -> Matrix {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let model = Gcn::new(g.feature_dim(), 16, g.num_classes(), layers, 0.5, &mut rng);
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj = tape.register_adj(g.gcn_adjacency());
        let x = tape.constant(g.features().clone());
        let degrees = g.degrees();
        let mut fwd_rng = rng.split();
        let mut ctx = ForwardCtx::new(adj, x, &degrees, strategy, train, &mut fwd_rng);
        let out = model.forward(&mut tape, &binding, &mut ctx);
        tape.value(out).clone()
    }

    #[test]
    fn forward_shapes_are_correct() {
        let logits = forward_logits(&Strategy::None, false, 3);
        assert_eq!(logits.shape(), (183, 5));
        assert!(logits.all_finite());
    }

    #[test]
    fn eval_forward_is_deterministic_under_skipnode() {
        // SkipNode is train-only: eval forwards must agree exactly.
        let s = Strategy::SkipNode(SkipNodeConfig::new(0.5, Sampling::Uniform));
        let a = forward_logits(&s, false, 4);
        let b = forward_logits(&s, false, 4);
        assert_eq!(a, b);
        // ... and equal to the plain model's eval output.
        let c = forward_logits(&Strategy::None, false, 4);
        assert_eq!(a, c);
    }

    #[test]
    fn train_forward_with_skipnode_differs_from_vanilla() {
        let s = Strategy::SkipNode(SkipNodeConfig::new(0.5, Sampling::Uniform));
        let with = forward_logits(&s, true, 4);
        let without = forward_logits(&Strategy::None, true, 4);
        assert_ne!(with, without);
    }

    #[test]
    fn residual_model_differs_from_plain() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(1);
        let plain = Gcn::new(g.feature_dim(), 16, g.num_classes(), 4, 0.0, &mut rng);
        let mut rng2 = SplitRng::new(1);
        let res = Gcn::residual(g.feature_dim(), 16, g.num_classes(), 4, 0.0, &mut rng2);
        // Same init (same seed), different wiring → different outputs.
        let run = |model: &Gcn| {
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let adj = tape.register_adj(g.gcn_adjacency());
            let x = tape.constant(g.features().clone());
            let degrees = g.degrees();
            let mut rng = SplitRng::new(9);
            let strategy = Strategy::None;
            let mut ctx = ForwardCtx::new(adj, x, &degrees, &strategy, false, &mut rng);
            let out = model.forward(&mut tape, &binding, &mut ctx);
            tape.value(out).clone()
        };
        assert_ne!(run(&plain), run(&res));
        assert_eq!(res.name(), "resgcn");
    }

    #[test]
    #[should_panic(expected = "at least 2 layers")]
    fn single_layer_rejected() {
        let mut rng = SplitRng::new(1);
        let _ = Gcn::new(4, 8, 2, 1, 0.0, &mut rng);
    }
}
