//! The backbone zoo: every model the paper evaluates.
//!
//! | Backbone | Paper ref | Depth knob |
//! |---|---|---|
//! | [`Gcn`] | Kipf & Welling [5] | stacked convolutions |
//! | [`Gcn::residual`] (ResGCN) | [5]+[33] | stacked convolutions + skips |
//! | [`JkNet`] | Xu et al. [6] | convolutions, jumping concat |
//! | [`InceptGcn`] | Kazi et al. [28] | parallel branches up to depth L |
//! | [`Gcnii`] | Chen et al. [9] | initial residual + identity map |
//! | [`Appnp`] | Klicpera et al. [8] | personalized-PageRank steps |
//! | [`GprGnn`] | Chien et al. [7] | learnable propagation weights |
//! | [`Grand`] | Feng et al. [10] | random-propagation order |
//! | [`Sgc`] | Wu et al. [20] | linear propagation hops |
//! | [`Gat`] | Veličković et al. [42] | attention layers (beyond-paper) |

mod appnp;
mod gat;
mod gcn;
mod gcnii;
mod gprgnn;
mod grand;
mod inceptgcn;
mod jknet;
mod sgc;

pub use appnp::Appnp;
pub use gat::Gat;
pub use gcn::Gcn;
pub use gcnii::Gcnii;
pub use gprgnn::GprGnn;
pub use grand::Grand;
pub use inceptgcn::InceptGcn;
pub use jknet::{JkAggregate, JkNet};
pub use sgc::Sgc;

use crate::context::ForwardCtx;
use crate::param::{Binding, ParamStore};
use skipnode_autograd::{NodeId, Tape};

/// Consistency-regularization settings (GRAND's multi-head objective).
#[derive(Debug, Clone, Copy)]
pub struct Consistency {
    /// Weight of the consistency term.
    pub lambda: f64,
    /// Sharpening temperature for the averaged distribution.
    pub temperature: f64,
}

/// A trainable node-level model.
pub trait Model {
    /// Stable identifier used in result tables.
    fn name(&self) -> &'static str;

    /// The parameter store.
    fn store(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Single forward pass producing logits (`n × C`).
    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId;

    /// Multi-head forward (GRAND trains several stochastic heads). The
    /// default is the single [`Model::forward`] head.
    fn forward_heads(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        ctx: &mut ForwardCtx,
    ) -> Vec<NodeId> {
        vec![self.forward(tape, binding, ctx)]
    }

    /// Consistency-regularization settings, if the model trains with them.
    fn consistency(&self) -> Option<Consistency> {
        None
    }
}

/// All backbone names accepted by [`build_by_name`].
pub const BACKBONE_NAMES: [&str; 9] = [
    "gcn",
    "resgcn",
    "jknet",
    "inceptgcn",
    "gcnii",
    "appnp",
    "gprgnn",
    "grand",
    "sgc",
];

/// Build any backbone by its table name with shared depth semantics
/// (stacked convolutions for GCN-family models, propagation steps for
/// APPNP / GPRGNN / GRAND / SGC).
///
/// # Panics
/// Panics on an unknown name — validate against [`BACKBONE_NAMES`] first
/// if the name is user input you want to reject gracefully.
pub fn build_by_name(
    name: &str,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    depth: usize,
    dropout: f64,
    rng: &mut skipnode_tensor::SplitRng,
) -> Box<dyn Model> {
    match name {
        "gcn" => Box::new(Gcn::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(2),
            dropout,
            rng,
        )),
        "resgcn" => Box::new(Gcn::residual(
            in_dim,
            hidden,
            out_dim,
            depth.max(2),
            dropout,
            rng,
        )),
        "jknet" => Box::new(JkNet::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            dropout,
            JkAggregate::Concat,
            rng,
        )),
        "inceptgcn" => Box::new(InceptGcn::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            dropout,
            rng,
        )),
        "gcnii" => Box::new(Gcnii::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            dropout,
            rng,
        )),
        "appnp" => Box::new(Appnp::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            0.1,
            dropout,
            rng,
        )),
        "gprgnn" => Box::new(GprGnn::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            0.1,
            dropout,
            rng,
        )),
        "grand" => Box::new(Grand::new(
            in_dim,
            hidden,
            out_dim,
            depth.max(1),
            2,
            0.5,
            dropout,
            rng,
        )),
        "sgc" => Box::new(Sgc::new(in_dim, out_dim, depth.max(1), dropout, rng)),
        other => panic!("unknown backbone {other}; expected one of {BACKBONE_NAMES:?}"),
    }
}

/// Shared helper: one graph convolution `Ã · h · W + b`.
pub(crate) fn conv(
    tape: &mut Tape,
    ctx: &ForwardCtx,
    binding: &Binding,
    h: NodeId,
    w: crate::param::ParamId,
    b: crate::param::ParamId,
) -> NodeId {
    let p = tape.spmm(ctx.adj, h);
    let z = tape.matmul(p, binding.node(w));
    tape.add_bias(z, binding.node(b))
}

/// Shared helper: one *activated middle layer*
/// `post_conv(relu(Ã · h_in · W + b), h_prev)`.
///
/// When the SkipNode strategy is active and the layer is hidden→hidden,
/// this routes through the fused masked kernel
/// ([`skipnode_autograd::Tape::skip_conv`]): skipped rows copy `h_prev`
/// and never enter the SpMM/GEMM. Every other strategy — and shape-changing
/// layers — takes the unfused op chain, so this helper is a drop-in for the
/// `conv → relu → post_conv` sequence.
pub(crate) fn conv_activated(
    tape: &mut Tape,
    ctx: &mut ForwardCtx,
    binding: &Binding,
    h_in: NodeId,
    h_prev: NodeId,
    w: crate::param::ParamId,
    b: crate::param::ParamId,
) -> NodeId {
    let conv_shape = (tape.shape(h_in).0, tape.shape(binding.node(w)).1);
    let prev_shape = tape.shape(h_prev);
    if let Some(mask) = ctx.fused_skip_mask(conv_shape, prev_shape) {
        return tape.skip_conv(
            ctx.adj,
            h_in,
            h_prev,
            binding.node(w),
            binding.node(b),
            &mask,
        );
    }
    let z = conv(tape, ctx, binding, h_in, w, b);
    let a = tape.relu(z);
    ctx.post_conv(tape, a, h_prev)
}

/// Shared helper: dense `h · W + b`.
pub(crate) fn dense(
    tape: &mut Tape,
    binding: &Binding,
    h: NodeId,
    w: crate::param::ParamId,
    b: crate::param::ParamId,
) -> NodeId {
    let z = tape.matmul(h, binding.node(w));
    tape.add_bias(z, binding.node(b))
}
