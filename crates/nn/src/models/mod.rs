//! The backbone zoo: every model the paper evaluates.
//!
//! | Backbone | Paper ref | Depth knob |
//! |---|---|---|
//! | [`Gcn`] | Kipf & Welling [5] | stacked convolutions |
//! | [`Gcn::residual`] (ResGCN) | [5]+[33] | stacked convolutions + skips |
//! | [`JkNet`] | Xu et al. [6] | convolutions, jumping concat |
//! | [`InceptGcn`] | Kazi et al. [28] | parallel branches up to depth L |
//! | [`Gcnii`] | Chen et al. [9] | initial residual + identity map |
//! | [`Appnp`] | Klicpera et al. [8] | personalized-PageRank steps |
//! | [`GprGnn`] | Chien et al. [7] | learnable propagation weights |
//! | [`Grand`] | Feng et al. [10] | random-propagation order |
//! | [`Sgc`] | Wu et al. [20] | linear propagation hops |
//! | [`Gat`] | Veličković et al. [42] | attention layers (beyond-paper) |

mod appnp;
mod gat;
mod gcn;
mod gcnii;
mod gprgnn;
mod grand;
mod graphcls;
mod inceptgcn;
mod jknet;
mod sgc;

pub use appnp::Appnp;
pub use gat::Gat;
pub use gcn::Gcn;
pub use gcnii::Gcnii;
pub use gprgnn::GprGnn;
pub use grand::Grand;
pub use graphcls::{GraphBackbone, GraphClassifier};
pub use inceptgcn::InceptGcn;
pub use jknet::{JkAggregate, JkNet};
pub use sgc::Sgc;

use crate::context::ForwardCtx;
use crate::param::{Binding, ParamStore};
use crate::plan::{LayerPlan, PlanExecutor};
use skipnode_autograd::{NodeId, Tape};

/// Consistency-regularization settings (GRAND's multi-head objective).
#[derive(Debug, Clone, Copy)]
pub struct Consistency {
    /// Weight of the consistency term.
    pub lambda: f64,
    /// Sharpening temperature for the averaged distribution.
    pub temperature: f64,
}

/// A trainable node-level model.
pub trait Model {
    /// Stable identifier used in result tables.
    fn name(&self) -> &'static str;

    /// The parameter store.
    fn store(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Compile this backbone into the layer-plan IR (see [`crate::plan`]).
    ///
    /// Every paper backbone returns `Some`; strategy injection, dropout
    /// placement, fused-kernel selection, and RNG ordering then live in
    /// the shared [`PlanExecutor`] instead of per-model forward loops.
    /// Bespoke models (GAT's attention aggregation has no plan-op
    /// equivalent) return `None` and override [`Model::forward`] instead.
    fn plan(&self) -> Option<LayerPlan> {
        None
    }

    /// Single forward pass producing logits (`n × C`).
    ///
    /// The default executes [`Model::plan`] through [`PlanExecutor`];
    /// models without a plan must override this.
    fn forward(&self, tape: &mut Tape, binding: &Binding, ctx: &mut ForwardCtx) -> NodeId {
        let mut plan = self.plan().unwrap_or_else(|| {
            panic!(
                "{} provides neither a layer plan nor a forward override",
                self.name()
            )
        });
        // Record the tuner's kernel choices in the IR so the executor (and
        // anything compiled from this tape) runs the chosen variants.
        if let Some(profile) = &ctx.tune {
            plan.tuning = Some(profile.plan_tuning());
        }
        PlanExecutor::run(&plan, tape, binding, ctx)
    }

    /// Multi-head forward (GRAND trains several stochastic heads). The
    /// default is the single [`Model::forward`] head.
    fn forward_heads(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        ctx: &mut ForwardCtx,
    ) -> Vec<NodeId> {
        vec![self.forward(tape, binding, ctx)]
    }

    /// Consistency-regularization settings, if the model trains with them.
    fn consistency(&self) -> Option<Consistency> {
        None
    }
}

/// All backbone names accepted by [`build_by_name`].
pub const BACKBONE_NAMES: [&str; 9] = [
    "gcn",
    "resgcn",
    "jknet",
    "inceptgcn",
    "gcnii",
    "appnp",
    "gprgnn",
    "grand",
    "sgc",
];

/// Why a backbone or strategy could not be built from a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The backbone name is not one of [`BACKBONE_NAMES`].
    UnknownBackbone(String),
    /// The strategy name is not recognized by the caller's parser.
    UnknownStrategy(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownBackbone(name) => {
                write!(
                    f,
                    "unknown backbone {name:?}; expected one of {BACKBONE_NAMES:?}"
                )
            }
            BuildError::UnknownStrategy(name) => {
                write!(f, "unknown strategy {name:?}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Declarative recipe for building any paper backbone by its table name,
/// with shared depth semantics (stacked convolutions for GCN-family
/// models, propagation steps for APPNP / GPRGNN / GRAND / SGC).
#[derive(Debug, Clone)]
pub struct BackboneSpec {
    /// Backbone name (one of [`BACKBONE_NAMES`]).
    pub name: String,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of classes.
    pub out_dim: usize,
    /// Depth knob (clamped per-backbone to its minimum).
    pub depth: usize,
    /// Dropout rate.
    pub dropout: f64,
}

impl BackboneSpec {
    /// New spec.
    pub fn new(
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        depth: usize,
        dropout: f64,
    ) -> Self {
        Self {
            name: name.to_string(),
            in_dim,
            hidden,
            out_dim,
            depth,
            dropout,
        }
    }

    /// Build the backbone, consuming initialization draws from `rng`.
    /// Unknown names return [`BuildError::UnknownBackbone`] instead of
    /// panicking, so CLI and bench binaries can report them gracefully.
    pub fn build(&self, rng: &mut skipnode_tensor::SplitRng) -> Result<Box<dyn Model>, BuildError> {
        let &Self {
            in_dim,
            hidden,
            out_dim,
            depth,
            dropout,
            ..
        } = self;
        Ok(match self.name.as_str() {
            "gcn" => Box::new(Gcn::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(2),
                dropout,
                rng,
            )),
            "resgcn" => Box::new(Gcn::residual(
                in_dim,
                hidden,
                out_dim,
                depth.max(2),
                dropout,
                rng,
            )),
            "jknet" => Box::new(JkNet::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                dropout,
                JkAggregate::Concat,
                rng,
            )),
            "inceptgcn" => Box::new(InceptGcn::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                dropout,
                rng,
            )),
            "gcnii" => Box::new(Gcnii::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                dropout,
                rng,
            )),
            "appnp" => Box::new(Appnp::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                0.1,
                dropout,
                rng,
            )),
            "gprgnn" => Box::new(GprGnn::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                0.1,
                dropout,
                rng,
            )),
            "grand" => Box::new(Grand::new(
                in_dim,
                hidden,
                out_dim,
                depth.max(1),
                2,
                0.5,
                dropout,
                rng,
            )),
            "sgc" => Box::new(Sgc::new(in_dim, out_dim, depth.max(1), dropout, rng)),
            other => return Err(BuildError::UnknownBackbone(other.to_string())),
        })
    }
}

/// Build any backbone by its table name — shorthand for
/// [`BackboneSpec::build`]. Unknown names are an `Err`, not a panic.
pub fn build_by_name(
    name: &str,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    depth: usize,
    dropout: f64,
    rng: &mut skipnode_tensor::SplitRng,
) -> Result<Box<dyn Model>, BuildError> {
    BackboneSpec::new(name, in_dim, hidden, out_dim, depth, dropout).build(rng)
}

/// Shared helper: dense `h · W + b`.
///
/// Graph convolutions and activated middle layers used to have sibling
/// helpers here (`conv`, `conv_activated`); those are superseded by the
/// layer-plan IR — [`crate::plan::PlanOp::Conv`] and
/// [`crate::plan::PlanOp::ActivatedConv`], executed by
/// [`crate::plan::PlanExecutor`], which owns fused-kernel selection for
/// every backbone. This helper remains for bespoke models (GAT) that
/// stay outside the IR.
pub(crate) fn dense(
    tape: &mut Tape,
    binding: &Binding,
    h: NodeId,
    w: crate::param::ParamId,
    b: crate::param::ParamId,
) -> NodeId {
    let z = tape.matmul(h, binding.node(w));
    tape.add_bias(z, binding.node(b))
}
