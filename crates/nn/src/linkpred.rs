//! Link prediction (the Table 5 / ogbl-ppa task).
//!
//! A GCN encoder produces node embeddings; a dot-product decoder scores
//! edges; training is BCE over message-graph positives vs per-epoch random
//! negatives; evaluation is OGB-style Hits@K against a fixed negative set.

use crate::context::{ForwardCtx, Strategy};
use crate::metrics::hits_at_k;
use crate::models::{Gcn, Model};
use crate::optim::{Adam, AdamConfig};
use skipnode_autograd::{bce_with_logits, Tape};
use skipnode_graph::{Graph, LinkSplit};
use skipnode_sparse::gcn_adjacency;
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::Arc;

/// Link-prediction training configuration.
#[derive(Debug, Clone)]
pub struct LinkPredConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Encoder hidden width (also the embedding width).
    pub hidden: usize,
    /// Encoder depth (number of GCN layers).
    pub layers: usize,
    /// Encoder dropout.
    pub dropout: f64,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Negatives sampled per positive each epoch.
    pub neg_per_pos: usize,
}

impl Default for LinkPredConfig {
    fn default() -> Self {
        Self {
            epochs: 80,
            hidden: 64,
            layers: 4,
            dropout: 0.2,
            adam: AdamConfig {
                lr: 0.01,
                weight_decay: 0.0,
                ..Default::default()
            },
            neg_per_pos: 1,
        }
    }
}

/// Hits@K results on the held-out test edges.
#[derive(Debug, Clone)]
pub struct LinkPredResult {
    /// Hits@10.
    pub hits_at_10: f64,
    /// Hits@50.
    pub hits_at_50: f64,
    /// Hits@100.
    pub hits_at_100: f64,
    /// Final training loss.
    pub final_loss: f64,
}

/// Train a GCN link predictor on the split's message graph and evaluate
/// Hits@K on the held-out test edges.
pub fn train_link_predictor(
    graph: &Graph,
    split: &LinkSplit,
    strategy: &Strategy,
    cfg: &LinkPredConfig,
    rng: &mut SplitRng,
) -> LinkPredResult {
    let n = graph.num_nodes();
    // The encoder must never see held-out edges: build the message graph.
    let train_graph = Graph::new(
        n,
        split.message_edges.clone(),
        graph.features().clone(),
        graph.labels().to_vec(),
        graph.num_classes(),
    );
    let full_adj = Arc::new(gcn_adjacency(n, &split.message_edges));
    let degrees = train_graph.degrees();
    let mut encoder = Gcn::new(
        graph.feature_dim(),
        cfg.hidden,
        cfg.hidden,
        cfg.layers,
        cfg.dropout,
        rng,
    );
    let mut opt = Adam::new(encoder.store(), cfg.adam);
    let mut final_loss = f64::NAN;

    for _ in 0..cfg.epochs {
        let adj = strategy.epoch_adjacency(&train_graph, &full_adj, true, rng);
        let mut tape = Tape::new();
        let binding = encoder.store().bind(&mut tape);
        let adj_id = tape.register_adj(adj);
        let x = tape.constant_shared(train_graph.features_arc());
        let mut fwd_rng = rng.split();
        let mut ctx = ForwardCtx::new(adj_id, x, &degrees, strategy, true, &mut fwd_rng);
        let h = encoder.forward(&mut tape, &binding, &mut ctx);

        // Batch: all positives + fresh random negatives.
        let mut batch = split.train_pos.clone();
        let mut targets = vec![1.0f32; batch.len()];
        let neg_count = batch.len() * cfg.neg_per_pos;
        for _ in 0..neg_count {
            let u = rng.below(n);
            let v = rng.below(n);
            if u == v {
                continue;
            }
            batch.push((u, v));
            targets.push(0.0);
        }
        let scores = tape.edge_score(h, &batch);
        let out = bce_with_logits(tape.value(scores), &targets);
        final_loss = out.loss;
        let grads = tape.backward(scores, out.grad);
        let param_grads: Vec<Option<Matrix>> = {
            let mut grads = grads;
            binding.nodes().iter().map(|&nid| grads.take(nid)).collect()
        };
        opt.step(encoder.store_mut(), &param_grads);
    }

    // Evaluation embeddings from the message graph, deterministic, on a
    // no-grad inference tape (intermediates recycle at their last use).
    let mut tape = Tape::inference();
    let binding = encoder.store().bind(&mut tape);
    let adj_id = tape.register_adj(Arc::clone(&full_adj));
    let x = tape.constant_shared(train_graph.features_arc());
    let mut eval_rng = rng.split();
    let mut ctx = ForwardCtx::new(adj_id, x, &degrees, strategy, false, &mut eval_rng);
    let h = encoder.forward(&mut tape, &binding, &mut ctx);
    tape.run(&[h]);
    let emb = tape.value(h);

    let score = |edges: &[(usize, usize)]| -> Vec<f32> {
        edges
            .iter()
            .map(|&(u, v)| {
                emb.row(u)
                    .iter()
                    .zip(emb.row(v))
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect()
    };
    let pos = score(&split.test_pos);
    let neg = score(&split.eval_neg);
    LinkPredResult {
        hits_at_10: hits_at_k(&pos, &neg, 10),
        hits_at_50: hits_at_k(&pos, &neg, 50),
        hits_at_100: hits_at_k(&pos, &neg, 100),
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_graph::link_split;

    #[test]
    fn link_predictor_beats_random_on_community_graph() {
        // Dot-product decoders latch onto community structure; use a dense
        // homophilic partition graph rather than the sparse WebKB ones.
        let mut rng = SplitRng::new(1);
        let cfg_g = skipnode_graph::PartitionConfig {
            n: 400,
            m: 3000,
            classes: 5,
            homophily: 0.9,
            power: 0.2,
        };
        let g = skipnode_graph::partition_graph(
            &cfg_g,
            64,
            skipnode_graph::FeatureStyle::BinaryBagOfWords {
                active: 12,
                fidelity: 0.9,
                confusion: 0.0,
            },
            &mut rng,
        );
        let split = link_split(&g, 500, &mut rng);
        let cfg = LinkPredConfig {
            epochs: 40,
            hidden: 16,
            layers: 2,
            ..Default::default()
        };
        let result = train_link_predictor(&g, &split, &Strategy::None, &cfg, &mut rng);
        assert!(result.final_loss.is_finite());
        // With 500 negatives, random ranking gives Hits@100 ≈ 0.2 in
        // expectation; the trained model should do much better.
        assert!(
            result.hits_at_100 > 0.25,
            "hits@100 = {}",
            result.hits_at_100
        );
        assert!(result.hits_at_10 <= result.hits_at_50);
        assert!(result.hits_at_50 <= result.hits_at_100);
    }
}
