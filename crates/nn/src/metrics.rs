//! Evaluation metrics: accuracy, MAD, and Hits@K.

use skipnode_tensor::{cosine_distance_rows, Matrix};

/// Classification accuracy over the rows listed in `idx`.
pub fn accuracy(logits: &Matrix, labels: &[usize], idx: &[usize]) -> f64 {
    assert!(!idx.is_empty(), "accuracy over empty index set");
    let mut correct = 0usize;
    for &i in idx {
        let row = logits.row(i);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
            .map(|(j, _)| j)
            .expect("empty logit row");
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / idx.len() as f64
}

/// MAD [17]: the mean over nodes of the average cosine distance from each
/// node to its neighbors. Zero means fully over-smoothed features (paper
/// Figures 2(a) and 5(b)). Nodes without neighbors are skipped.
pub fn mean_average_distance(features: &Matrix, adjacency: &[Vec<usize>]) -> f64 {
    assert_eq!(
        features.rows(),
        adjacency.len(),
        "one adjacency row per node"
    );
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for (i, neigh) in adjacency.iter().enumerate() {
        if neigh.is_empty() {
            continue;
        }
        let mut acc = 0.0f64;
        for &j in neigh {
            acc += cosine_distance_rows(features, i, features, j);
        }
        total += acc / neigh.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Hits@K (the OGB link-prediction protocol): the fraction of positive
/// scores that rank strictly above the K-th highest negative score.
pub fn hits_at_k(pos_scores: &[f32], neg_scores: &[f32], k: usize) -> f64 {
    assert!(k >= 1, "K must be positive");
    if pos_scores.is_empty() {
        return 0.0;
    }
    if neg_scores.len() < k {
        // Fewer than K negatives: every positive trivially ranks in top K.
        return 1.0;
    }
    let mut neg = neg_scores.to_vec();
    neg.sort_by(|a, b| b.partial_cmp(a).expect("NaN score"));
    let threshold = neg[k - 1];
    let hits = pos_scores.iter().filter(|&&s| s > threshold).count();
    hits as f64 / pos_scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 4.0]]);
        let labels = [0usize, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &labels, &[0, 1]), 1.0);
    }

    #[test]
    fn mad_zero_for_identical_features() {
        let f = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert!(mean_average_distance(&f, &adj) < 1e-7);
    }

    #[test]
    fn mad_positive_for_diverse_features() {
        let f = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let adj = vec![vec![1], vec![0]];
        assert!((mean_average_distance(&f, &adj) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn mad_skips_isolated_nodes() {
        let f = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[9.0, 9.0]]);
        let adj = vec![vec![1], vec![0], vec![]];
        assert!((mean_average_distance(&f, &adj) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn mad_zero_for_collapsed_zero_features() {
        // The over-smoothed fixed point: all-zero features → MAD 0.
        let f = Matrix::zeros(3, 4);
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(mean_average_distance(&f, &adj), 0.0);
    }

    #[test]
    fn hits_at_k_basic_ranking() {
        let pos = [0.9f32, 0.5, 0.1];
        let neg = [0.8f32, 0.6, 0.4, 0.2];
        // K=1: threshold 0.8 → only 0.9 counts.
        assert!((hits_at_k(&pos, &neg, 1) - 1.0 / 3.0).abs() < 1e-9);
        // K=3: threshold 0.4 → 0.9 and 0.5 count.
        assert!((hits_at_k(&pos, &neg, 3) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hits_at_k_with_few_negatives_is_one() {
        assert_eq!(hits_at_k(&[0.0], &[1.0], 10), 1.0);
    }

    #[test]
    fn hits_at_k_perfect_separation() {
        let pos = [1.0f32, 0.9];
        let neg = [0.1f32, 0.2, 0.05];
        assert_eq!(hits_at_k(&pos, &neg, 1), 1.0);
    }
}
