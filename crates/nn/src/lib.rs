#![warn(missing_docs)]

//! GNN layers, backbones, plug-and-play strategies, optimization, and
//! training harnesses for the SkipNode reproduction.
//!
//! The crate provides every backbone the paper evaluates — GCN, ResGCN,
//! JKNet, InceptGCN, GCNII, APPNP, GPRGNN, and GRAND — behind one [`Model`]
//! trait, and every plug-and-play strategy — DropEdge, DropNode, PairNorm,
//! and SkipNode — behind one [`Strategy`] enum, so any (backbone, strategy)
//! pair from Tables 3–8 is a two-liner:
//!
//! ```no_run
//! use skipnode_graph::{load, semi_supervised_split, DatasetName, Scale};
//! use skipnode_nn::{models::Gcn, train_node_classifier, Strategy, TrainConfig};
//! use skipnode_core::{Sampling, SkipNodeConfig};
//! use skipnode_tensor::SplitRng;
//!
//! let mut rng = SplitRng::new(7);
//! let graph = load(DatasetName::Cora, Scale::Bench, 7);
//! let split = semi_supervised_split(&graph, &mut rng);
//! let mut model = Gcn::new(graph.feature_dim(), 64, graph.num_classes(), 8, 0.5, &mut rng);
//! let strategy = Strategy::SkipNode(SkipNodeConfig::new(0.5, Sampling::Uniform));
//! let result = train_node_classifier(
//!     &mut model, &graph, &split, &strategy, &TrainConfig::default(), &mut rng);
//! println!("test accuracy: {:.3}", result.test_accuracy);
//! ```

pub mod autotune;
mod checkpoint;
mod context;
mod diagnostics;
mod energy;
pub mod engine;
mod linkpred;
mod metrics;
mod minibatch;
pub mod models;
mod optim;
mod param;
pub mod plan;
mod schedule;
mod trainer;

pub use checkpoint::{
    load_checkpoint, read_checkpoint, save_checkpoint, write_checkpoint, ModelCheckpoint,
};
pub use context::{ForwardCtx, Strategy};
pub use diagnostics::{DiagnosticsRecorder, EpochDiagnostics};
pub use energy::dirichlet_energy;
pub use engine::{
    compile_train_program, compile_train_program_packed, EngineError, StrategySampler,
};
pub use linkpred::{train_link_predictor, LinkPredConfig, LinkPredResult};
pub use metrics::{accuracy, hits_at_k, mean_average_distance};
pub use minibatch::{
    train_node_classifier_minibatch, train_node_classifier_sharded_large, BatchScheme,
    MiniBatchConfig,
};
pub use models::{BackboneSpec, BuildError, Model};
pub use optim::{Adam, AdamConfig};
pub use param::{Binding, LayerInit, ParamId, ParamStore};
pub use plan::{LayerPlan, PlanBuilder, PlanExecutor, PlanOp, PlanTuning, Reg};
pub use schedule::{clip_global_norm, LrSchedule};
pub use trainer::{
    evaluate, evaluate_packed, evaluate_quantized, train_graph_classifier, train_node_classifier,
    train_packed_node_classifier, TrainConfig, TrainEngine, TrainResult,
};
