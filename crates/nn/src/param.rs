//! Persistent parameter storage.
//!
//! Parameters outlive the per-epoch [`Tape`]: each forward pass *binds*
//! the store onto a fresh tape (copying values in as trainable leaves) and
//! the optimizer reads gradients back out by [`ParamId`].

use skipnode_autograd::{NodeId, Tape};
use skipnode_tensor::{glorot_uniform, Matrix, SplitRng};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct Param {
    name: String,
    value: Matrix,
}

/// Named trainable parameters for one model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param {
            name: name.into(),
            value,
        });
        id
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Parameter value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable parameter value (optimizer update path).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// All ids in registration order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// All values in registration order — the order [`ParamStore::bind`]
    /// copies them onto a tape, and the order
    /// [`skipnode_autograd::TrainProgram::load_params`] expects.
    pub fn values(&self) -> impl Iterator<Item = &Matrix> {
        self.params.iter().map(|p| &p.value)
    }

    /// Sum of squared L2 norms of all parameters — the Σ‖W‖₂² statistic the
    /// Figure 2(c) weight-over-decay diagnostic tracks.
    pub fn total_l2_norm_sq(&self) -> f64 {
        self.params
            .iter()
            .map(|p| skipnode_tensor::l2_norm_sq(&p.value))
            .sum()
    }

    /// Copy every parameter onto a tape as a trainable leaf.
    pub fn bind(&self, tape: &mut Tape) -> Binding {
        Binding {
            nodes: self
                .params
                .iter()
                .map(|p| tape.param(p.value.clone()))
                .collect(),
        }
    }
}

/// Glorot layer registration, deduplicating the per-model `w`/`b` dance.
///
/// Every backbone used to repeat
/// `store.add(name_w, glorot_uniform(fi, fo, rng)); store.add(name_b,
/// Matrix::zeros(1, fo))` by hand. `LayerInit` wraps one store and one
/// RNG so constructors register layers in a single call — with the exact
/// same parameter names and RNG draw order as before (one Glorot draw per
/// weight, in registration order), so checkpoints and seeded inits stay
/// byte-compatible.
pub struct LayerInit<'a> {
    store: &'a mut ParamStore,
    rng: &'a mut SplitRng,
}

impl<'a> LayerInit<'a> {
    /// Wrap a store and the initialization RNG.
    pub fn new(store: &'a mut ParamStore, rng: &'a mut SplitRng) -> Self {
        Self { store, rng }
    }

    /// Register a Glorot-initialized `fi × fo` weight plus its zero
    /// `1 × fo` bias.
    pub fn linear(
        &mut self,
        w_name: impl Into<String>,
        b_name: impl Into<String>,
        fi: usize,
        fo: usize,
    ) -> (ParamId, ParamId) {
        let w = self.weight(w_name, fi, fo);
        let b = self.store.add(b_name, Matrix::zeros(1, fo));
        (w, b)
    }

    /// Register a bias-free Glorot-initialized `fi × fo` weight (GCNII's
    /// middle blocks).
    pub fn weight(&mut self, name: impl Into<String>, fi: usize, fo: usize) -> ParamId {
        self.store.add(name, glorot_uniform(fi, fo, self.rng))
    }
}

/// The tape nodes a [`ParamStore`] was bound to for one forward pass.
pub struct Binding {
    nodes: Vec<NodeId>,
}

impl Binding {
    /// Tape node for a parameter.
    pub fn node(&self, id: ParamId) -> NodeId {
        self.nodes[id.0]
    }

    /// All bound nodes in registration order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::eye(2));
        assert_eq!(store.value(w), &Matrix::eye(2));
        assert_eq!(store.name(w), "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.scalar_count(), 4);
    }

    #[test]
    fn total_norm_tracks_values() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::from_rows(&[&[3.0]]));
        store.add("b", Matrix::from_rows(&[&[4.0]]));
        assert_eq!(store.total_l2_norm_sq(), 25.0);
    }

    #[test]
    fn bind_copies_values_onto_tape() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_rows(&[&[1.5, -2.0]]));
        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);
        assert_eq!(tape.value(binding.node(w)), store.value(w));
        assert!(tape.requires_grad(binding.node(w)));
    }
}
