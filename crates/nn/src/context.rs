//! Plug-and-play strategies and the per-forward context.

use skipnode_autograd::{AdjId, NodeId, Tape};
use skipnode_core::SkipNodeConfig;
use skipnode_graph::{Graph, Reordering};
use skipnode_sparse::{gcn_adjacency_filtered, gcn_adjacency_with_node_mask, CsrMatrix};
use skipnode_tensor::{SegmentTable, SplitRng};
use std::sync::Arc;

/// Draw a per-node skip mask, covariant with a cache-locality reordering.
///
/// Without an order this is a plain [`SkipNodeConfig::sample_mask`]. With
/// one, the draw happens in *logical* (original-id) order against logical
/// degrees, then permutes into physical order — so a reordered training
/// run consumes the identical RNG stream and skips the identical logical
/// nodes as the unreordered run (the reorder round-trip tests pin this).
pub(crate) fn sample_skip_mask(
    cfg: &SkipNodeConfig,
    degrees: &[usize],
    order: Option<&Reordering>,
    rng: &mut SplitRng,
) -> Vec<bool> {
    match order {
        None => cfg.sample_mask(degrees, rng),
        Some(ord) => {
            let n = degrees.len();
            let logical_deg: Vec<usize> = (0..n).map(|o| degrees[ord.inv[o]]).collect();
            let logical = cfg.sample_mask(&logical_deg, rng);
            (0..n).map(|j| logical[ord.perm[j]]).collect()
        }
    }
}

/// Segment-aware skip-mask draw for packed multi-graph batches: one
/// independent draw per graph, in segment (= logical row) order, so the
/// skip rate and degree-biased weighting are computed *within* each graph
/// rather than across the union.
///
/// RNG-parity rule: segments are contiguous and ordered, so a 1-segment
/// batch makes exactly one [`SkipNodeConfig::sample_mask`] call over the
/// full degree slice — the identical call, consuming the identical stream,
/// as the single-graph path. The packed-identity tests pin this bitwise.
pub(crate) fn sample_skip_mask_segmented(
    cfg: &SkipNodeConfig,
    degrees: &[usize],
    order: Option<&Reordering>,
    segments: Option<&SegmentTable>,
    rng: &mut SplitRng,
) -> Vec<bool> {
    match segments {
        None => sample_skip_mask(cfg, degrees, order, rng),
        Some(seg) => {
            assert!(
                order.is_none(),
                "cache-locality reordering does not compose with packed batches"
            );
            assert_eq!(seg.total_rows(), degrees.len(), "segment table mismatch");
            let mut mask = Vec::with_capacity(degrees.len());
            for s in 0..seg.num_segments() {
                mask.extend(cfg.sample_mask(&degrees[seg.range(s)], rng));
            }
            mask
        }
    }
}

/// The plug-and-play strategies compared throughout the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Plain backbone.
    None,
    /// DropEdge [25]: delete a fraction of edges each epoch and
    /// renormalize the adjacency.
    DropEdge {
        /// Fraction of edges removed.
        rate: f64,
    },
    /// DropNode [34]: remove a fraction of nodes (and incident edges) from
    /// the propagation graph each epoch; removed nodes get zero rows.
    DropNode {
        /// Fraction of nodes removed.
        rate: f64,
    },
    /// PairNorm [22]: center-and-scale normalization after each middle
    /// convolution (active at train *and* eval — it is architectural).
    PairNorm {
        /// Target row-norm scale `s`.
        scale: f32,
    },
    /// SkipNode (this paper): sampled nodes skip each middle convolution
    /// during training.
    SkipNode(SkipNodeConfig),
    /// Ablation variant: the skip mask is also sampled at evaluation time
    /// (the paper keeps SkipNode train-only; `ablation_eval_mode` measures
    /// why).
    SkipNodeTrainEval(SkipNodeConfig),
}

impl Strategy {
    /// Short label used in result tables.
    pub fn label(&self) -> String {
        match self {
            Strategy::None => "-".into(),
            Strategy::DropEdge { rate } => format!("DropEdge({rate})"),
            Strategy::DropNode { rate } => format!("DropNode({rate})"),
            Strategy::PairNorm { scale } => format!("PairNorm({scale})"),
            Strategy::SkipNodeTrainEval(cfg) => format!("SkipNode-eval({})", cfg.rate()),
            Strategy::SkipNode(cfg) => format!(
                "SkipNode-{}({})",
                match cfg.sampling() {
                    skipnode_core::Sampling::Uniform => "U",
                    skipnode_core::Sampling::Biased => "B",
                    skipnode_core::Sampling::InverseBiased => "I",
                    skipnode_core::Sampling::TopDegree => "T",
                },
                cfg.rate()
            ),
        }
    }

    /// The propagation matrix for one epoch. Graph-modifying strategies
    /// (DropEdge, DropNode) resample and renormalize during training;
    /// everything else — and all evaluation — uses the cached full `Ã`.
    pub fn epoch_adjacency(
        &self,
        graph: &Graph,
        full: &Arc<CsrMatrix>,
        train: bool,
        rng: &mut SplitRng,
    ) -> Arc<CsrMatrix> {
        self.epoch_adjacency_edges(graph.num_nodes(), graph.edges(), full, train, rng)
    }

    /// [`Strategy::epoch_adjacency`] over a raw `(n, edges)` pair, so
    /// packed multi-graph batches ([`skipnode_graph::GraphBatch`]) resample
    /// with the identical logic and RNG consumption as a single graph.
    /// Connected components never span pack boundaries, so the resampled
    /// normalization stays block-diagonal.
    pub fn epoch_adjacency_edges(
        &self,
        n: usize,
        edges: &[(usize, usize)],
        full: &Arc<CsrMatrix>,
        train: bool,
        rng: &mut SplitRng,
    ) -> Arc<CsrMatrix> {
        if !train {
            return Arc::clone(full);
        }
        match self {
            Strategy::DropEdge { rate } => {
                let kept = edges.iter().copied().filter(|_| !rng.bernoulli(*rate));
                Arc::new(gcn_adjacency_filtered(n, kept))
            }
            Strategy::DropNode { rate } => {
                let keep: Vec<bool> = (0..n).map(|_| !rng.bernoulli(*rate)).collect();
                Arc::new(gcn_adjacency_with_node_mask(n, edges, &keep))
            }
            _ => Arc::clone(full),
        }
    }
}

/// Per-forward-pass context handed to every model.
pub struct ForwardCtx<'a> {
    /// The epoch's propagation matrix, already registered on the tape.
    pub adj: AdjId,
    /// Input features on the tape.
    pub x: NodeId,
    /// Node degrees (drives SkipNode's biased sampler).
    pub degrees: &'a [usize],
    /// Strategy in effect.
    pub strategy: &'a Strategy,
    /// Training (true) vs evaluation (false) semantics.
    pub train: bool,
    /// RNG for dropout and mask sampling.
    pub rng: &'a mut SplitRng,
    /// Set by models: the representation before the classification layer
    /// (the MAD metric of Figures 2(a) and 5(b) reads it).
    pub penultimate: Option<NodeId>,
    /// Route SkipNode middle layers through the fused masked kernel
    /// ([`Tape::skip_conv`]) when applicable. On by default; benchmarks
    /// flip it off to A/B against the unfused op chain. Both paths produce
    /// bit-identical outputs and draw identically from `rng`.
    pub fuse: bool,
    /// Auto-tuner profile in effect (see [`crate::autotune`]); plan-driven
    /// forwards annotate their [`crate::plan::LayerPlan`] from it so the
    /// executor runs the chosen kernel variants. `None` means process
    /// defaults.
    pub tune: Option<Arc<crate::autotune::TuneProfile>>,
    /// Cache-locality reordering of the graph this forward runs on (from
    /// [`Graph::node_order`]). Skip masks are then sampled in logical
    /// order so reordered runs stay RNG-identical to unreordered ones.
    pub node_order: Option<&'a Reordering>,
    /// Per-graph row ranges when this forward runs over a packed
    /// multi-graph batch ([`skipnode_graph::GraphBatch`]). Skip masks are
    /// then drawn per segment (see [`sample_skip_mask_segmented`]); `None`
    /// means single-graph semantics.
    pub segments: Option<&'a Arc<SegmentTable>>,
}

impl<'a> ForwardCtx<'a> {
    /// Create a context.
    pub fn new(
        adj: AdjId,
        x: NodeId,
        degrees: &'a [usize],
        strategy: &'a Strategy,
        train: bool,
        rng: &'a mut SplitRng,
    ) -> Self {
        Self {
            adj,
            x,
            degrees,
            strategy,
            train,
            rng,
            penultimate: None,
            fuse: true,
            tune: crate::autotune::active_profile(),
            node_order: None,
            segments: None,
        }
    }

    /// When the fused SkipNode kernel applies to a middle layer whose conv
    /// output has shape `conv_shape` and whose skip branch has shape
    /// `prev_shape`, sample and return the skip mask; `None` means the
    /// caller must use the unfused `conv → relu → post_conv` chain.
    ///
    /// The mask is drawn at exactly the point [`ForwardCtx::post_conv`]
    /// would draw it (after the shape-compatibility check), so fused and
    /// unfused forwards consume identical RNG streams.
    pub fn fused_skip_mask(
        &mut self,
        conv_shape: (usize, usize),
        prev_shape: (usize, usize),
    ) -> Option<Vec<bool>> {
        if !self.fuse {
            return None;
        }
        let cfg = match self.strategy {
            Strategy::SkipNode(cfg) if self.train => cfg,
            Strategy::SkipNodeTrainEval(cfg) => cfg,
            _ => return None,
        };
        if conv_shape != prev_shape {
            return None;
        }
        Some(sample_skip_mask_segmented(
            cfg,
            self.degrees,
            self.node_order,
            self.segments.map(Arc::as_ref),
            self.rng,
        ))
    }

    /// Post-convolution hook for *middle* layers: applies PairNorm
    /// (always) or the SkipNode row-combine against the layer input
    /// (training only). `h_act` and `h_prev` must share a shape for
    /// SkipNode to engage.
    pub fn post_conv(&mut self, tape: &mut Tape, h_act: NodeId, h_prev: NodeId) -> NodeId {
        match self.strategy {
            Strategy::PairNorm { scale } => tape.pairnorm(h_act, *scale),
            Strategy::SkipNode(cfg) if self.train => {
                if tape.shape(h_act) != tape.shape(h_prev) {
                    return h_act;
                }
                let mask = sample_skip_mask_segmented(
                    cfg,
                    self.degrees,
                    self.node_order,
                    self.segments.map(Arc::as_ref),
                    self.rng,
                );
                tape.row_combine(h_act, h_prev, &mask)
            }
            Strategy::SkipNodeTrainEval(cfg) => {
                if tape.shape(h_act) != tape.shape(h_prev) {
                    return h_act;
                }
                let mask = sample_skip_mask_segmented(
                    cfg,
                    self.degrees,
                    self.node_order,
                    self.segments.map(Arc::as_ref),
                    self.rng,
                );
                tape.row_combine(h_act, h_prev, &mask)
            }
            _ => h_act,
        }
    }

    /// Training-time dropout (identity at eval or rate 0).
    pub fn dropout(&mut self, tape: &mut Tape, h: NodeId, rate: f64) -> NodeId {
        if self.train && rate > 0.0 {
            tape.dropout(h, rate, self.rng)
        } else {
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_graph::{load, DatasetName, Scale};

    fn cornell() -> Graph {
        load(DatasetName::Cornell, Scale::Bench, 7)
    }

    #[test]
    fn eval_always_uses_full_adjacency() {
        let g = cornell();
        let full = g.gcn_adjacency();
        let mut rng = SplitRng::new(1);
        let s = Strategy::DropEdge { rate: 0.9 };
        let adj = s.epoch_adjacency(&g, &full, false, &mut rng);
        assert!(Arc::ptr_eq(&adj, &full));
    }

    #[test]
    fn dropedge_removes_edges_at_train_time() {
        let g = cornell();
        let full = g.gcn_adjacency();
        let mut rng = SplitRng::new(2);
        let s = Strategy::DropEdge { rate: 0.5 };
        let adj = s.epoch_adjacency(&g, &full, true, &mut rng);
        assert!(adj.nnz() < full.nnz(), "{} vs {}", adj.nnz(), full.nnz());
        // Still symmetric and renormalized.
        assert!(adj.is_symmetric(1e-6));
    }

    #[test]
    fn dropnode_zeroes_dropped_rows() {
        let g = cornell();
        let full = g.gcn_adjacency();
        let mut rng = SplitRng::new(3);
        let s = Strategy::DropNode { rate: 0.5 };
        let adj = s.epoch_adjacency(&g, &full, true, &mut rng);
        let empty_rows = (0..g.num_nodes()).filter(|&r| adj.row_nnz(r) == 0).count();
        let frac = empty_rows as f64 / g.num_nodes() as f64;
        assert!((frac - 0.5).abs() < 0.15, "empty fraction {frac}");
    }

    #[test]
    fn non_graph_strategies_reuse_full_adjacency() {
        let g = cornell();
        let full = g.gcn_adjacency();
        let mut rng = SplitRng::new(4);
        for s in [
            Strategy::None,
            Strategy::PairNorm { scale: 1.0 },
            Strategy::SkipNode(SkipNodeConfig::new(0.5, skipnode_core::Sampling::Uniform)),
        ] {
            let adj = s.epoch_adjacency(&g, &full, true, &mut rng);
            assert!(Arc::ptr_eq(&adj, &full), "{}", s.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::None.label(), "-");
        assert_eq!(Strategy::DropEdge { rate: 0.3 }.label(), "DropEdge(0.3)");
        let s = Strategy::SkipNode(SkipNodeConfig::new(0.5, skipnode_core::Sampling::Biased));
        assert_eq!(s.label(), "SkipNode-B(0.5)");
    }
}
