//! Sharded mini-batch training for graphs that don't fit a full-batch
//! forward pass.
//!
//! Two batch schemes, following the two classic scalable-GCN recipes:
//!
//! - [`BatchScheme::ClusterShards`] (Cluster-GCN): partition the graph
//!   once into degree-balanced [`SubgraphShard`]s (see
//!   `skipnode_graph::ShardSet`), cache each shard's induced normalized
//!   adjacency, and compile **one [`TrainProgram`] per shard** that every
//!   epoch replays with the PR 5 liveness engine — fused SkipNode kernels
//!   and the auto-tuner profile included. Cut edges are dropped; that is
//!   the documented Cluster-GCN trade-off, quantified by
//!   `ShardSet::cut_edges`.
//! - [`BatchScheme::NeighborSampling`] (GraphSAGE): per batch of seed
//!   training nodes, sample a bounded-fanout neighborhood (halo nodes
//!   re-imported, unlike the cluster scheme) and run an eager forward on
//!   the induced subgraph — shapes change per batch, so there is nothing
//!   to compile.
//!
//! Reproducibility contract: shard *visit order* is shuffled from a seed
//! derived from `(shuffle_seed, epoch)` — never from the main RNG — so
//! the main stream sees exactly one `epoch_adjacency` + one `split()` per
//! trained shard, in visit order, plus the evaluation `split()`s. With a
//! single shard this is precisely [`train_node_classifier`]'s stream, and
//! `tests/shard_identity.rs` pins the two trainers bit-identical.

use crate::context::Strategy;
use crate::diagnostics::{DiagnosticsRecorder, EpochDiagnostics};
use crate::engine::{compile_train_program, EngineError, StrategySampler};
use crate::metrics::accuracy;
use crate::models::Model;
use crate::optim::Adam;
use crate::schedule::clip_global_norm;
use crate::trainer::{build_seeds, evaluate, TrainConfig, TrainEngine, TrainResult};
use skipnode_autograd::{Tape, TrainProgram};
use skipnode_graph::{Graph, LargeGraph, ShardSet, Split, SubgraphShard};
use skipnode_tensor::{kstats, workspace, Matrix, SplitRng};

/// How training nodes are batched per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchScheme {
    /// Cluster-GCN: `shards` cached induced subgraphs, one optimizer step
    /// per shard per epoch. `shards = 1` degenerates to full batch.
    ClusterShards {
        /// Number of partitions (≥ 1).
        shards: usize,
    },
    /// GraphSAGE-style neighbor sampling: batches of `batch_size` seed
    /// training nodes expanded through `hops` rounds of ≤ `fanout`
    /// sampled neighbors each; loss on the seeds only.
    NeighborSampling {
        /// Seed nodes per batch.
        batch_size: usize,
        /// Maximum sampled neighbors per node per hop.
        fanout: usize,
        /// Expansion rounds (usually the model depth − 1).
        hops: usize,
    },
}

/// Mini-batch settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiniBatchConfig {
    /// Batching scheme.
    pub scheme: BatchScheme,
    /// Seed for the per-epoch shard-order shuffle. Kept separate from the
    /// training RNG so batching order never perturbs the main stream.
    pub shuffle_seed: u64,
}

impl MiniBatchConfig {
    /// Cluster-GCN sharding with `shards` parts.
    pub fn cluster(shards: usize) -> Self {
        Self {
            scheme: BatchScheme::ClusterShards { shards },
            shuffle_seed: 0x5a5a_1d0f,
        }
    }

    /// Neighbor sampling with the given batch size, fanout, and hops.
    pub fn neighbor_sampling(batch_size: usize, fanout: usize, hops: usize) -> Self {
        Self {
            scheme: BatchScheme::NeighborSampling {
                batch_size,
                fanout,
                hops,
            },
            shuffle_seed: 0x5a5a_1d0f,
        }
    }
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self::cluster(4)
    }
}

/// Index-derived, byte-reproducible shard visit order for one epoch.
fn epoch_shard_order(shards: usize, shuffle_seed: u64, epoch: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards).collect();
    let mut rng =
        SplitRng::new(shuffle_seed ^ (epoch as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    rng.shuffle(&mut order);
    order
}

/// Train with mini-batches on an in-memory [`Graph`]; evaluation stays
/// full-batch (exact), which is what makes the 1-shard cluster run
/// bit-identical to [`train_node_classifier`].
pub fn train_node_classifier_minibatch(
    model: &mut dyn Model,
    graph: &Graph,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    split.validate(graph.num_nodes());
    match mb.scheme {
        BatchScheme::ClusterShards { shards } => {
            assert!(shards >= 1, "need at least one shard");
            let set = ShardSet::from_graph(graph, split, shards);
            train_over_shards(
                model,
                &set,
                FullEval::Exact { graph, split },
                strategy,
                cfg,
                mb.shuffle_seed,
                rng,
            )
        }
        BatchScheme::NeighborSampling { .. } => {
            train_neighbor_sampled(model, graph, split, strategy, cfg, mb, rng)
        }
    }
}

/// Train on a streamed [`LargeGraph`] via cached cluster shards. The
/// graph never sees a full-batch forward: evaluation aggregates per-shard
/// inference passes (cut edges are ignored at eval too — the same
/// approximation Cluster-GCN reports).
pub fn train_node_classifier_sharded_large(
    model: &mut dyn Model,
    graph: &LargeGraph,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    let shards = match mb.scheme {
        BatchScheme::ClusterShards { shards } => shards.max(1),
        BatchScheme::NeighborSampling { .. } => {
            panic!("neighbor sampling on LargeGraph is not supported; use cluster shards")
        }
    };
    let set = ShardSet::from_large(graph, split, shards);
    train_over_shards(
        model,
        &set,
        FullEval::PerShard,
        strategy,
        cfg,
        mb.shuffle_seed,
        rng,
    )
}

/// How evaluation epochs run.
enum FullEval<'a> {
    /// Exact full-graph inference (in-memory graphs).
    Exact { graph: &'a Graph, split: &'a Split },
    /// Shard-local inference aggregated over shards (large graphs).
    PerShard,
}

/// The shared shard-replay training loop.
fn train_over_shards(
    model: &mut dyn Model,
    set: &ShardSet,
    eval_mode: FullEval<'_>,
    strategy: &Strategy,
    cfg: &TrainConfig,
    shuffle_seed: u64,
    rng: &mut SplitRng,
) -> TrainResult {
    let k = set.shards.len();
    let train_total: usize = set.shards.iter().map(|s| s.local_split.train.len()).sum();
    assert!(train_total > 0, "no training nodes in any shard");

    if crate::autotune::enabled(cfg.tune) {
        // Profile on the largest shard's adjacency: every shard shares
        // the winning kernel variants (bit-neutral, so this cannot change
        // numbers — only speed).
        let probe = set
            .shards
            .iter()
            .max_by_key(|s| s.nodes.len())
            .expect("non-empty shard set");
        let adj = probe.graph.gcn_adjacency();
        let f = model
            .store()
            .values()
            .map(|m| m.cols())
            .max()
            .unwrap_or_else(|| probe.graph.feature_dim());
        let rate = match strategy {
            Strategy::SkipNode(c) | Strategy::SkipNodeTrainEval(c) => c.rate(),
            _ => 0.0,
        };
        let profile = crate::autotune::profile_for(&adj, f, rate);
        crate::autotune::apply(&profile, &adj);
    }

    let mut opt = Adam::new(model.store(), cfg.adam);
    let mut recorder = DiagnosticsRecorder::new(cfg.diagnostics_every);

    // One compiled program per shard shape, compiled once and replayed
    // every epoch. Engine policy mirrors the full-batch trainer: Auto
    // falls back to eager only for plan-less models, and does so for all
    // shards at once (mixing executors across shards would train fine but
    // makes behavior harder to reason about).
    let mut programs: Vec<Option<TrainProgram>> = match cfg.engine {
        TrainEngine::Eager => (0..k).map(|_| None).collect(),
        TrainEngine::Compiled => set
            .shards
            .iter()
            .map(|sh| {
                let adj = sh.graph.gcn_adjacency();
                Some(
                    compile_train_program(model, &sh.graph, &adj, strategy, cfg.fuse)
                        .unwrap_or_else(|e| panic!("{e}")),
                )
            })
            .collect(),
        TrainEngine::Auto => {
            let mut compiled = Vec::with_capacity(k);
            for sh in &set.shards {
                let adj = sh.graph.gcn_adjacency();
                match compile_train_program(model, &sh.graph, &adj, strategy, cfg.fuse) {
                    Ok(p) => compiled.push(Some(p)),
                    Err(EngineError::NoPlan { .. }) => {
                        compiled = (0..k).map(|_| None).collect();
                        break;
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            compiled
        }
    };

    let full_adj = match eval_mode {
        FullEval::Exact { graph, .. } => Some(graph.gcn_adjacency()),
        FullEval::PerShard => None,
    };

    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0f64;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let epoch_t0 = std::time::Instant::now();
        let order = epoch_shard_order(k, shuffle_seed, epoch);
        let mut epoch_loss = 0.0f64;
        let mut grad_norm_sq = 0.0f64;
        for &s in &order {
            let sh = &set.shards[s];
            if sh.local_split.train.is_empty() {
                continue;
            }
            kstats::set_shard(Some(s as u32));
            let (loss, head_norm, mut param_grads) =
                shard_step(model, sh, programs[s].as_mut(), strategy, cfg, rng);
            kstats::set_shard(None);
            epoch_loss += loss * sh.local_split.train.len() as f64 / train_total as f64;
            grad_norm_sq += head_norm * head_norm;
            if let Some(max_norm) = cfg.clip_norm {
                clip_global_norm(&mut param_grads, max_norm);
            }
            opt.set_lr(cfg.adam.lr * cfg.lr_schedule.factor(epoch));
            opt.step(model.store_mut(), &param_grads);
            for g in param_grads.drain(..).flatten() {
                workspace::give(g);
            }
        }

        let train_seconds = epoch_t0.elapsed().as_secs_f64();
        let should_eval = epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs;
        let wants_diag = recorder.wants(epoch);
        if should_eval || wants_diag {
            let mut eval_rng = rng.split();
            let (val_acc, test_acc) = match eval_mode {
                FullEval::Exact { graph, split } => {
                    let full_adj = full_adj.as_ref().expect("exact eval has an adjacency");
                    let (logits, _) = evaluate(model, graph, full_adj, strategy, &mut eval_rng);
                    let val_acc = if split.val.is_empty() {
                        accuracy(&logits, graph.labels(), &split.train)
                    } else {
                        accuracy(&logits, graph.labels(), &split.val)
                    };
                    let test_acc = if split.test.is_empty() {
                        val_acc
                    } else {
                        accuracy(&logits, graph.labels(), &split.test)
                    };
                    (val_acc, test_acc)
                }
                FullEval::PerShard => eval_per_shard(model, set, strategy, &mut eval_rng),
            };
            if wants_diag {
                recorder.push(EpochDiagnostics {
                    epoch,
                    train_loss: epoch_loss,
                    val_accuracy: val_acc,
                    output_grad_norm: grad_norm_sq.sqrt(),
                    weight_norm_sq: model.store().total_l2_norm_sq(),
                    mad: None,
                    train_seconds,
                });
            }
            if should_eval {
                let improved = val_acc > best_val;
                if val_acc >= best_val {
                    best_val = val_acc;
                    best_test = test_acc;
                    best_epoch = epoch;
                }
                if improved {
                    since_best = 0;
                } else {
                    since_best += cfg.eval_every;
                    if cfg.patience > 0 && since_best >= cfg.patience {
                        break;
                    }
                }
            }
        }
    }

    TrainResult {
        test_accuracy: best_test,
        val_accuracy: best_val.max(0.0),
        best_epoch,
        epochs_run,
        diagnostics: recorder.into_entries(),
        final_mad: None,
    }
}

/// One shard's training step: replay its compiled program (or record an
/// eager tape) and return `(mean_loss, first_head_grad_norm, grads)`.
///
/// RNG contract (must mirror `train_node_classifier` exactly for the
/// 1-shard identity): `strategy.epoch_adjacency(...)` first, then one
/// `rng.split()` for the forward.
fn shard_step(
    model: &mut dyn Model,
    sh: &SubgraphShard,
    program: Option<&mut TrainProgram>,
    strategy: &Strategy,
    cfg: &TrainConfig,
    rng: &mut SplitRng,
) -> (f64, f64, Vec<Option<Matrix>>) {
    let shard_adj = sh.graph.gcn_adjacency();
    let adj = strategy.epoch_adjacency(&sh.graph, &shard_adj, true, rng);
    if let Some(program) = program {
        program.set_adjacency(adj);
        program.load_params(model.store().values());
        let mut fwd_rng = rng.split();
        let mut sampler =
            StrategySampler::new(strategy, &sh.degrees).with_order(sh.graph.node_order());
        program.begin_epoch(&mut sampler, &mut fwd_rng);
        program.replay_forward();
        let heads = program.heads().to_vec();
        let logits: Vec<&Matrix> = heads.iter().map(|&h| program.value(h)).collect();
        let (mean_loss, first_grad_norm, seeds) = build_seeds(
            &logits,
            sh.graph.labels(),
            &sh.local_split,
            model.consistency(),
        );
        let param_grads = program.backward(heads.iter().zip(seeds).map(|(&h, s)| (h, s)).collect());
        (mean_loss, first_grad_norm, param_grads)
    } else {
        let mut tape = Tape::new();
        let binding = model.store().bind(&mut tape);
        let adj_id = tape.register_adj(adj);
        let x = tape.constant_shared(sh.graph.features_arc());
        let mut fwd_rng = rng.split();
        let mut ctx =
            crate::context::ForwardCtx::new(adj_id, x, &sh.degrees, strategy, true, &mut fwd_rng);
        ctx.fuse = cfg.fuse;
        ctx.node_order = sh.graph.node_order();
        let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
        let logits: Vec<&Matrix> = heads.iter().map(|&h| tape.value(h)).collect();
        let (mean_loss, first_grad_norm, seeds) = build_seeds(
            &logits,
            sh.graph.labels(),
            &sh.local_split,
            model.consistency(),
        );
        let grads = tape.backward_multi(heads.iter().zip(seeds).map(|(&h, s)| (h, s)).collect());
        let param_grads: Vec<Option<Matrix>> = {
            let mut grads = grads;
            binding.nodes().iter().map(|&n| grads.take(n)).collect()
        };
        (mean_loss, first_grad_norm, param_grads)
    }
}

/// Shard-aggregated evaluation: inference on every shard's cached
/// subgraph, accuracy counted over local val/test indices. Falls back to
/// train accuracy when no shard holds validation nodes.
fn eval_per_shard(
    model: &dyn Model,
    set: &ShardSet,
    strategy: &Strategy,
    eval_rng: &mut SplitRng,
) -> (f64, f64) {
    let mut val = (0usize, 0usize); // (correct, total)
    let mut test = (0usize, 0usize);
    let mut train = (0usize, 0usize);
    for sh in &set.shards {
        let adj = sh.graph.gcn_adjacency();
        let (logits, _) = evaluate(model, &sh.graph, &adj, strategy, eval_rng);
        let labels = sh.graph.labels();
        let tally = |idx: &[usize], acc: &mut (usize, usize)| {
            if idx.is_empty() {
                return;
            }
            let frac = accuracy(&logits, labels, idx);
            acc.0 += (frac * idx.len() as f64).round() as usize;
            acc.1 += idx.len();
        };
        tally(&sh.local_split.val, &mut val);
        tally(&sh.local_split.test, &mut test);
        tally(&sh.local_split.train, &mut train);
    }
    let frac = |(c, t): (usize, usize)| c as f64 / t as f64;
    let val_acc = if val.1 > 0 { frac(val) } else { frac(train) };
    let test_acc = if test.1 > 0 { frac(test) } else { val_acc };
    (val_acc, test_acc)
}

/// GraphSAGE-style neighbor-sampled training (eager per batch — subgraph
/// shapes change every batch, so there is nothing to compile). Halo
/// nodes enter each batch's subgraph but contribute no loss.
fn train_neighbor_sampled(
    model: &mut dyn Model,
    graph: &Graph,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    let BatchScheme::NeighborSampling {
        batch_size,
        fanout,
        hops,
    } = mb.scheme
    else {
        unreachable!("caller matched the scheme")
    };
    assert!(batch_size >= 1 && fanout >= 1, "degenerate sampling config");
    let n = graph.num_nodes();
    let full_adj = graph.gcn_adjacency();
    let adj_list = graph.adjacency_list();
    let mut opt = Adam::new(model.store(), cfg.adam);

    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0f64;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut in_batch = vec![false; n];

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let mut seeds = split.train.clone();
        rng.shuffle(&mut seeds);
        for batch in seeds.chunks(batch_size) {
            // Expand the batch through `hops` sampled frontiers. Seeds
            // come first, so their local ids are 0..batch.len().
            let mut nodes: Vec<usize> = batch.to_vec();
            for &s in batch {
                in_batch[s] = true;
            }
            let mut frontier_lo = 0usize;
            for _ in 0..hops {
                let frontier_hi = nodes.len();
                for fi in frontier_lo..frontier_hi {
                    let u = nodes[fi];
                    let neigh = &adj_list[u];
                    if neigh.len() <= fanout {
                        for &v in neigh {
                            if !in_batch[v] {
                                in_batch[v] = true;
                                nodes.push(v);
                            }
                        }
                    } else {
                        // Partial Fisher–Yates: `fanout` distinct picks.
                        let mut pool: Vec<usize> = neigh.clone();
                        for j in 0..fanout {
                            let pick = j + rng.below(pool.len() - j);
                            pool.swap(j, pick);
                            let v = pool[j];
                            if !in_batch[v] {
                                in_batch[v] = true;
                                nodes.push(v);
                            }
                        }
                    }
                }
                frontier_lo = frontier_hi;
            }
            let sub = graph.subgraph(&nodes);
            for &u in &nodes {
                in_batch[u] = false;
            }
            let local_train: Vec<usize> = (0..batch.len()).collect();
            let sub_adj = sub.gcn_adjacency();
            let adj = strategy.epoch_adjacency(&sub, &sub_adj, true, rng);
            let degrees = sub.degrees();
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let adj_id = tape.register_adj(adj);
            let x = tape.constant_shared(sub.features_arc());
            let mut fwd_rng = rng.split();
            let mut ctx =
                crate::context::ForwardCtx::new(adj_id, x, &degrees, strategy, true, &mut fwd_rng);
            ctx.fuse = cfg.fuse;
            let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
            let logits: Vec<&Matrix> = heads.iter().map(|&h| tape.value(h)).collect();
            let local_split = Split {
                train: local_train,
                val: Vec::new(),
                test: Vec::new(),
            };
            let (_, _, seeds_g) =
                build_seeds(&logits, sub.labels(), &local_split, model.consistency());
            let grads =
                tape.backward_multi(heads.iter().zip(seeds_g).map(|(&h, s)| (h, s)).collect());
            let mut param_grads: Vec<Option<Matrix>> = {
                let mut grads = grads;
                binding.nodes().iter().map(|&nid| grads.take(nid)).collect()
            };
            if let Some(max_norm) = cfg.clip_norm {
                clip_global_norm(&mut param_grads, max_norm);
            }
            opt.set_lr(cfg.adam.lr * cfg.lr_schedule.factor(epoch));
            opt.step(model.store_mut(), &param_grads);
            for g in param_grads.drain(..).flatten() {
                workspace::give(g);
            }
        }

        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let mut eval_rng = rng.split();
            let (logits, _) = evaluate(model, graph, &full_adj, strategy, &mut eval_rng);
            let val_acc = if split.val.is_empty() {
                accuracy(&logits, graph.labels(), &split.train)
            } else {
                accuracy(&logits, graph.labels(), &split.val)
            };
            let test_acc = if split.test.is_empty() {
                val_acc
            } else {
                accuracy(&logits, graph.labels(), &split.test)
            };
            let improved = val_acc > best_val;
            if val_acc >= best_val {
                best_val = val_acc;
                best_test = test_acc;
                best_epoch = epoch;
            }
            if improved {
                since_best = 0;
            } else {
                since_best += cfg.eval_every;
                if cfg.patience > 0 && since_best >= cfg.patience {
                    break;
                }
            }
        }
    }

    TrainResult {
        test_accuracy: best_test,
        val_accuracy: best_val.max(0.0),
        best_epoch,
        epochs_run,
        diagnostics: Vec::new(),
        final_mad: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Gcn;
    use skipnode_graph::{
        full_supervised_split, partition_graph, streamed_partition_graph, FeatureStyle,
        PartitionConfig,
    };

    fn graph() -> Graph {
        partition_graph(
            &PartitionConfig {
                n: 600,
                m: 2400,
                classes: 4,
                homophily: 0.85,
                power: 0.2,
            },
            96,
            FeatureStyle::BinaryBagOfWords {
                active: 10,
                fidelity: 0.9,
                confusion: 0.1,
            },
            &mut SplitRng::new(41),
        )
    }

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            patience: 0,
            eval_every: 5,
            ..Default::default()
        }
    }

    #[test]
    fn minibatch_training_learns() {
        let g = graph();
        let mut rng = SplitRng::new(1);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 2, 0.2, &mut rng);
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &quick_cfg(30),
            &MiniBatchConfig::cluster(4),
            &mut rng,
        );
        assert!(r.test_accuracy > 0.55, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn single_part_matches_full_batch_protocol() {
        // shards = 1 trains on the whole cached shard; learning quality
        // must be on par with the standard trainer (the bit-exact pin
        // lives in tests/shard_identity.rs).
        let g = graph();
        let mut rng = SplitRng::new(2);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 2, 0.2, &mut rng);
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &quick_cfg(25),
            &MiniBatchConfig::cluster(1),
            &mut rng,
        );
        assert!(r.test_accuracy > 0.55, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn minibatch_works_with_skipnode() {
        let g = graph();
        let mut rng = SplitRng::new(3);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 4, 0.2, &mut rng);
        let strategy = Strategy::SkipNode(skipnode_core::SkipNodeConfig::new(
            0.5,
            skipnode_core::Sampling::Uniform,
        ));
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &strategy,
            &quick_cfg(25),
            &MiniBatchConfig::cluster(3),
            &mut rng,
        );
        assert!(r.test_accuracy > 0.4, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn sharded_runs_are_byte_reproducible() {
        // Same seeds, two runs: identical trajectories — the shard-order
        // shuffle must not perturb the main RNG stream.
        let g = graph();
        let run = || {
            let mut rng = SplitRng::new(7);
            let split = full_supervised_split(&g, &mut rng);
            let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 3, 0.3, &mut rng);
            let cfg = TrainConfig {
                epochs: 6,
                patience: 0,
                eval_every: 1,
                diagnostics_every: 1,
                ..Default::default()
            };
            let r = train_node_classifier_minibatch(
                &mut model,
                &g,
                &split,
                &Strategy::None,
                &cfg,
                &MiniBatchConfig::cluster(3),
                &mut rng,
            );
            let params: Vec<f32> = model
                .store()
                .values()
                .flat_map(|m| m.as_slice().to_vec())
                .collect();
            (r.diagnostics, params)
        };
        let (d1, p1) = run();
        let (d2, p2) = run();
        assert_eq!(p1, p2, "parameters diverged");
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
            assert_eq!(a.output_grad_norm.to_bits(), b.output_grad_norm.to_bits());
        }
    }

    #[test]
    fn neighbor_sampling_learns() {
        let g = graph();
        let mut rng = SplitRng::new(5);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 2, 0.2, &mut rng);
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &quick_cfg(20),
            &MiniBatchConfig::neighbor_sampling(64, 8, 2),
            &mut rng,
        );
        assert!(r.test_accuracy > 0.5, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn large_graph_sharded_training_learns_and_reproduces() {
        let cfg = PartitionConfig {
            n: 4000,
            m: 16000,
            classes: 4,
            homophily: 0.85,
            power: 0.0,
        };
        let (lg, _) = streamed_partition_graph(
            &cfg,
            32,
            FeatureStyle::BinaryBagOfWords {
                active: 6,
                fidelity: 0.9,
                confusion: 0.1,
            },
            1 << 12,
            99,
        );
        let run = || {
            let mut rng = SplitRng::new(11);
            let mut order: Vec<usize> = (0..lg.num_nodes()).collect();
            rng.shuffle(&mut order);
            let split = Split {
                train: order[..2400].to_vec(),
                val: order[2400..3200].to_vec(),
                test: order[3200..].to_vec(),
            };
            let mut model = Gcn::new(lg.feature_dim(), 16, lg.num_classes(), 2, 0.2, &mut rng);
            let r = train_node_classifier_sharded_large(
                &mut model,
                &lg,
                &split,
                &Strategy::None,
                &quick_cfg(20),
                &MiniBatchConfig::cluster(4),
                &mut rng,
            );
            let params: Vec<f32> = model
                .store()
                .values()
                .flat_map(|m| m.as_slice().to_vec())
                .collect();
            (r, params)
        };
        let (r1, p1) = run();
        let (_, p2) = run();
        assert!(r1.test_accuracy > 0.55, "accuracy {}", r1.test_accuracy);
        assert_eq!(p1, p2, "large-graph run not reproducible");
    }
}
