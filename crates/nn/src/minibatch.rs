//! Cluster-style mini-batch training for graphs that don't fit a
//! full-batch forward pass (the paper-scale ogbn-arxiv has 169k nodes).
//!
//! Following Cluster-GCN, each epoch partitions the nodes into random
//! parts, trains on each node-induced subgraph in turn (shared global
//! parameters), and evaluates full-batch. Random partitions lose
//! cross-part edges, which is exactly the documented Cluster-GCN
//! trade-off; plug-and-play strategies (including SkipNode) apply within
//! each part unchanged.

use crate::context::{ForwardCtx, Strategy};
use crate::metrics::accuracy;
use crate::models::Model;
use crate::optim::Adam;
use crate::trainer::{evaluate, TrainConfig, TrainResult};
use skipnode_autograd::{softmax_cross_entropy, Tape};
use skipnode_graph::{Graph, Split};
use skipnode_tensor::{Matrix, SplitRng};

/// Mini-batch settings.
#[derive(Debug, Clone, Copy)]
pub struct MiniBatchConfig {
    /// Number of random parts per epoch (≥ 1; 1 degenerates to full batch).
    pub parts: usize,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self { parts: 4 }
    }
}

/// Train with random-partition mini-batches; evaluation stays full-batch.
pub fn train_node_classifier_minibatch(
    model: &mut dyn Model,
    graph: &Graph,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    mb: &MiniBatchConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    assert!(mb.parts >= 1, "need at least one part");
    split.validate(graph.num_nodes());
    let n = graph.num_nodes();
    let full_adj = graph.gcn_adjacency();
    let mut opt = Adam::new(model.store(), cfg.adam);
    let is_train = {
        let mut mask = vec![false; n];
        for &i in &split.train {
            mask[i] = true;
        }
        mask
    };

    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0f64;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        // Random node partition for this epoch.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let part_size = n.div_ceil(mb.parts);
        for part in order.chunks(part_size) {
            let sub = graph.subgraph(part);
            // Local training indices (subgraph ids of training nodes).
            let local_train: Vec<usize> = part
                .iter()
                .enumerate()
                .filter(|(_, &orig)| is_train[orig])
                .map(|(local, _)| local)
                .collect();
            if local_train.is_empty() {
                continue;
            }
            let sub_adj = sub.gcn_adjacency();
            let adj = strategy.epoch_adjacency(&sub, &sub_adj, true, rng);
            let degrees = sub.degrees();
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let adj_id = tape.register_adj(adj);
            let x = tape.constant_shared(sub.features_arc());
            let mut fwd_rng = rng.split();
            let mut ctx = ForwardCtx::new(adj_id, x, &degrees, strategy, true, &mut fwd_rng);
            let logits = model.forward(&mut tape, &binding, &mut ctx);
            let out = softmax_cross_entropy(tape.value(logits), sub.labels(), &local_train);
            let grads = tape.backward(logits, out.grad);
            let param_grads: Vec<Option<Matrix>> = {
                let mut grads = grads;
                binding.nodes().iter().map(|&nid| grads.take(nid)).collect()
            };
            opt.step(model.store_mut(), &param_grads);
        }

        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs {
            let mut eval_rng = rng.split();
            let (logits, _) = evaluate(model, graph, &full_adj, strategy, &mut eval_rng);
            let val_acc = accuracy(&logits, graph.labels(), &split.val);
            let test_acc = accuracy(&logits, graph.labels(), &split.test);
            let improved = val_acc > best_val;
            if val_acc >= best_val {
                best_val = val_acc;
                best_test = test_acc;
                best_epoch = epoch;
            }
            if improved {
                since_best = 0;
            } else {
                since_best += cfg.eval_every;
                if cfg.patience > 0 && since_best >= cfg.patience {
                    break;
                }
            }
        }
    }

    TrainResult {
        test_accuracy: best_test,
        val_accuracy: best_val.max(0.0),
        best_epoch,
        epochs_run,
        diagnostics: Vec::new(),
        final_mad: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Gcn;
    use skipnode_graph::{full_supervised_split, partition_graph, FeatureStyle, PartitionConfig};

    fn graph() -> Graph {
        partition_graph(
            &PartitionConfig {
                n: 600,
                m: 2400,
                classes: 4,
                homophily: 0.85,
                power: 0.2,
            },
            96,
            FeatureStyle::BinaryBagOfWords {
                active: 10,
                fidelity: 0.9,
                confusion: 0.1,
            },
            &mut SplitRng::new(41),
        )
    }

    #[test]
    fn minibatch_training_learns() {
        let g = graph();
        let mut rng = SplitRng::new(1);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 2, 0.2, &mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            patience: 0,
            eval_every: 5,
            ..Default::default()
        };
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &cfg,
            &MiniBatchConfig { parts: 4 },
            &mut rng,
        );
        assert!(r.test_accuracy > 0.55, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn single_part_matches_full_batch_protocol() {
        // parts = 1 still trains on the whole (shuffled) graph; learning
        // quality should be on par with the standard trainer.
        let g = graph();
        let mut rng = SplitRng::new(2);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 2, 0.2, &mut rng);
        let cfg = TrainConfig {
            epochs: 25,
            patience: 0,
            eval_every: 5,
            ..Default::default()
        };
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &cfg,
            &MiniBatchConfig { parts: 1 },
            &mut rng,
        );
        assert!(r.test_accuracy > 0.55, "accuracy {}", r.test_accuracy);
    }

    #[test]
    fn minibatch_works_with_skipnode() {
        let g = graph();
        let mut rng = SplitRng::new(3);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 4, 0.2, &mut rng);
        let cfg = TrainConfig {
            epochs: 25,
            patience: 0,
            eval_every: 5,
            ..Default::default()
        };
        let strategy = Strategy::SkipNode(skipnode_core::SkipNodeConfig::new(
            0.5,
            skipnode_core::Sampling::Uniform,
        ));
        let r = train_node_classifier_minibatch(
            &mut model,
            &g,
            &split,
            &strategy,
            &cfg,
            &MiniBatchConfig { parts: 3 },
            &mut rng,
        );
        assert!(r.test_accuracy > 0.4, "accuracy {}", r.test_accuracy);
    }
}
