//! Adam with L2 regularization.
//!
//! The paper's weight-over-decaying analysis (§4.2) hinges on the L2
//! penalty being part of the *loss* (so its gradient keeps shrinking
//! weights even when the classification gradient vanishes). We therefore
//! implement classic L2-in-gradient regularization — `g ← g + wd·θ` — not
//! decoupled AdamW, matching the paper's training setup.

use crate::param::ParamStore;
use skipnode_tensor::simd;
use skipnode_tensor::{kstats, pool, Matrix};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// L2 regularization coefficient (added to gradients).
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 5e-4,
        }
    }
}

struct Slot {
    m: Matrix,
    v: Matrix,
}

/// One parameter's buffers for the fused update, captured as raw pointers
/// so the step can be dispatched over the worker pool without borrowing
/// the store. Each task owns disjoint allocations; `grad` is null for
/// parameters that did not participate (decay-only update).
struct RawTask {
    value: *mut f32,
    m: *mut f32,
    v: *mut f32,
    grad: *const f32,
    len: usize,
}

// SAFETY: the pointers reference disjoint heap allocations that outlive the
// pool job, and each task is processed by exactly one chunk.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// The Adam optimizer; owns per-parameter moment state.
pub struct Adam {
    cfg: AdamConfig,
    slots: Vec<Slot>,
    t: u64,
    tasks: Vec<RawTask>,
}

impl Adam {
    /// New optimizer for the given store.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let slots = store
            .ids()
            .into_iter()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Slot {
                    m: Matrix::zeros(r, c),
                    v: Matrix::zeros(r, c),
                }
            })
            .collect();
        Self {
            cfg,
            slots,
            t: 0,
            tasks: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Override the learning rate (used by LR schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.cfg.lr = lr;
    }

    /// Apply one update step. `grads[i]` is the gradient for the `i`-th
    /// registered parameter (`None` means "did not participate" — treated
    /// as zero gradient, so L2 decay still applies, exactly as in the
    /// paper's weight-over-decay story).
    ///
    /// The update is fused — L2 decay, both moment updates, bias
    /// correction, and write-back happen in a single pass per scalar, with
    /// parameters dispatched one-per-chunk over the persistent worker pool.
    /// Each parameter is updated serially by exactly one worker, so the
    /// result is deterministic and bit-identical to the serial loop. No
    /// allocation happens after the first call (the task list retains its
    /// capacity), including on the single-threaded fallback.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        let ids = store.ids();
        assert_eq!(grads.len(), ids.len(), "one gradient slot per parameter");
        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        self.tasks.clear();
        for (i, id) in ids.into_iter().enumerate() {
            let slot = &mut self.slots[i];
            let value = store.value_mut(id);
            let len = value.len();
            let grad = match grads[i].as_ref() {
                Some(g) => {
                    assert_eq!(g.len(), len, "gradient length mismatch for parameter {i}");
                    g.as_slice().as_ptr()
                }
                None => std::ptr::null(),
            };
            self.tasks.push(RawTask {
                value: value.as_mut_slice().as_mut_ptr(),
                m: slot.m.as_mut_slice().as_mut_ptr(),
                v: slot.v.as_mut_slice().as_mut_ptr(),
                grad,
                len,
            });
        }
        // The element arithmetic lives in `simd::adam_step`: plain mul/add
        // f32 moments and an f64 hat/denominator section on every ISA, so
        // the vectorized step stays bit-identical to the scalar reference
        // (pinned by `fused_step_matches_scalar_reference_on_random_problems`).
        let lanes = simd::AdamLanes {
            beta1: self.cfg.beta1 as f32,
            beta2: self.cfg.beta2 as f32,
            weight_decay: self.cfg.weight_decay as f32,
            lr: self.cfg.lr,
            eps: self.cfg.eps,
            bias1: bc1,
            bias2: bc2,
        };
        let isa = simd::active();
        kstats::record(
            kstats::Kernel::Adam,
            self.tasks.iter().map(|t| t.len).sum::<usize>(),
        );
        let tasks = &self.tasks;
        pool::parallel_for(tasks.len(), |i| {
            let t = &tasks[i];
            // SAFETY: each chunk touches exactly one task, and every task
            // points at distinct allocations held alive by `store` and
            // `self.slots` for the duration of the job.
            unsafe {
                let value = std::slice::from_raw_parts_mut(t.value, t.len);
                let m = std::slice::from_raw_parts_mut(t.m, t.len);
                let v = std::slice::from_raw_parts_mut(t.v, t.len);
                let grad = (!t.grad.is_null()).then(|| std::slice::from_raw_parts(t.grad, t.len));
                simd::adam_step(isa, value, m, v, grad, &lanes);
            }
        });
        self.tasks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(θ) = (θ − 3)² with analytic gradient 2(θ − 3).
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("theta", Matrix::from_rows(&[&[0.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        for _ in 0..500 {
            let theta = store.value(id).get(0, 0);
            let grad = Matrix::from_rows(&[&[2.0 * (theta - 3.0)]]);
            opt.step(&mut store, &[Some(grad)]);
        }
        let theta = store.value(id).get(0, 0);
        assert!((theta - 3.0).abs() < 1e-2, "theta = {theta}");
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_gradient() {
        // The weight-over-decaying mechanism: no classification gradient
        // (None) + L2 regularization → weights decay toward zero.
        let mut store = ParamStore::new();
        let _id = store.add("w", Matrix::from_rows(&[&[1.0, -1.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                lr: 0.05,
                weight_decay: 5e-2,
                ..Default::default()
            },
        );
        let before = store.total_l2_norm_sq();
        for _ in 0..200 {
            opt.step(&mut store, &[None]);
        }
        let after = store.total_l2_norm_sq();
        assert!(after < before * 0.01, "before {before}, after {after}");
    }

    #[test]
    fn zero_decay_zero_grad_is_a_fixed_point() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::from_rows(&[&[2.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        opt.step(&mut store, &[None]);
        assert_eq!(store.value(store.ids()[0]).get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "one gradient slot per parameter")]
    fn grad_count_mismatch_panics() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let mut opt = Adam::new(&store, AdamConfig::default());
        opt.step(&mut store, &[]);
    }

    /// The scalar reference implementation the fused parallel step must
    /// match bit-for-bit: the original one-scalar-at-a-time loop, kept
    /// here verbatim as the ground truth.
    fn reference_step(
        cfg: &AdamConfig,
        t: u64,
        values: &mut [Matrix],
        m: &mut [Matrix],
        v: &mut [Matrix],
        grads: &[Option<Matrix>],
    ) {
        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        let b1 = cfg.beta1 as f32;
        let b2 = cfg.beta2 as f32;
        let wd = cfg.weight_decay as f32;
        for i in 0..values.len() {
            for j in 0..values[i].len() {
                let g = grads[i].as_ref().map_or(0.0, |g| g.as_slice()[j])
                    + wd * values[i].as_slice()[j];
                let mj = &mut m[i].as_mut_slice()[j];
                *mj = b1 * *mj + (1.0 - b1) * g;
                let vj = &mut v[i].as_mut_slice()[j];
                *vj = b2 * *vj + (1.0 - b2) * g * g;
                let m_hat = *mj as f64 / bc1;
                let v_hat = *vj as f64 / bc2;
                let upd = cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
                values[i].as_mut_slice()[j] -= upd as f32;
            }
        }
    }

    /// Property test: across random parameter shapes, random hyperparameters,
    /// random gradients (with random `None` slots), and multiple steps, the
    /// fused parallel step matches the scalar reference bit-for-bit.
    #[test]
    fn fused_step_matches_scalar_reference_on_random_problems() {
        use skipnode_tensor::SplitRng;
        let mut rng = SplitRng::new(0xADA0);
        for trial in 0..20 {
            let n_params = 1 + rng.uniform(0.0, 6.0) as usize;
            let cfg = AdamConfig {
                lr: 0.001 + rng.uniform(0.0, 0.2) as f64,
                beta1: 0.8 + rng.uniform(0.0, 0.19) as f64,
                beta2: 0.9 + rng.uniform(0.0, 0.099) as f64,
                eps: 10f64.powf(-4.0 - rng.uniform(0.0, 6.0) as f64),
                weight_decay: if rng.bernoulli(0.3) {
                    0.0
                } else {
                    rng.uniform(0.0, 0.05) as f64
                },
            };
            let mut store = ParamStore::new();
            let mut ref_values = Vec::new();
            for p in 0..n_params {
                let r = 1 + rng.uniform(0.0, 8.0) as usize;
                let c = 1 + rng.uniform(0.0, 8.0) as usize;
                let mut mat = Matrix::zeros(r, c);
                for x in mat.as_mut_slice() {
                    *x = rng.uniform(-2.0, 2.0);
                }
                ref_values.push(mat.clone());
                store.add(format!("p{p}"), mat);
            }
            let mut ref_m: Vec<Matrix> = ref_values
                .iter()
                .map(|v| Matrix::zeros(v.rows(), v.cols()))
                .collect();
            let mut ref_v = ref_m.clone();
            let mut opt = Adam::new(&store, cfg);
            for step in 1..=5u64 {
                let grads: Vec<Option<Matrix>> = ref_values
                    .iter()
                    .map(|val| {
                        if rng.bernoulli(0.2) {
                            return None;
                        }
                        let mut g = Matrix::zeros(val.rows(), val.cols());
                        for x in g.as_mut_slice() {
                            *x = rng.uniform(-1.0, 1.0);
                        }
                        Some(g)
                    })
                    .collect();
                opt.step(&mut store, &grads);
                reference_step(&cfg, step, &mut ref_values, &mut ref_m, &mut ref_v, &grads);
                for (id, expect) in store.ids().into_iter().zip(&ref_values) {
                    assert_eq!(
                        store.value(id).as_slice(),
                        expect.as_slice(),
                        "trial {trial}, step {step}, param {id:?} diverged from reference"
                    );
                }
            }
        }
    }
}
