//! Adam with L2 regularization.
//!
//! The paper's weight-over-decaying analysis (§4.2) hinges on the L2
//! penalty being part of the *loss* (so its gradient keeps shrinking
//! weights even when the classification gradient vanishes). We therefore
//! implement classic L2-in-gradient regularization — `g ← g + wd·θ` — not
//! decoupled AdamW, matching the paper's training setup.

use crate::param::ParamStore;
use skipnode_tensor::Matrix;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// L2 regularization coefficient (added to gradients).
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 5e-4,
        }
    }
}

struct Slot {
    m: Matrix,
    v: Matrix,
}

/// The Adam optimizer; owns per-parameter moment state.
pub struct Adam {
    cfg: AdamConfig,
    slots: Vec<Slot>,
    t: u64,
}

impl Adam {
    /// New optimizer for the given store.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let slots = store
            .ids()
            .into_iter()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Slot {
                    m: Matrix::zeros(r, c),
                    v: Matrix::zeros(r, c),
                }
            })
            .collect();
        Self { cfg, slots, t: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Override the learning rate (used by LR schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.cfg.lr = lr;
    }

    /// Apply one update step. `grads[i]` is the gradient for the `i`-th
    /// registered parameter (`None` means "did not participate" — treated
    /// as zero gradient, so L2 decay still applies, exactly as in the
    /// paper's weight-over-decay story).
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Matrix>]) {
        let ids = store.ids();
        assert_eq!(grads.len(), ids.len(), "one gradient slot per parameter");
        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, id) in ids.into_iter().enumerate() {
            let slot = &mut self.slots[i];
            let value = store.value_mut(id);
            let n = value.len();
            let b1 = self.cfg.beta1 as f32;
            let b2 = self.cfg.beta2 as f32;
            let wd = self.cfg.weight_decay as f32;
            for j in 0..n {
                let g =
                    grads[i].as_ref().map_or(0.0, |g| g.as_slice()[j]) + wd * value.as_slice()[j];
                let m = &mut slot.m.as_mut_slice()[j];
                *m = b1 * *m + (1.0 - b1) * g;
                let v = &mut slot.v.as_mut_slice()[j];
                *v = b2 * *v + (1.0 - b2) * g * g;
                let m_hat = *m as f64 / bc1;
                let v_hat = *v as f64 / bc2;
                let upd = self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
                value.as_mut_slice()[j] -= upd as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(θ) = (θ − 3)² with analytic gradient 2(θ − 3).
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("theta", Matrix::from_rows(&[&[0.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        for _ in 0..500 {
            let theta = store.value(id).get(0, 0);
            let grad = Matrix::from_rows(&[&[2.0 * (theta - 3.0)]]);
            opt.step(&mut store, &[Some(grad)]);
        }
        let theta = store.value(id).get(0, 0);
        assert!((theta - 3.0).abs() < 1e-2, "theta = {theta}");
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_gradient() {
        // The weight-over-decaying mechanism: no classification gradient
        // (None) + L2 regularization → weights decay toward zero.
        let mut store = ParamStore::new();
        let _id = store.add("w", Matrix::from_rows(&[&[1.0, -1.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                lr: 0.05,
                weight_decay: 5e-2,
                ..Default::default()
            },
        );
        let before = store.total_l2_norm_sq();
        for _ in 0..200 {
            opt.step(&mut store, &[None]);
        }
        let after = store.total_l2_norm_sq();
        assert!(after < before * 0.01, "before {before}, after {after}");
    }

    #[test]
    fn zero_decay_zero_grad_is_a_fixed_point() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::from_rows(&[&[2.0]]));
        let mut opt = Adam::new(
            &store,
            AdamConfig {
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        opt.step(&mut store, &[None]);
        assert_eq!(store.value(store.ids()[0]).get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "one gradient slot per parameter")]
    fn grad_count_mismatch_panics() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::zeros(1, 1));
        let mut opt = Adam::new(&store, AdamConfig::default());
        opt.step(&mut store, &[]);
    }
}
