//! Training diagnostics for the Figure 2 "three issues" experiment.
//!
//! The paper visualizes, per epoch: (a) MAD of the penultimate features
//! (over-smoothing), (b) gradient magnitude at the classification layer
//! (gradient vanishing), and (c) the summed L2 norm of all weights (weight
//! over-decaying). The trainer fills one [`EpochDiagnostics`] row per
//! recorded epoch.

/// One epoch's worth of degradation diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDiagnostics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training cross-entropy.
    pub train_loss: f64,
    /// Validation accuracy.
    pub val_accuracy: f64,
    /// Frobenius norm of `∂L/∂Z` at the classification layer (Fig. 2b).
    pub output_grad_norm: f64,
    /// `Σ_l ‖W^(l)‖²` over all parameters (Fig. 2c).
    pub weight_norm_sq: f64,
    /// MAD of the penultimate representation (Fig. 2a / Fig. 5b); `None`
    /// when MAD recording is disabled or the model exposes no penultimate.
    pub mad: Option<f64>,
    /// Wall time of this epoch's training step (forward + backward +
    /// optimizer), excluding evaluation — the steady-state number the
    /// scaling benches assert on.
    pub train_seconds: f64,
}

/// Collects [`EpochDiagnostics`] every `every` epochs.
#[derive(Debug, Clone)]
pub struct DiagnosticsRecorder {
    every: usize,
    entries: Vec<EpochDiagnostics>,
}

impl DiagnosticsRecorder {
    /// Record every `every`-th epoch (`every == 0` disables recording).
    pub fn new(every: usize) -> Self {
        Self {
            every,
            entries: Vec::new(),
        }
    }

    /// Should this epoch be recorded?
    pub fn wants(&self, epoch: usize) -> bool {
        self.every > 0 && epoch.is_multiple_of(self.every)
    }

    /// Append a row.
    pub fn push(&mut self, row: EpochDiagnostics) {
        self.entries.push(row);
    }

    /// Recorded rows.
    pub fn entries(&self) -> &[EpochDiagnostics] {
        &self.entries
    }

    /// Consume into the rows.
    pub fn into_entries(self) -> Vec<EpochDiagnostics> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_cadence() {
        let r = DiagnosticsRecorder::new(5);
        assert!(r.wants(0));
        assert!(!r.wants(3));
        assert!(r.wants(10));
        let off = DiagnosticsRecorder::new(0);
        assert!(!off.wants(0));
    }

    #[test]
    fn push_and_read_back() {
        let mut r = DiagnosticsRecorder::new(1);
        r.push(EpochDiagnostics {
            epoch: 0,
            train_loss: 1.0,
            val_accuracy: 0.5,
            output_grad_norm: 0.1,
            weight_norm_sq: 2.0,
            mad: Some(0.7),
            train_seconds: 0.01,
        });
        assert_eq!(r.entries().len(), 1);
        assert_eq!(r.entries()[0].epoch, 0);
    }
}
