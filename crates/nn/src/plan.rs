//! The layer-plan IR: one declarative program format every backbone
//! compiles itself into, and one executor that runs it.
//!
//! The paper's claim is that SkipNode is *plug-and-play* across deep GCN
//! backbones. Before this module, each backbone hand-rolled its own
//! forward loop, so strategy injection, dropout placement, fused-kernel
//! selection, and RNG-stream ordering were re-implemented nine times —
//! and the fused masked kernel ([`Tape::skip_conv_step`]) only fired for
//! the two backbones that happened to call the right helper. Now each
//! backbone's [`crate::models::Model::plan`] emits a [`LayerPlan`] of
//! typed ops and [`PlanExecutor`] owns all of those concerns in exactly
//! one place:
//!
//! - **Strategy injection** — every activated convolution and propagation
//!   step routes through [`ForwardCtx::post_conv`], so PairNorm and the
//!   SkipNode row-combine apply uniformly.
//! - **Fused-kernel selection** — [`PlanOp::ActivatedConv`] consults
//!   [`ForwardCtx::fused_skip_mask`] and dispatches the whole step
//!   (initial residual, identity map, bias, post-activation residual and
//!   all) to the masked kernel whenever SkipNode is active and shapes
//!   allow, falling back to the canonical unfused op chain otherwise.
//!   Both paths are bit-identical and draw identically from the RNG.
//! - **Inference parity by construction** — eager and
//!   [`Tape::inference`] forwards execute the *same* plan, so the no-grad
//!   engine can never drift from training semantics.
//!
//! A plan is a register machine: [`Reg`]`(0)` is the input features
//! (`ctx.x`), and op `k` (0-based) defines `Reg(k + 1)`. Ops that are
//! identity at runtime (evaluation-mode dropout, [`PlanOp::Penultimate`])
//! still define their register — it aliases the source node — so register
//! numbering is static and plans stay position-independent of strategy or
//! train/eval mode.
//!
//! Having a plan is also the trainer's compilation contract: tape
//! topology depends only on the plan and strategy, never on drawn values,
//! which is what lets [`crate::engine::compile_train_program`] record one
//! probe forward and compile it into an epoch-resident
//! [`skipnode_autograd::TrainProgram`] (see `DESIGN.md` §10). Plan-less
//! bespoke models (GAT) train on the eager per-epoch tape instead.

use crate::context::ForwardCtx;
use crate::models::JkAggregate;
use crate::param::{Binding, ParamId};
use skipnode_autograd::{FusedStep, NodeId, Tape};
use skipnode_sparse::SpmmSchedule;
use skipnode_tensor::simd::{self, GemmTile};
use skipnode_tensor::ReadoutKind;

/// A virtual register in a [`LayerPlan`]. `Reg(0)` is the input feature
/// matrix; op `k` defines `Reg(k + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub usize);

/// One typed step of a [`LayerPlan`].
///
/// Every op consumes registers defined earlier and defines exactly one new
/// register. Shapes are resolved at execution time against the tape, so
/// one op form serves every width (e.g. the shape-gated residual of
/// ResGCN's first middle layer).
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Training-time inverted dropout (identity at eval or rate 0).
    Dropout {
        /// Input register.
        src: Reg,
        /// Drop probability.
        rate: f64,
    },
    /// Training-time row dropout (GRAND's DropNode-as-augmentation;
    /// identity at eval or rate 0).
    DropRows {
        /// Input register.
        src: Reg,
        /// Row-drop probability.
        rate: f64,
    },
    /// Plain graph convolution `Ã · h · W + b` with no activation — the
    /// classification layer of GCN-family stacks.
    Conv {
        /// Input register.
        src: Reg,
        /// Weight parameter (`d_in × d_out`).
        w: ParamId,
        /// Bias parameter (`1 × d_out`).
        b: ParamId,
    },
    /// One *activated middle layer*: the generalized step
    /// `post_conv(relu(support · W̃ [+ b]) [+ residual], carry)` where
    /// `support = (1-α)·Ã·src + α·h0` when an initial residual is present
    /// (plain `Ã·src` otherwise) and `W̃ = (1-β)·I + β·W` when the
    /// identity map is (GCNII). This is the op the fused masked kernel
    /// serves: when SkipNode is active and the step is hidden→hidden, the
    /// whole thing runs as one [`Tape::skip_conv_step`] and skipped rows
    /// never enter the SpMM/GEMM.
    ActivatedConv {
        /// Input register (typically the dropout output).
        src: Reg,
        /// The carry — previous layer output; SkipNode's skip branch and
        /// `post_conv`'s comparison operand.
        carry: Reg,
        /// Weight parameter.
        w: ParamId,
        /// Optional bias parameter (GCNII's middle layers have none).
        b: Option<ParamId>,
        /// GCNII initial residual: mix `α · h0` into the propagation.
        init_residual: Option<(Reg, f32)>,
        /// GCNII identity map strength `β_l` (requires square `W`).
        identity_map: Option<f32>,
        /// ResGCN skip connection added *after* the ReLU — applied only
        /// when its shape matches the conv output (seed semantics).
        residual: Option<Reg>,
    },
    /// Dense layer `h · W + b`.
    Dense {
        /// Input register.
        src: Reg,
        /// Weight parameter.
        w: ParamId,
        /// Bias parameter.
        b: ParamId,
    },
    /// Elementwise ReLU.
    Relu {
        /// Input register.
        src: Reg,
    },
    /// One weightless propagation step
    /// `post_conv(Ã·src [teleport-mixed], carry)` — APPNP / GPRGNN /
    /// GRAND / SGC diffusion.
    Propagate {
        /// Input register.
        src: Reg,
        /// Previous step's output (the SkipNode skip branch).
        carry: Reg,
        /// APPNP teleport: mix `α · h0` back in after the SpMM.
        teleport: Option<(Reg, f32)>,
    },
    /// Fixed-coefficient linear combination (GRAND's power mean).
    LinComb {
        /// `(register, coefficient)` parts, in evaluation order.
        parts: Vec<(Reg, f32)>,
    },
    /// Learnable-weight sum `Σ_k γ_k · parts[k]` (GPRGNN).
    WeightedSum {
        /// Hop registers.
        parts: Vec<Reg>,
        /// The `1 × K` weight parameter.
        w: ParamId,
    },
    /// Jumping-knowledge aggregation across layer outputs (JKNet,
    /// InceptGCN's branch concat).
    Aggregate {
        /// Per-layer (or per-branch) registers.
        parts: Vec<Reg>,
        /// Fusion mode.
        kind: JkAggregate,
    },
    /// Record `src` as the penultimate representation
    /// ([`ForwardCtx::penultimate`]); the defined register aliases `src`.
    Penultimate {
        /// The representation before the classification layer.
        src: Reg,
    },
    /// Per-graph pooling over a packed multi-graph batch: reduce each
    /// segment of `src`'s rows (one segment per graph, from
    /// [`ForwardCtx::segments`]) to a single row. Turns `total_nodes × d`
    /// node embeddings into `num_graphs × d` graph embeddings — the bridge
    /// from node-level convolution to graph-level classification.
    Readout {
        /// Input register (node embeddings).
        src: Reg,
        /// Reduction applied within each segment.
        kind: ReadoutKind,
    },
}

/// Kernel-variant choices recorded into a plan by the startup auto-tuner
/// (`crate::autotune`). The ISA/tile/schedule/fuse choices are bit-neutral
/// under the accumulation-order policy, so an annotated plan computes the
/// same values as an unannotated one — only faster. The recorded storage
/// precision is the exception: it is informational (the process-global
/// precision mode controls the kernels), and bf16 staging is
/// tolerance-class rather than bit-neutral. `None` tuning means "use the
/// process defaults".
#[derive(Debug, Clone)]
pub struct PlanTuning {
    /// ISA the profile was timed under (`"scalar"`, `"avx2+fma"`, …).
    pub isa: &'static str,
    /// GEMM microkernel tile the executor installs before running.
    pub gemm_tile: GemmTile,
    /// SpMM worker schedule the adjacency was tuned to (informational
    /// here; [`crate::autotune::apply`] installs it on the matrix).
    pub spmm_schedule: Option<SpmmSchedule>,
    /// Whether [`PlanOp::ActivatedConv`] may take the fused masked-kernel
    /// path. `false` pins the canonical unfused chain (bit-identical, same
    /// RNG draws).
    pub fuse: bool,
    /// Storage precision the tuner timed under (`"f32"` or `"bf16"`;
    /// see `skipnode_tensor::precision`).
    pub precision: &'static str,
}

/// A compiled forward pass: a straight-line program of [`PlanOp`]s plus
/// the register holding the logits.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// The ops, in execution order.
    pub ops: Vec<PlanOp>,
    /// The register whose value is the forward output.
    pub output: Reg,
    /// Auto-tuner annotation (`None` until a tuned context executes the
    /// plan; see [`PlanTuning`]).
    pub tuning: Option<PlanTuning>,
}

/// Builder for [`LayerPlan`]s: each method appends one op and returns the
/// register it defines, so backbone `plan()` implementations read like
/// the forward loops they replace.
#[derive(Default)]
pub struct PlanBuilder {
    ops: Vec<PlanOp>,
}

impl PlanBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The input feature register (`ctx.x`).
    pub fn input() -> Reg {
        Reg(0)
    }

    fn push(&mut self, op: PlanOp) -> Reg {
        self.ops.push(op);
        Reg(self.ops.len())
    }

    /// Append a [`PlanOp::Dropout`].
    pub fn dropout(&mut self, src: Reg, rate: f64) -> Reg {
        self.push(PlanOp::Dropout { src, rate })
    }

    /// Append a [`PlanOp::DropRows`].
    pub fn drop_rows(&mut self, src: Reg, rate: f64) -> Reg {
        self.push(PlanOp::DropRows { src, rate })
    }

    /// Append a [`PlanOp::Conv`].
    pub fn conv(&mut self, src: Reg, w: ParamId, b: ParamId) -> Reg {
        self.push(PlanOp::Conv { src, w, b })
    }

    /// Append a plain [`PlanOp::ActivatedConv`] (bias, no residuals).
    pub fn activated_conv(&mut self, src: Reg, carry: Reg, w: ParamId, b: ParamId) -> Reg {
        self.push(PlanOp::ActivatedConv {
            src,
            carry,
            w,
            b: Some(b),
            init_residual: None,
            identity_map: None,
            residual: None,
        })
    }

    /// Append an [`PlanOp::ActivatedConv`] with a post-activation skip
    /// connection (ResGCN).
    pub fn activated_conv_residual(
        &mut self,
        src: Reg,
        carry: Reg,
        w: ParamId,
        b: ParamId,
        residual: Reg,
    ) -> Reg {
        self.push(PlanOp::ActivatedConv {
            src,
            carry,
            w,
            b: Some(b),
            init_residual: None,
            identity_map: None,
            residual: Some(residual),
        })
    }

    /// Append a GCNII-style [`PlanOp::ActivatedConv`]: initial residual
    /// `α · h0`, identity map `β`, no bias.
    pub fn activated_conv_gcnii(
        &mut self,
        src: Reg,
        carry: Reg,
        w: ParamId,
        h0: Reg,
        alpha: f32,
        beta: f32,
    ) -> Reg {
        self.push(PlanOp::ActivatedConv {
            src,
            carry,
            w,
            b: None,
            init_residual: Some((h0, alpha)),
            identity_map: Some(beta),
            residual: None,
        })
    }

    /// Append a [`PlanOp::Dense`].
    pub fn dense(&mut self, src: Reg, w: ParamId, b: ParamId) -> Reg {
        self.push(PlanOp::Dense { src, w, b })
    }

    /// Append a [`PlanOp::Relu`].
    pub fn relu(&mut self, src: Reg) -> Reg {
        self.push(PlanOp::Relu { src })
    }

    /// Append a [`PlanOp::Propagate`].
    pub fn propagate(&mut self, src: Reg, carry: Reg, teleport: Option<(Reg, f32)>) -> Reg {
        self.push(PlanOp::Propagate {
            src,
            carry,
            teleport,
        })
    }

    /// Append a [`PlanOp::LinComb`].
    pub fn lin_comb(&mut self, parts: Vec<(Reg, f32)>) -> Reg {
        self.push(PlanOp::LinComb { parts })
    }

    /// Append a [`PlanOp::WeightedSum`].
    pub fn weighted_sum(&mut self, parts: Vec<Reg>, w: ParamId) -> Reg {
        self.push(PlanOp::WeightedSum { parts, w })
    }

    /// Append a [`PlanOp::Aggregate`].
    pub fn aggregate(&mut self, parts: Vec<Reg>, kind: JkAggregate) -> Reg {
        self.push(PlanOp::Aggregate { parts, kind })
    }

    /// Append a [`PlanOp::Penultimate`] marker.
    pub fn penultimate(&mut self, src: Reg) -> Reg {
        self.push(PlanOp::Penultimate { src })
    }

    /// Append a [`PlanOp::Readout`].
    pub fn readout(&mut self, src: Reg, kind: ReadoutKind) -> Reg {
        self.push(PlanOp::Readout { src, kind })
    }

    /// Seal the plan with its output register.
    pub fn finish(self, output: Reg) -> LayerPlan {
        LayerPlan {
            ops: self.ops,
            output,
            tuning: None,
        }
    }
}

/// Walks a [`LayerPlan`] against a tape and forward context. One executor
/// serves eager training tapes and deferred [`Tape::inference`] tapes
/// alike — parity is by construction, both run the identical program.
pub struct PlanExecutor;

impl PlanExecutor {
    /// Execute `plan`, returning the tape node of its output register.
    ///
    /// # Panics
    /// Panics if an op reads a register that has not been defined yet
    /// (malformed plan) or on tape-level shape mismatches.
    pub fn run(
        plan: &LayerPlan,
        tape: &mut Tape,
        binding: &Binding,
        ctx: &mut ForwardCtx,
    ) -> NodeId {
        // Install the annotated GEMM tile before any op runs; bit-neutral,
        // so un-annotated executions in the same process are unaffected
        // beyond speed.
        let allow_fuse = match &plan.tuning {
            Some(t) => {
                simd::set_gemm_tile(t.gemm_tile);
                t.fuse
            }
            None => true,
        };
        let mut regs: Vec<NodeId> = Vec::with_capacity(plan.ops.len() + 1);
        regs.push(ctx.x);
        for op in &plan.ops {
            let node = exec_op(op, &regs, tape, binding, ctx, allow_fuse);
            regs.push(node);
        }
        regs[plan.output.0]
    }
}

fn exec_op(
    op: &PlanOp,
    regs: &[NodeId],
    tape: &mut Tape,
    binding: &Binding,
    ctx: &mut ForwardCtx,
    allow_fuse: bool,
) -> NodeId {
    let r = |reg: Reg| regs[reg.0];
    match op {
        PlanOp::Dropout { src, rate } => ctx.dropout(tape, r(*src), *rate),
        PlanOp::DropRows { src, rate } => {
            if ctx.train && *rate > 0.0 {
                tape.dropout_rows(r(*src), *rate, ctx.rng)
            } else {
                r(*src)
            }
        }
        PlanOp::Conv { src, w, b } => {
            let p = tape.spmm(ctx.adj, r(*src));
            let z = tape.matmul(p, binding.node(*w));
            tape.add_bias(z, binding.node(*b))
        }
        PlanOp::ActivatedConv {
            src,
            carry,
            w,
            b,
            init_residual,
            identity_map,
            residual,
        } => exec_activated_conv(
            tape,
            binding,
            ctx,
            allow_fuse,
            r(*src),
            r(*carry),
            *w,
            *b,
            init_residual.map(|(h0, a)| (r(h0), a)),
            *identity_map,
            residual.map(&r),
        ),
        PlanOp::Dense { src, w, b } => {
            let z = tape.matmul(r(*src), binding.node(*w));
            tape.add_bias(z, binding.node(*b))
        }
        PlanOp::Relu { src } => tape.relu(r(*src)),
        PlanOp::Propagate {
            src,
            carry,
            teleport,
        } => {
            let p = tape.spmm(ctx.adj, r(*src));
            let step = match teleport {
                Some((h0, alpha)) => tape.lin_comb(&[(p, 1.0 - alpha), (r(*h0), *alpha)]),
                None => p,
            };
            ctx.post_conv(tape, step, r(*carry))
        }
        PlanOp::LinComb { parts } => {
            let parts: Vec<(NodeId, f32)> = parts.iter().map(|&(p, c)| (r(p), c)).collect();
            tape.lin_comb(&parts)
        }
        PlanOp::WeightedSum { parts, w } => {
            let nodes: Vec<NodeId> = parts.iter().map(|&p| r(p)).collect();
            tape.weighted_sum(&nodes, binding.node(*w))
        }
        PlanOp::Aggregate { parts, kind } => {
            let nodes: Vec<NodeId> = parts.iter().map(|&p| r(p)).collect();
            match kind {
                JkAggregate::Concat => tape.concat_cols(&nodes),
                JkAggregate::MaxPool => tape.max_pool(&nodes),
            }
        }
        PlanOp::Penultimate { src } => {
            let node = r(*src);
            ctx.penultimate = Some(node);
            node
        }
        PlanOp::Readout { src, kind } => {
            let seg = ctx
                .segments
                .expect("PlanOp::Readout requires a segment-aware ForwardCtx (packed batch)");
            tape.readout(r(*src), *kind, seg)
        }
    }
}

/// The activated-middle-layer step, fused or unfused.
///
/// The unfused chain is the *canonical* op order every strategy sees:
/// `spmm → [init-residual lin_comb] → matmul → [identity-map lin_comb] →
/// [add_bias] → relu → [residual add] → post_conv`. The fused kernel
/// replays the same scalar operations in the same order on the active
/// rows only, so the two paths are bit-identical and consume identical
/// RNG streams (the skip mask is drawn at the position `post_conv` would
/// draw it).
#[allow(clippy::too_many_arguments)]
fn exec_activated_conv(
    tape: &mut Tape,
    binding: &Binding,
    ctx: &mut ForwardCtx,
    allow_fuse: bool,
    src: NodeId,
    carry: NodeId,
    w: ParamId,
    b: Option<ParamId>,
    init_residual: Option<(NodeId, f32)>,
    identity_map: Option<f32>,
    residual: Option<NodeId>,
) -> NodeId {
    let wn = binding.node(w);
    let bn = b.map(|b| binding.node(b));
    let conv_shape = (tape.shape(src).0, tape.shape(wn).1);
    let carry_shape = tape.shape(carry);
    // Seed semantics: the skip connection applies only when its shape
    // already matches the conv output (ResGCN's first middle layer widens
    // in→hidden and goes without).
    let residual = residual.filter(|&res| tape.shape(res) == conv_shape);
    // `allow_fuse = false` (a tuned plan that measured fusion as a loss)
    // pins the unfused chain without touching the RNG stream: the mask is
    // then drawn inside `post_conv`, exactly where the unfused path draws
    // it anyway.
    let fused_mask = if allow_fuse {
        ctx.fused_skip_mask(conv_shape, carry_shape)
    } else {
        None
    };
    if let Some(mask) = fused_mask {
        return tape.skip_conv_step(
            ctx.adj,
            FusedStep {
                x: src,
                skip: carry,
                w: wn,
                b: bn,
                init_residual,
                identity_map,
                residual,
            },
            &mask,
        );
    }
    let p = tape.spmm(ctx.adj, src);
    let support = match init_residual {
        Some((h0, alpha)) => tape.lin_comb(&[(p, 1.0 - alpha), (h0, alpha)]),
        None => p,
    };
    let t = tape.matmul(support, wn);
    let z = match identity_map {
        Some(beta) => tape.lin_comb(&[(support, 1.0 - beta), (t, beta)]),
        None => t,
    };
    let z = match bn {
        Some(bn) => tape.add_bias(z, bn),
        None => z,
    };
    let a = tape.relu(z);
    let a = match residual {
        Some(res) => tape.add(a, res),
        None => a,
    };
    ctx.post_conv(tape, a, carry)
}
