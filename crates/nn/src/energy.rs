//! Dirichlet energy — the smoothness functional used by Zhou et al. [49]
//! (cited in the paper's related work) to regularize deep GCN training.
//!
//! `E(X) = ½ Σ_{(i,j) ∈ E} ‖ x_i/√(1+d_i) − x_j/√(1+d_j) ‖²`
//!
//! Over-smoothed features drive `E(X) → 0`; it complements MAD as a
//! diagnostic (MAD is scale-invariant, Dirichlet energy is not).

use skipnode_graph::Graph;
use skipnode_tensor::Matrix;

/// Degree-normalized Dirichlet energy of node features on a graph.
pub fn dirichlet_energy(features: &Matrix, graph: &Graph) -> f64 {
    assert_eq!(
        features.rows(),
        graph.num_nodes(),
        "one feature row per node"
    );
    let degrees = graph.degrees();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| 1.0 / ((d + 1) as f64).sqrt())
        .collect();
    let mut energy = 0.0f64;
    for &(u, v) in graph.edges() {
        let xu = features.row(u);
        let xv = features.row(v);
        let (su, sv) = (inv_sqrt[u], inv_sqrt[v]);
        for (&a, &b) in xu.iter().zip(xv) {
            let diff = a as f64 * su - b as f64 * sv;
            energy += diff * diff;
        }
    }
    0.5 * energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_graph::Graph;

    fn path(features: Matrix) -> Graph {
        let n = features.rows();
        let edges = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::new(n, edges, features, vec![0; n], 1)
    }

    #[test]
    fn energy_of_degree_scaled_constant_is_zero() {
        // x_i ∝ √(1+d_i) makes every normalized difference vanish — this is
        // exactly the over-smoothing subspace M.
        let feats =
            Matrix::from_rows(&[&[(2.0f32).sqrt()], &[(3.0f32).sqrt()], &[(2.0f32).sqrt()]]);
        let g = path(feats);
        assert!(dirichlet_energy(g.features(), &g) < 1e-10);
    }

    #[test]
    fn energy_positive_for_diverse_features() {
        let g = path(Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0]]));
        assert!(dirichlet_energy(g.features(), &g) > 0.1);
    }

    #[test]
    fn energy_scales_quadratically() {
        let g1 = path(Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]));
        let g2 = path(Matrix::from_rows(&[&[2.0], &[0.0], &[2.0]]));
        let e1 = dirichlet_energy(g1.features(), &g1);
        let e2 = dirichlet_energy(g2.features(), &g2);
        assert!((e2 / e1 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn propagation_decreases_energy() {
        // One application of Ã smooths features, so energy must not grow.
        let g = path(Matrix::from_rows(&[&[3.0], &[-2.0], &[1.0], &[5.0]]));
        let adj = g.gcn_adjacency();
        let before = dirichlet_energy(g.features(), &g);
        let after_feats = adj.spmm(g.features());
        let after = dirichlet_energy(&after_feats, &g);
        assert!(after < before, "energy rose: {after} > {before}");
    }
}
