//! Startup auto-tuning: time candidate kernel variants once per process
//! and pin the winners, so training epochs execute chosen variants with
//! zero per-epoch decision overhead.
//!
//! Three knobs are tuned, all **bit-neutral** by the accumulation-order
//! policy (`skipnode_tensor::simd` module docs), so a profile can never
//! change a result — only its wall-clock:
//!
//! - the GEMM microkernel tile ([`GemmTile`]),
//! - the SpMM worker schedule ([`SpmmSchedule`]: row-split vs
//!   nnz-balanced, and how many chunks),
//! - whether SkipNode middle layers route through the fused masked kernel
//!   (`fuse`; timed as full-SpMM vs active-row-subset SpMM at the
//!   strategy's skip rate).
//!
//! Profiles are cached by [`TuneKey`] — `(n, nnz, f, skip-rate decile)` —
//! so a sweep that trains many models on one graph pays the timing cost
//! once; [`timing_runs`] counts actual timing passes so benchmarks can
//! assert the second run re-times nothing. `SKIPNODE_TUNE=off|0` disables
//! tuning regardless of configuration, `SKIPNODE_TUNE=on|1` force-enables
//! it; otherwise [`crate::TrainConfig::tune`] decides.
//!
//! [`apply`] installs a profile: the GEMM tile goes to the process-global
//! dispatch ([`skipnode_tensor::simd::set_gemm_tile`]), the SpMM schedule
//! onto the adjacency's cache
//! ([`skipnode_sparse::CsrMatrix::set_spmm_schedule`]), and the profile
//! becomes [`active_profile`] so plan executions annotate their
//! [`crate::plan::LayerPlan`] with the chosen variants
//! ([`crate::plan::PlanTuning`]).

use crate::plan::PlanTuning;
use skipnode_sparse::{CsrMatrix, SpmmSchedule};
use skipnode_tensor::precision::{self, Storage};
use skipnode_tensor::simd::{self, GemmTile, Isa};
use skipnode_tensor::{pool, Matrix, SplitRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Cache key for a tuned profile: the problem shape a training run
/// presents to the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Node count.
    pub n: usize,
    /// Adjacency nonzeros.
    pub nnz: usize,
    /// Dominant dense width (the widest parameter column count).
    pub f: usize,
    /// Skip rate in tenths (`round(rate * 10)`), so nearby rates share a
    /// profile.
    pub skip_decile: u8,
    /// Active storage precision ([`precision::active`]). bf16 staging
    /// shifts the GEMM/SpMM bandwidth balance, so profiles timed under one
    /// mode must never be served to the other.
    pub precision: Storage,
}

impl TuneKey {
    /// Key for an adjacency, dense width, and SkipNode rate.
    pub fn new(adj: &CsrMatrix, f: usize, skip_rate: f64) -> Self {
        Self {
            n: adj.rows(),
            nnz: adj.nnz(),
            f,
            skip_decile: (skip_rate.clamp(0.0, 1.0) * 10.0).round() as u8,
            precision: precision::active(),
        }
    }
}

/// The winning kernel variants for one [`TuneKey`].
#[derive(Debug, Clone)]
pub struct TuneProfile {
    /// The ISA the timing ran under (informational; dispatch stays with
    /// [`simd::active`]).
    pub isa: Isa,
    /// Fastest GEMM microkernel tile.
    pub gemm_tile: GemmTile,
    /// Fastest SpMM schedule (`None` keeps the default nnz partition).
    pub spmm_schedule: Option<SpmmSchedule>,
    /// Whether the fused masked kernel beat full propagation at this skip
    /// rate (`true` whenever the rate is zero — fusion is then a no-op).
    pub fuse: bool,
    /// Storage precision the timing ran under (stamped into the plan
    /// annotation so bench metadata records what the kernels streamed).
    pub precision: Storage,
}

impl TuneProfile {
    /// The profile used when tuning is disabled: today's defaults.
    pub fn default_profile() -> Self {
        Self {
            isa: simd::active(),
            gemm_tile: simd::gemm_tile(),
            spmm_schedule: None,
            fuse: true,
            precision: precision::active(),
        }
    }

    /// The plan-IR annotation recording these choices.
    pub fn plan_tuning(&self) -> PlanTuning {
        PlanTuning {
            isa: self.isa.name(),
            gemm_tile: self.gemm_tile,
            spmm_schedule: self.spmm_schedule,
            fuse: self.fuse,
            precision: self.precision.name(),
        }
    }

    /// Short human-readable summary (bench JSON metadata).
    pub fn summary(&self) -> String {
        format!(
            "isa={} tile={} schedule={} fuse={} prec={}",
            self.isa.name(),
            self.gemm_tile.name(),
            self.spmm_schedule
                .map_or_else(|| "default".to_string(), |s| s.name()),
            self.fuse,
            self.precision.name(),
        )
    }
}

fn cache() -> &'static Mutex<HashMap<TuneKey, Arc<TuneProfile>>> {
    static CACHE: OnceLock<Mutex<HashMap<TuneKey, Arc<TuneProfile>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static TIMING_RUNS: AtomicU64 = AtomicU64::new(0);

fn active() -> &'static Mutex<Option<Arc<TuneProfile>>> {
    static ACTIVE: OnceLock<Mutex<Option<Arc<TuneProfile>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

/// How many timing passes have run in this process. A cache hit performs
/// none, which is what `bench_pr6` asserts for its second tuning call.
pub fn timing_runs() -> u64 {
    TIMING_RUNS.load(Ordering::Relaxed)
}

/// Resolve whether tuning should run: the `SKIPNODE_TUNE` environment
/// variable wins (`off`/`0` disables, `on`/`1` enables), otherwise the
/// caller's `requested` flag decides.
pub fn enabled(requested: bool) -> bool {
    match std::env::var("SKIPNODE_TUNE").as_deref() {
        Ok("off") | Ok("0") => false,
        Ok("on") | Ok("1") => true,
        _ => requested,
    }
}

/// The profile most recently installed by [`apply`] (plan executions read
/// it to annotate their IR), or `None` before any tuning.
pub fn active_profile() -> Option<Arc<TuneProfile>> {
    active().lock().unwrap().clone()
}

/// Install a profile process-wide: GEMM tile into the SIMD dispatch, SpMM
/// schedule onto `adj`'s kernel cache, and the profile as
/// [`active_profile`]. Everything installed is bit-neutral.
pub fn apply(profile: &Arc<TuneProfile>, adj: &CsrMatrix) {
    simd::set_gemm_tile(profile.gemm_tile);
    adj.set_spmm_schedule(profile.spmm_schedule);
    *active().lock().unwrap() = Some(Arc::clone(profile));
}

/// Fetch (or compute and cache) the profile for `(adj, f, skip_rate)`.
///
/// The first call for a key times candidates on synthetic operands shaped
/// like the real problem; later calls for the same key return the cached
/// winner without touching a clock.
pub fn profile_for(adj: &CsrMatrix, f: usize, skip_rate: f64) -> Arc<TuneProfile> {
    let key = TuneKey::new(adj, f, skip_rate);
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }
    // Time outside the cache lock: tuning one key must not block another
    // thread's cache hit. A racing miss on the same key times twice and
    // last-writer wins — harmless, the winners are deterministic-ish and
    // all candidates are bit-neutral.
    let profile = Arc::new(time_candidates(adj, f.max(1), skip_rate));
    cache().lock().unwrap().insert(key, Arc::clone(&profile));
    profile
}

/// Drop every cached profile and the active one (test isolation).
pub fn reset() {
    cache().lock().unwrap().clear();
    *active().lock().unwrap() = None;
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn time_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_candidates(adj: &CsrMatrix, f: usize, skip_rate: f64) -> TuneProfile {
    TIMING_RUNS.fetch_add(1, Ordering::Relaxed);
    let isa = simd::active();
    let n = adj.rows();
    let mut rng = SplitRng::new(0x70e5);
    let mut x = Matrix::zeros(n, f);
    for v in x.as_mut_slice() {
        *v = rng.normal();
    }

    // --- GEMM tile: (r × f)·(f × f), r capped so tuning stays cheap. ---
    let gemm_tile = if isa == Isa::Scalar {
        simd::gemm_tile()
    } else {
        let r = n.clamp(1, 1024);
        let mut b = Matrix::zeros(f, f);
        for v in b.as_mut_slice() {
            *v = rng.normal();
        }
        let a_rows = Matrix::from_vec(r, f, x.as_slice()[..r * f].to_vec());
        let mut out = vec![0.0f32; r * f];
        let mut best = (f64::INFINITY, simd::gemm_tile());
        for tile in GemmTile::ALL {
            let t = time_ns(3, || {
                out.iter_mut().for_each(|v| *v = 0.0);
                simd::gemm_rows(isa, tile, &a_rows, &b, &mut out, 0, r)
            });
            if t < best.0 {
                best = (t, tile);
            }
        }
        best.1
    };

    // --- SpMM schedule: the epoch propagation product Ã·X. ---
    let threads = pool::num_threads();
    let mut spmm_candidates: Vec<Option<SpmmSchedule>> = vec![None];
    if threads > 1 {
        for c in [threads, 2 * threads, 4 * threads] {
            spmm_candidates.push(Some(SpmmSchedule::RowSplit { chunks: c }));
            spmm_candidates.push(Some(SpmmSchedule::NnzBalanced { chunks: c }));
        }
    }
    let prior = adj.spmm_schedule();
    let mut best = (f64::INFINITY, None);
    for cand in spmm_candidates {
        adj.set_spmm_schedule(cand);
        let t = time_ns(3, || adj.spmm(&x));
        if t < best.0 {
            best = (t, cand);
        }
    }
    adj.set_spmm_schedule(prior);
    let spmm_schedule = best.1;

    // --- Fusion: full propagation vs active-row subset at the skip rate. ---
    let fuse = if skip_rate <= 0.0 {
        true
    } else {
        adj.set_spmm_schedule(spmm_schedule);
        let full = time_ns(3, || adj.spmm(&x));
        let kept: Vec<u32> = (0..n as u32)
            .filter(|_| !rng.bernoulli(skip_rate))
            .collect();
        let mut out = Matrix::zeros(kept.len(), f);
        let subset = time_ns(3, || adj.spmm_rows_subset(&x, &kept, &mut out));
        adj.set_spmm_schedule(prior);
        subset <= full
    };

    TuneProfile {
        isa,
        gemm_tile,
        spmm_schedule,
        fuse,
        precision: precision::active(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_sparse::CooBuilder;

    fn ring(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n {
            b.push_symmetric(v, (v + 1) % n, 0.5);
        }
        b.build()
    }

    #[test]
    fn profiles_are_cached_by_key_and_apply_installs_them() {
        let adj = ring(600);
        let before = timing_runs();
        let p1 = profile_for(&adj, 32, 0.5);
        let after_first = timing_runs();
        assert_eq!(after_first, before + 1, "first call must time candidates");
        let p2 = profile_for(&adj, 32, 0.5);
        assert_eq!(timing_runs(), after_first, "second call must hit the cache");
        assert!(Arc::ptr_eq(&p1, &p2));
        // A different width is a different key.
        let _ = profile_for(&adj, 64, 0.5);
        assert_eq!(timing_runs(), after_first + 1);

        apply(&p1, &adj);
        assert_eq!(simd::gemm_tile().name(), p1.gemm_tile.name());
        assert_eq!(adj.spmm_schedule(), p1.spmm_schedule);
        let active = active_profile().expect("apply sets the active profile");
        assert!(Arc::ptr_eq(&active, &p1));
        adj.set_spmm_schedule(None);
        // Bit-neutral or not, leave no tuner state behind for sibling
        // tests in this process.
        reset();
    }

    #[test]
    fn enabled_follows_request_without_env_override() {
        // The test env does not set SKIPNODE_TUNE, so the request decides.
        if std::env::var("SKIPNODE_TUNE").is_err() {
            assert!(enabled(true));
            assert!(!enabled(false));
        }
    }

    #[test]
    fn plan_tuning_records_the_choices() {
        let p = TuneProfile {
            isa: simd::active(),
            gemm_tile: simd::GemmTile::T8x8,
            spmm_schedule: Some(SpmmSchedule::NnzBalanced { chunks: 4 }),
            fuse: false,
            precision: Storage::Bf16,
        };
        let t = p.plan_tuning();
        assert_eq!(t.gemm_tile.name(), "8x8");
        assert_eq!(t.spmm_schedule.unwrap().name(), "nnz_balanced:4");
        assert!(!t.fuse);
        assert_eq!(t.precision, "bf16");
        assert!(p.summary().contains("nnz_balanced:4"));
        assert!(p.summary().contains("prec=bf16"));

        // Keys capture the active storage mode, and two keys differing
        // only in precision must not collide.
        let adj = ring(64);
        let base = TuneKey::new(&adj, 16, 0.5);
        assert_eq!(base.precision, precision::active());
        let k_f32 = TuneKey {
            precision: Storage::F32,
            ..base
        };
        let k_bf16 = TuneKey {
            precision: Storage::Bf16,
            ..base
        };
        assert_ne!(k_f32, k_bf16);
    }
}
