//! Parameter checkpointing: a tiny self-describing binary format for
//! saving and restoring a [`ParamStore`], so trained models survive
//! process restarts (and experiment binaries can hand models to each
//! other).
//!
//! Format (little-endian):
//! ```text
//! magic "SKPN" | version u32 | param_count u32 |
//!   per param: name_len u32 | name utf8 | rows u32 | cols u32 | f32 * rows*cols
//! ```

use crate::param::ParamStore;
use skipnode_tensor::Matrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKPN";
const VERSION: u32 = 1;

/// Serialize the store to any writer.
pub fn write_checkpoint<W: Write>(store: &ParamStore, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let m = store.value(id);
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a store from any reader.
pub fn read_checkpoint<R: Read>(mut r: R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shape overflow"))?;
        let mut data = vec![0.0f32; len];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        store.add(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Save a store to a file.
pub fn save_checkpoint(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_checkpoint(store, io::BufWriter::new(f))
}

/// Load a store from a file.
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let f = std::fs::File::open(path)?;
    read_checkpoint(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_tensor::SplitRng;

    fn sample_store() -> ParamStore {
        let mut rng = SplitRng::new(5);
        let mut store = ParamStore::new();
        store.add("w0", rng.uniform_matrix(3, 4, -1.0, 1.0));
        store.add("b0", Matrix::zeros(1, 4));
        store.add("gamma", rng.uniform_matrix(1, 11, 0.0, 1.0));
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_checkpoint(&store, &mut buf).unwrap();
        let loaded = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().into_iter().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a), loaded.value(b));
        }
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let path = std::env::temp_dir().join("skipnode_ckpt_test.skpn");
        save_checkpoint(&store, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00";
        assert!(read_checkpoint(&buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_checkpoint(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }
}
