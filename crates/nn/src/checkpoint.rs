//! Parameter and model checkpointing: a tiny self-describing binary
//! format for saving and restoring a [`ParamStore`], so trained models
//! survive process restarts (and experiment binaries can hand models to
//! each other).
//!
//! Two versions share the magic and the parameter block:
//!
//! ```text
//! v1 (params only):
//! magic "SKPN" | version=1 u32 | param_count u32 |
//!   per param: name_len u32 | name utf8 | rows u32 | cols u32 | f32 * rows*cols
//!
//! v2 (model checkpoint = backbone spec + params):
//! magic "SKPN" | version=2 u32 |
//!   spec: name_len u32 | name utf8 | in_dim u32 | hidden u32 | out_dim u32
//!       | depth u32 | dropout f64 |
//!   param block as in v1
//! ```
//!
//! All integers and floats are little-endian. [`ModelCheckpoint`] is the
//! v2 surface: it captures a trained model together with the
//! [`BackboneSpec`] needed to rebuild it, and [`ModelCheckpoint::restore`]
//! rebuilds the architecture and overwrites every freshly initialized
//! parameter with the saved bytes — evaluation after a round trip is
//! bitwise identical to the captured model.

use crate::models::{BackboneSpec, Model};
use crate::param::ParamStore;
use skipnode_tensor::{Matrix, SplitRng};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKPN";
const VERSION: u32 = 1;
const MODEL_VERSION: u32 = 2;

/// Serialize the store to any writer.
pub fn write_checkpoint<W: Write>(store: &ParamStore, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_params(store, &mut w)
}

/// Deserialize a store from any reader.
pub fn read_checkpoint<R: Read>(mut r: R) -> io::Result<ParamStore> {
    expect_version(&mut r, VERSION)?;
    read_params(&mut r)
}

/// The parameter block shared by both format versions.
fn write_params<W: Write>(store: &ParamStore, w: &mut W) -> io::Result<()> {
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for id in store.ids() {
        write_str(w, store.name(id))?;
        let m = store.value(id);
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_params<R: Read>(r: &mut R) -> io::Result<ParamStore> {
    let count = read_u32(r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name = read_str(r)?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shape overflow"))?;
        let mut data = vec![0.0f32; len];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        store.add(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Check the magic and that the version field equals `want`.
fn expect_version<R: Read>(r: &mut R, want: u32) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(r)?;
    if version != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version} (expected {want})"),
        ));
    }
    Ok(())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// A trained model captured for serving: the [`BackboneSpec`] that rebuilds
/// the architecture plus every trained parameter.
pub struct ModelCheckpoint {
    /// Architecture recipe (name, dims, depth, dropout).
    pub spec: BackboneSpec,
    /// Trained parameters in registration order.
    pub params: ParamStore,
}

impl ModelCheckpoint {
    /// Capture a model's current parameters alongside its spec.
    pub fn capture(spec: &BackboneSpec, model: &dyn Model) -> Self {
        let store = model.store();
        let mut params = ParamStore::new();
        for id in store.ids() {
            params.add(store.name(id).to_string(), store.value(id).clone());
        }
        Self {
            spec: spec.clone(),
            params,
        }
    }

    /// Rebuild the backbone from the spec and overwrite its fresh
    /// initialization with the saved parameters. Names and shapes must
    /// match the rebuilt store exactly — a mismatch means the checkpoint
    /// does not belong to this spec and is rejected as corrupt.
    pub fn restore(&self) -> io::Result<Box<dyn Model>> {
        // Initialization draws are discarded (every value is overwritten),
        // so the rebuild seed is immaterial.
        let mut rng = SplitRng::new(0);
        let mut model = self
            .spec
            .build(&mut rng)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let store = model.store_mut();
        if store.len() != self.params.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} params, rebuilt {:?} has {}",
                    self.params.len(),
                    self.spec.name,
                    store.len()
                ),
            ));
        }
        for (dst, src) in store.ids().into_iter().zip(self.params.ids()) {
            let (dn, sn) = (store.name(dst), self.params.name(src));
            if dn != sn {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("param name mismatch: checkpoint {sn:?} vs rebuilt {dn:?}"),
                ));
            }
            let sv = self.params.value(src);
            if store.value(dst).shape() != sv.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("param {sn:?} shape mismatch"),
                ));
            }
            *store.value_mut(dst) = sv.clone();
        }
        Ok(model)
    }

    /// Serialize (format v2) to any writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&MODEL_VERSION.to_le_bytes())?;
        write_str(&mut w, &self.spec.name)?;
        for dim in [
            self.spec.in_dim,
            self.spec.hidden,
            self.spec.out_dim,
            self.spec.depth,
        ] {
            w.write_all(&(dim as u32).to_le_bytes())?;
        }
        w.write_all(&self.spec.dropout.to_le_bytes())?;
        write_params(&self.params, &mut w)
    }

    /// Deserialize (format v2) from any reader.
    pub fn read<R: Read>(mut r: R) -> io::Result<Self> {
        expect_version(&mut r, MODEL_VERSION)?;
        let name = read_str(&mut r)?;
        let in_dim = read_u32(&mut r)? as usize;
        let hidden = read_u32(&mut r)? as usize;
        let out_dim = read_u32(&mut r)? as usize;
        let depth = read_u32(&mut r)? as usize;
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        let dropout = f64::from_le_bytes(buf);
        let spec = BackboneSpec::new(&name, in_dim, hidden, out_dim, depth, dropout);
        let params = read_params(&mut r)?;
        Ok(Self { spec, params })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write(io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = std::fs::File::open(path)?;
        Self::read(io::BufReader::new(f))
    }
}

/// Save a store to a file.
pub fn save_checkpoint(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_checkpoint(store, io::BufWriter::new(f))
}

/// Load a store from a file.
pub fn load_checkpoint(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let f = std::fs::File::open(path)?;
    read_checkpoint(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_tensor::SplitRng;

    fn sample_store() -> ParamStore {
        let mut rng = SplitRng::new(5);
        let mut store = ParamStore::new();
        store.add("w0", rng.uniform_matrix(3, 4, -1.0, 1.0));
        store.add("b0", Matrix::zeros(1, 4));
        store.add("gamma", rng.uniform_matrix(1, 11, 0.0, 1.0));
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_checkpoint(&store, &mut buf).unwrap();
        let loaded = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for (a, b) in store.ids().into_iter().zip(loaded.ids()) {
            assert_eq!(store.name(a), loaded.name(b));
            assert_eq!(store.value(a), loaded.value(b));
        }
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let path = std::env::temp_dir().join("skipnode_ckpt_test.skpn");
        save_checkpoint(&store, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00";
        assert!(read_checkpoint(&buf[..]).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_checkpoint(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_checkpoint(buf.as_slice()).is_err());
    }

    /// Ring graph + deterministic features for the model round trips.
    fn eval_graph(in_dim: usize, classes: usize) -> skipnode_graph::Graph {
        let n = 24;
        let mut rng = SplitRng::new(9);
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let features = rng.uniform_matrix(n, in_dim, -1.0, 1.0);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        skipnode_graph::Graph::new(n, edges, features, labels, classes)
    }

    #[test]
    fn model_checkpoint_round_trip_eval_is_bitwise_identical() {
        use crate::context::Strategy;
        use crate::trainer::evaluate;
        for name in ["gcn", "gcnii", "appnp"] {
            let spec = BackboneSpec::new(name, 6, 8, 3, 3, 0.1);
            let mut rng = SplitRng::new(31);
            let model = spec.build(&mut rng).unwrap();
            let graph = eval_graph(6, 3);
            let adj = graph.gcn_adjacency();

            let ckpt = ModelCheckpoint::capture(&spec, model.as_ref());
            let mut buf = Vec::new();
            ckpt.write(&mut buf).unwrap();
            let loaded = ModelCheckpoint::read(buf.as_slice()).unwrap();
            assert_eq!(loaded.spec.name, spec.name);
            assert_eq!(loaded.spec.depth, spec.depth);
            assert_eq!(loaded.spec.dropout, spec.dropout);
            let restored = loaded.restore().unwrap();

            let (want, _) = evaluate(
                model.as_ref(),
                &graph,
                &adj,
                &Strategy::None,
                &mut SplitRng::new(1),
            );
            let (got, _) = evaluate(
                restored.as_ref(),
                &graph,
                &adj,
                &Strategy::None,
                &mut SplitRng::new(1),
            );
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "{name}: restored eval differs"
            );
        }
    }

    #[test]
    fn model_checkpoint_file_round_trip_and_mismatch_rejection() {
        let spec = BackboneSpec::new("sgc", 5, 4, 2, 2, 0.0);
        let mut rng = SplitRng::new(7);
        let model = spec.build(&mut rng).unwrap();
        let ckpt = ModelCheckpoint::capture(&spec, model.as_ref());
        let path = std::env::temp_dir().join("skipnode_model_ckpt_test.skpn");
        ckpt.save(&path).unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(loaded.restore().is_ok());

        // A spec that rebuilds different shapes must be rejected.
        let lying = ModelCheckpoint {
            spec: BackboneSpec::new("sgc", 9, 4, 2, 2, 0.0),
            params: loaded.params,
        };
        assert!(lying.restore().is_err());

        // v1 readers must reject v2 streams and vice versa.
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        assert!(read_checkpoint(buf.as_slice()).is_err());
        let mut v1 = Vec::new();
        write_checkpoint(&ckpt.params, &mut v1).unwrap();
        assert!(ModelCheckpoint::read(v1.as_slice()).is_err());
    }
}
