//! Glue between the backbone zoo and the compiled training engine.
//!
//! [`compile_train_program`] records one eager probe forward (train
//! semantics, probe RNG) and compiles the resulting tape into a
//! [`TrainProgram`] — the fixed forward+backward schedule the trainer
//! replays every epoch. [`StrategySampler`] adapts a [`Strategy`] to the
//! engine's [`EpochSampler`] callback so per-epoch skip masks are drawn
//! with exactly the RNG consumption of the eager path.

use crate::context::{sample_skip_mask_segmented, ForwardCtx, Strategy};
use crate::models::Model;
use skipnode_autograd::{CompileError, EpochSampler, Tape, TrainProgram};
use skipnode_core::SkipNodeConfig;
use skipnode_graph::{Graph, GraphBatch, Reordering};
use skipnode_sparse::CsrMatrix;
use skipnode_tensor::{Matrix, SegmentTable, SplitRng};
use std::sync::Arc;

/// Why a model could not be compiled for epoch replay.
///
/// The trainer never falls back *silently*: [`crate::TrainEngine::Auto`]
/// only goes eager on [`EngineError::NoPlan`] (a documented property of the
/// model, e.g. GAT's bespoke attention forward), while
/// [`EngineError::Unsupported`] — a plan exists but the recorded tape holds
/// an op the replay engine cannot refresh — is a hard error naming the op.
#[derive(Debug)]
pub enum EngineError {
    /// The model exposes no layer plan (bespoke forward, e.g. GAT), so
    /// there is no compilation contract to hold it to.
    NoPlan {
        /// Backbone name.
        model: &'static str,
    },
    /// The model has a plan but its recorded tape failed to compile.
    Unsupported {
        /// Backbone name.
        model: &'static str,
        /// The offending op, from the replay compiler.
        source: CompileError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoPlan { model } => write!(
                f,
                "model {model:?} has no layer plan, so its forward cannot be \
                 compiled for epoch replay; train it with the eager engine"
            ),
            EngineError::Unsupported { model, source } => write!(
                f,
                "model {model:?} recorded a tape the compiled training engine \
                 does not support: {source}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::NoPlan { .. } => None,
            EngineError::Unsupported { source, .. } => Some(source),
        }
    }
}

/// Draws per-layer skip masks for [`TrainProgram::begin_epoch`] using the
/// strategy's [`SkipNodeConfig`] — one [`SkipNodeConfig::sample_mask`] call
/// per skip layer, the exact RNG consumption of the eager forward.
pub struct StrategySampler<'a> {
    cfg: Option<&'a SkipNodeConfig>,
    degrees: &'a [usize],
    order: Option<&'a Reordering>,
    segments: Option<&'a SegmentTable>,
}

impl<'a> StrategySampler<'a> {
    /// Sampler for one training epoch.
    pub fn new(strategy: &'a Strategy, degrees: &'a [usize]) -> Self {
        let cfg = match strategy {
            Strategy::SkipNode(cfg) | Strategy::SkipNodeTrainEval(cfg) => Some(cfg),
            _ => None,
        };
        Self {
            cfg,
            degrees,
            order: None,
            segments: None,
        }
    }

    /// Sample in logical order through a cache-locality reordering
    /// (typically [`Graph::node_order`]), matching the eager forward's
    /// order-covariant draws.
    pub fn with_order(mut self, order: Option<&'a Reordering>) -> Self {
        self.order = order;
        self
    }

    /// Draw one independent mask per graph of a packed batch, matching the
    /// segment-aware eager forward (see
    /// [`crate::context::sample_skip_mask_segmented`]).
    pub fn with_segments(mut self, segments: Option<&'a SegmentTable>) -> Self {
        self.segments = segments;
        self
    }
}

impl EpochSampler for StrategySampler<'_> {
    fn skip_mask(&mut self, rng: &mut SplitRng, out: &mut [bool]) {
        let cfg = self
            .cfg
            .expect("recorded tape has skip layers but the strategy samples no masks");
        out.copy_from_slice(&sample_skip_mask_segmented(
            cfg,
            self.degrees,
            self.order,
            self.segments,
            rng,
        ));
    }
}

/// Record one probe forward of `model` (train semantics) and compile it
/// into a [`TrainProgram`].
///
/// The probe RNG is throwaway: tape *topology* depends only on the plan
/// and strategy, never on drawn values, and every stochastic record is
/// refreshed by [`TrainProgram::begin_epoch`] before the first replay.
/// Parameter values are bound at probe time but overwritten each epoch by
/// [`TrainProgram::load_params`], so the probe can be taken once before
/// training starts.
pub fn compile_train_program(
    model: &dyn Model,
    graph: &Graph,
    full_adj: &Arc<CsrMatrix>,
    strategy: &Strategy,
    fuse: bool,
) -> Result<TrainProgram, EngineError> {
    compile_probe(
        model,
        graph.features_arc(),
        &graph.degrees(),
        full_adj,
        strategy,
        fuse,
        graph.node_order(),
        None,
    )
}

/// [`compile_train_program`] over a packed multi-graph batch: the probe
/// forward runs with [`ForwardCtx::segments`] set, so segment-aware ops
/// (per-graph skip masks, [`crate::plan::PlanOp::Readout`]) record into
/// the compiled tape exactly as the eager batched forward plays them.
pub fn compile_train_program_packed(
    model: &dyn Model,
    batch: &GraphBatch,
    full_adj: &Arc<CsrMatrix>,
    strategy: &Strategy,
    fuse: bool,
) -> Result<TrainProgram, EngineError> {
    compile_probe(
        model,
        batch.features_arc(),
        batch.degrees(),
        full_adj,
        strategy,
        fuse,
        None,
        Some(batch.segments()),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn compile_probe(
    model: &dyn Model,
    features: Arc<Matrix>,
    degrees: &[usize],
    full_adj: &Arc<CsrMatrix>,
    strategy: &Strategy,
    fuse: bool,
    node_order: Option<&Reordering>,
    segments: Option<&Arc<SegmentTable>>,
) -> Result<TrainProgram, EngineError> {
    if model.plan().is_none() {
        return Err(EngineError::NoPlan {
            model: model.name(),
        });
    }
    let mut tape = Tape::new();
    let binding = model.store().bind(&mut tape);
    let adj_id = tape.register_adj(Arc::clone(full_adj));
    let x = tape.constant_shared(features);
    let mut probe_rng = SplitRng::new(0x5eed);
    let mut ctx = ForwardCtx::new(adj_id, x, degrees, strategy, true, &mut probe_rng);
    ctx.fuse = fuse;
    ctx.node_order = node_order;
    ctx.segments = segments;
    let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
    TrainProgram::compile(tape, heads).map_err(|source| EngineError::Unsupported {
        model: model.name(),
        source,
    })
}
