//! The classification training harness: node-level (single graph or
//! packed batch) and graph-level (packed batch + readout head) share one
//! core loop over a [`TrainData`] view.

use crate::context::{ForwardCtx, Strategy};
use crate::diagnostics::{DiagnosticsRecorder, EpochDiagnostics};
use crate::engine::{compile_probe, EngineError, StrategySampler};
use crate::metrics::{accuracy, mean_average_distance};
use crate::models::{Consistency, Model};
use crate::optim::{Adam, AdamConfig};
use crate::schedule::{clip_global_norm, LrSchedule};
use skipnode_autograd::{softmax_cross_entropy, Tape, TrainProgram};
use skipnode_graph::{Graph, GraphBatch, Reordering, Split};
use skipnode_sparse::CsrMatrix;
use skipnode_tensor::precision::{self, Storage};
use skipnode_tensor::{workspace, Matrix, SegmentTable, SplitRng};
use std::sync::Arc;

/// Which executor drives the per-epoch training step.
///
/// Both executors are bit-identical: same losses, same gradients, same
/// parameter trajectories, same RNG streams (the equivalence tests in
/// `tests/train_engine_identity.rs` pin this for every backbone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainEngine {
    /// Compile the model's tape once per run and replay it every epoch;
    /// models without a layer plan (GAT) fall back to [`TrainEngine::Eager`].
    /// A model that *has* a plan but fails to compile is a hard error, not
    /// a silent fallback.
    #[default]
    Auto,
    /// Require the compiled program; panics with the [`EngineError`] when
    /// the model cannot compile.
    Compiled,
    /// Record a fresh eager tape every epoch (the reference path).
    Eager,
}

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience on validation accuracy (0 disables).
    pub patience: usize,
    /// Optimizer settings (lr, weight decay, …).
    pub adam: AdamConfig,
    /// Evaluate every this many epochs.
    pub eval_every: usize,
    /// Record [`EpochDiagnostics`] every this many epochs (0 disables).
    pub diagnostics_every: usize,
    /// Compute MAD on recorded epochs (costs one extra metric pass).
    pub record_mad: bool,
    /// Learning-rate schedule applied on top of `adam.lr`.
    pub lr_schedule: LrSchedule,
    /// Optional global-norm gradient clipping threshold.
    pub clip_norm: Option<f64>,
    /// Per-epoch executor (see [`TrainEngine`]).
    pub engine: TrainEngine,
    /// Route SkipNode middle layers through the fused masked kernel.
    pub fuse: bool,
    /// Run the startup auto-tuner (see [`crate::autotune`]) before the
    /// first epoch and train with the winning kernel variants. Cached per
    /// problem shape, bit-neutral, overridable via `SKIPNODE_TUNE`.
    pub tune: bool,
    /// Storage precision for this run: `None` inherits the process mode
    /// (`SKIPNODE_PRECISION`); `Some(mode)` forces it for the duration of
    /// the run and restores the previous mode afterwards.
    pub precision: Option<Storage>,
    /// Tape-level gradient checkpointing for the compiled engine: split
    /// the schedule into this many recompute segments (`0`/`1` disables).
    /// Bitwise-neutral — forward values and gradients are unchanged; only
    /// peak activation residency drops. Ignored by the eager engine.
    pub checkpoint_segments: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            patience: 40,
            adam: AdamConfig::default(),
            eval_every: 1,
            diagnostics_every: 0,
            record_mad: false,
            lr_schedule: LrSchedule::Constant,
            clip_norm: None,
            engine: TrainEngine::default(),
            fuse: true,
            tune: false,
            precision: None,
            checkpoint_segments: 0,
        }
    }
}

/// Scoped override of the process storage precision: installs `mode` on
/// construction and restores the previous mode on drop, so a forced-bf16
/// run cannot leak its mode into later runs in the same process.
struct PrecisionGuard {
    prev: Storage,
}

impl PrecisionGuard {
    fn install(mode: Option<Storage>) -> Option<Self> {
        mode.map(|m| Self {
            prev: precision::force(m),
        })
    }
}

impl Drop for PrecisionGuard {
    fn drop(&mut self) {
        precision::force(self.prev);
    }
}

/// Everything the core training loop needs from its data source, borrowed
/// from either a single [`Graph`] or a packed [`GraphBatch`]. `labels` and
/// the split index the *rows of the model's logits* — nodes for node
/// classification, graphs for graph classification (where the plan ends in
/// a readout) — so one loop serves both protocols.
pub(crate) struct TrainData<'a> {
    pub features: Arc<Matrix>,
    pub degrees: Vec<usize>,
    pub labels: &'a [usize],
    pub full_adj: Arc<CsrMatrix>,
    pub edges: &'a [(usize, usize)],
    pub n: usize,
    pub node_order: Option<&'a Reordering>,
    pub segments: Option<&'a Arc<SegmentTable>>,
}

impl<'a> TrainData<'a> {
    fn from_graph(graph: &'a Graph) -> Self {
        Self {
            features: graph.features_arc(),
            degrees: graph.degrees(),
            labels: graph.labels(),
            full_adj: graph.gcn_adjacency(),
            edges: graph.edges(),
            n: graph.num_nodes(),
            node_order: graph.node_order(),
            segments: None,
        }
    }

    fn from_batch(batch: &'a GraphBatch, labels: &'a [usize]) -> Self {
        Self {
            features: batch.features_arc(),
            degrees: batch.degrees().to_vec(),
            labels,
            full_adj: batch.gcn_adjacency(),
            edges: batch.edges(),
            n: batch.num_nodes(),
            node_order: None,
            segments: Some(batch.segments()),
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Test accuracy at the best-validation epoch (the reported number).
    pub test_accuracy: f64,
    /// Best validation accuracy.
    pub val_accuracy: f64,
    /// Epoch achieving the best validation accuracy.
    pub best_epoch: usize,
    /// Epochs actually run (≤ `epochs` with early stopping).
    pub epochs_run: usize,
    /// Recorded per-epoch diagnostics (empty unless enabled).
    pub diagnostics: Vec<EpochDiagnostics>,
    /// MAD of the penultimate features at the final evaluation (Fig. 5b).
    pub final_mad: Option<f64>,
}

/// Evaluation forward pass on the full graph: returns logits and, when the
/// model exposes one, the penultimate representation.
///
/// Runs on a no-grad inference tape: the forward is recorded shape-only,
/// then [`Tape::run`] materializes just the logits/penultimate dependency
/// cone, recycling every intermediate at its last use. The outputs are
/// moved out of the tape, not cloned.
pub fn evaluate(
    model: &dyn Model,
    graph: &Graph,
    full_adj: &Arc<CsrMatrix>,
    strategy: &Strategy,
    rng: &mut SplitRng,
) -> (Matrix, Option<Matrix>) {
    let mut data = TrainData::from_graph(graph);
    data.full_adj = Arc::clone(full_adj);
    evaluate_data(Tape::inference(), model, &data, strategy, rng)
}

/// [`evaluate`] over a packed multi-graph batch: the forward runs with
/// segment-aware semantics, so readout plans return `num_graphs × C`
/// graph logits (node-level plans return packed node logits).
pub fn evaluate_packed(
    model: &dyn Model,
    batch: &GraphBatch,
    strategy: &Strategy,
    rng: &mut SplitRng,
) -> (Matrix, Option<Matrix>) {
    let data = TrainData::from_batch(batch, batch.node_labels());
    evaluate_data(Tape::inference(), model, &data, strategy, rng)
}

/// [`evaluate`] on the int8 inference tape: leaf weight matrices are
/// quantized per column (symmetric, i8) and dense products run through the
/// integer GEMM with i32 accumulation. Tolerance-class — logits track the
/// f32 path but are not bitwise equal; argmax agreement is what the
/// accuracy gate in `bench_pr8` checks.
pub fn evaluate_quantized(
    model: &dyn Model,
    graph: &Graph,
    full_adj: &Arc<CsrMatrix>,
    strategy: &Strategy,
    rng: &mut SplitRng,
) -> (Matrix, Option<Matrix>) {
    let mut data = TrainData::from_graph(graph);
    data.full_adj = Arc::clone(full_adj);
    evaluate_data(Tape::inference_quantized(), model, &data, strategy, rng)
}

fn evaluate_data(
    mut tape: Tape,
    model: &dyn Model,
    data: &TrainData<'_>,
    strategy: &Strategy,
    rng: &mut SplitRng,
) -> (Matrix, Option<Matrix>) {
    let binding = model.store().bind(&mut tape);
    let adj = tape.register_adj(Arc::clone(&data.full_adj));
    let x = tape.constant_shared(Arc::clone(&data.features));
    let mut ctx = ForwardCtx::new(adj, x, &data.degrees, strategy, false, rng);
    ctx.node_order = data.node_order;
    ctx.segments = data.segments;
    let out = model.forward(&mut tape, &binding, &mut ctx);
    let mut keep = vec![out];
    if let Some(p) = ctx.penultimate {
        if p != out {
            keep.push(p);
        }
    }
    tape.run(&keep);
    let penultimate = ctx.penultimate.map(|p| {
        if p == out {
            workspace::take_copy(tape.value(out))
        } else {
            tape.take_value(p)
        }
    });
    (tape.take_value(out), penultimate)
}

/// Train a node classifier; returns the standard "test accuracy at best
/// validation epoch" protocol plus optional diagnostics.
pub fn train_node_classifier(
    model: &mut dyn Model,
    graph: &Graph,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    split.validate(graph.num_nodes());
    let data = TrainData::from_graph(graph);
    train_classifier_core(model, &data, split, strategy, cfg, rng, Some(graph))
}

/// Train a *node* classifier over a packed multi-graph batch: the split
/// indexes packed node rows and the loss is the usual per-node softmax
/// cross-entropy. A 1-graph batch is byte-identical to
/// [`train_node_classifier`] on that graph (same losses, gradients, RNG
/// stream, and final parameters) — `tests/packed_identity.rs` pins it.
pub fn train_packed_node_classifier(
    model: &mut dyn Model,
    batch: &GraphBatch,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    split.validate(batch.num_nodes());
    let data = TrainData::from_batch(batch, batch.node_labels());
    train_classifier_core(model, &data, split, strategy, cfg, rng, None)
}

/// Train a *graph* classifier over a packed batch: the model's plan must
/// end in a [`crate::plan::PlanOp::Readout`] (e.g.
/// [`crate::models::GraphClassifier`]) so logits are `num_graphs × C`;
/// the split indexes graphs and the loss is batched cross-entropy over
/// the train graphs' rows.
pub fn train_graph_classifier(
    model: &mut dyn Model,
    batch: &GraphBatch,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    rng: &mut SplitRng,
) -> TrainResult {
    split.validate(batch.num_graphs());
    let data = TrainData::from_batch(batch, batch.graph_labels());
    train_classifier_core(model, &data, split, strategy, cfg, rng, None)
}

fn train_classifier_core(
    model: &mut dyn Model,
    data: &TrainData<'_>,
    split: &Split,
    strategy: &Strategy,
    cfg: &TrainConfig,
    rng: &mut SplitRng,
    diag_graph: Option<&Graph>,
) -> TrainResult {
    let _precision = PrecisionGuard::install(cfg.precision);
    let full_adj = Arc::clone(&data.full_adj);
    let degrees = &data.degrees;
    if crate::autotune::enabled(cfg.tune) {
        // One cached timing pass per problem shape; every installed choice
        // is bit-neutral, so tuned and untuned runs produce identical
        // numbers. `ForwardCtx::new` picks the applied profile up.
        let f = model
            .store()
            .values()
            .map(|m| m.cols())
            .max()
            .unwrap_or_else(|| data.features.cols());
        let rate = match strategy {
            Strategy::SkipNode(c) | Strategy::SkipNodeTrainEval(c) => c.rate(),
            _ => 0.0,
        };
        let profile = crate::autotune::profile_for(&full_adj, f, rate);
        crate::autotune::apply(&profile, &full_adj);
    }
    let adj_list = (cfg.record_mad || cfg.diagnostics_every > 0)
        .then(|| diag_graph.map(|g| g.adjacency_list()))
        .flatten();
    let mut opt = Adam::new(model.store(), cfg.adam);
    let mut recorder = DiagnosticsRecorder::new(cfg.diagnostics_every);

    // Engine selection happens once per run: the compiled program is the
    // epoch-resident schedule every training step replays. Only a model
    // that advertises *no* plan (GAT) falls back to eager; a plan that
    // fails to compile is a bug we refuse to paper over.
    let compile = |model: &dyn Model| {
        compile_probe(
            model,
            Arc::clone(&data.features),
            degrees,
            &full_adj,
            strategy,
            cfg.fuse,
            data.node_order,
            data.segments,
        )
    };
    let mut program: Option<TrainProgram> = match cfg.engine {
        TrainEngine::Eager => None,
        TrainEngine::Compiled => Some(compile(model).unwrap_or_else(|e| panic!("{e}"))),
        TrainEngine::Auto => match compile(model) {
            Ok(p) => Some(p),
            Err(EngineError::NoPlan { .. }) => None,
            Err(e) => panic!("{e}"),
        },
    };
    if let Some(p) = program.as_mut() {
        p.enable_checkpointing(cfg.checkpoint_segments);
    }

    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = 0.0f64;
    let mut best_epoch = 0usize;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;
    let mut last_mad = None;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let epoch_t0 = std::time::Instant::now();
        // ---- training step ----
        // Both branches consume `rng` identically (epoch adjacency, then
        // one split for the forward) and produce identical losses, seeds,
        // and parameter gradients — the engine-identity tests pin it.
        let adj = strategy.epoch_adjacency_edges(data.n, data.edges, &full_adj, true, rng);
        let (mean_loss, first_grad_norm, mut param_grads) = if let Some(program) = program.as_mut()
        {
            program.set_adjacency(adj);
            program.load_params(model.store().values());
            let mut fwd_rng = rng.split();
            let mut sampler = StrategySampler::new(strategy, degrees)
                .with_order(data.node_order)
                .with_segments(data.segments.map(Arc::as_ref));
            program.begin_epoch(&mut sampler, &mut fwd_rng);
            program.replay_forward();
            let heads = program.heads().to_vec();
            let logits: Vec<&Matrix> = heads.iter().map(|&h| program.value(h)).collect();
            let (mean_loss, first_grad_norm, seeds) =
                build_seeds(&logits, data.labels, split, model.consistency());
            let param_grads =
                program.backward(heads.iter().zip(seeds).map(|(&h, s)| (h, s)).collect());
            (mean_loss, first_grad_norm, param_grads)
        } else {
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let adj_id = tape.register_adj(adj);
            let x = tape.constant_shared(Arc::clone(&data.features));
            let mut fwd_rng = rng.split();
            let mut ctx = ForwardCtx::new(adj_id, x, degrees, strategy, true, &mut fwd_rng);
            ctx.fuse = cfg.fuse;
            ctx.node_order = data.node_order;
            ctx.segments = data.segments;
            let heads = model.forward_heads(&mut tape, &binding, &mut ctx);
            let logits: Vec<&Matrix> = heads.iter().map(|&h| tape.value(h)).collect();
            let (mean_loss, first_grad_norm, seeds) =
                build_seeds(&logits, data.labels, split, model.consistency());
            let grads =
                tape.backward_multi(heads.iter().zip(seeds).map(|(&h, s)| (h, s)).collect());
            let param_grads: Vec<Option<Matrix>> = {
                let mut grads = grads;
                binding.nodes().iter().map(|&n| grads.take(n)).collect()
            };
            (mean_loss, first_grad_norm, param_grads)
        };
        if let Some(max_norm) = cfg.clip_norm {
            clip_global_norm(&mut param_grads, max_norm);
        }
        opt.set_lr(cfg.adam.lr * cfg.lr_schedule.factor(epoch));
        opt.step(model.store_mut(), &param_grads);
        // Recycle the gradient buffers for the next epoch's backward pass.
        for g in param_grads.drain(..).flatten() {
            workspace::give(g);
        }
        let train_seconds = epoch_t0.elapsed().as_secs_f64();

        // ---- evaluation ----
        let should_eval = epoch % cfg.eval_every == 0 || epoch + 1 == cfg.epochs;
        let wants_diag = recorder.wants(epoch);
        if should_eval || wants_diag {
            let mut eval_rng = rng.split();
            let (logits, penultimate) =
                evaluate_data(Tape::inference(), model, data, strategy, &mut eval_rng);
            let val_acc = if split.val.is_empty() {
                accuracy(&logits, data.labels, &split.train)
            } else {
                accuracy(&logits, data.labels, &split.val)
            };
            let test_acc = if split.test.is_empty() {
                val_acc
            } else {
                accuracy(&logits, data.labels, &split.test)
            };
            let mad = match (&adj_list, &penultimate) {
                (Some(al), Some(p)) if cfg.record_mad || wants_diag => {
                    Some(mean_average_distance(p, al))
                }
                _ => None,
            };
            if mad.is_some() {
                last_mad = mad;
            }
            if wants_diag {
                recorder.push(EpochDiagnostics {
                    epoch,
                    train_loss: mean_loss,
                    val_accuracy: val_acc,
                    output_grad_norm: first_grad_norm,
                    weight_norm_sq: model.store().total_l2_norm_sq(),
                    mad,
                    train_seconds,
                });
            }
            if should_eval {
                // `>=` deliberately: on validation plateaus (tiny val sets
                // plateau hard) prefer the later, better-trained epoch.
                // Patience, however, only resets on strict improvement.
                let improved = val_acc > best_val;
                if val_acc >= best_val {
                    best_val = val_acc;
                    best_test = test_acc;
                    best_epoch = epoch;
                }
                if improved {
                    since_best = 0;
                } else {
                    since_best += cfg.eval_every;
                    if cfg.patience > 0 && since_best >= cfg.patience {
                        break;
                    }
                }
            }
        }
    }

    TrainResult {
        test_accuracy: best_test,
        val_accuracy: best_val.max(0.0),
        best_epoch,
        epochs_run,
        diagnostics: recorder.into_entries(),
        final_mad: last_mad,
    }
}

/// Shared loss/seed construction for both executors: per-head softmax
/// cross-entropy on the train mask, mean loss across heads, the first
/// head's output-gradient norm (the Figure 2(b) diagnostic), `1/S` seed
/// scaling, and GRAND's consistency gradients when applicable. Also the
/// per-shard loss path of the mini-batch trainer, which is what keeps its
/// 1-shard run bit-identical to this one.
pub(crate) fn build_seeds(
    logits: &[&Matrix],
    labels: &[usize],
    split: &Split,
    consistency: Option<Consistency>,
) -> (f64, f64, Vec<Matrix>) {
    let s = logits.len();
    let mut seeds = Vec::with_capacity(s);
    let mut mean_loss = 0.0f64;
    let mut first_grad_norm = 0.0f64;
    let mut head_probs = Vec::with_capacity(s);
    for (hi, logit) in logits.iter().enumerate() {
        let out = softmax_cross_entropy(logit, labels, &split.train);
        mean_loss += out.loss / s as f64;
        if hi == 0 {
            first_grad_norm = skipnode_tensor::frobenius_norm(&out.grad);
        }
        let mut seed = out.grad;
        if s > 1 {
            seed.scale_in_place(1.0 / s as f32);
        }
        seeds.push(seed);
        head_probs.push(out.probs);
    }
    if let (Some(cons), true) = (consistency, s > 1) {
        add_consistency_seeds(&mut seeds, &head_probs, cons.lambda, cons.temperature);
    }
    (mean_loss, first_grad_norm, seeds)
}

/// Add GRAND's consistency gradients to the per-head seeds.
///
/// `L_con = (λ/S) Σ_s (1/n) Σ_i ‖p_s,i − p̄'_i‖²` where `p̄'` is the
/// temperature-sharpened average distribution (treated as constant). The
/// gradient w.r.t. each head's logits is the softmax VJP of
/// `2λ/(S·n) (p_s − p̄')`.
fn add_consistency_seeds(
    seeds: &mut [Matrix],
    head_probs: &[Matrix],
    lambda: f64,
    temperature: f64,
) {
    let s = head_probs.len();
    let (n, c) = head_probs[0].shape();
    // Average distribution.
    let mut mean = Matrix::zeros(n, c);
    for p in head_probs {
        mean.add_scaled(p, 1.0 / s as f32);
    }
    // Sharpen: p'_ij ∝ p_ij^{1/T}.
    let inv_t = (1.0 / temperature) as f32;
    let mut sharp = mean.map(|v| v.max(1e-12).powf(inv_t));
    for r in 0..n {
        let row = sharp.row_mut(r);
        let total: f32 = row.iter().sum();
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }
    let coef = (2.0 * lambda / (s as f64 * n as f64)) as f32;
    for (seed, probs) in seeds.iter_mut().zip(head_probs) {
        for r in 0..n {
            let p_row = probs.row(r);
            // gp = coef * (p − p̄'); gz = p ⊙ (gp − (gp·p) 1)
            let mut dot = 0.0f64;
            let mut gp = vec![0.0f32; c];
            for j in 0..c {
                gp[j] = coef * (p_row[j] - sharp.get(r, j));
                dot += gp[j] as f64 * p_row[j] as f64;
            }
            let srow = seed.row_mut(r);
            for j in 0..c {
                srow[j] += p_row[j] * (gp[j] - dot as f32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Gcn, Grand};
    use skipnode_core::{Sampling, SkipNodeConfig};
    use skipnode_graph::{full_supervised_split, load, DatasetName, Scale};

    fn quick_cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            patience: 0,
            eval_every: 5,
            ..Default::default()
        }
    }

    #[test]
    fn shallow_gcn_learns_homophilic_labels() {
        // A dense homophilic partition graph: the regime where a 2-layer
        // GCN should comfortably recover planted communities.
        let mut rng = SplitRng::new(1);
        let g = skipnode_graph::partition_graph(
            &skipnode_graph::PartitionConfig {
                n: 400,
                m: 1600,
                classes: 4,
                homophily: 0.85,
                power: 0.2,
            },
            128,
            skipnode_graph::FeatureStyle::BinaryBagOfWords {
                active: 12,
                fidelity: 0.85,
                confusion: 0.15,
            },
            &mut rng,
        );
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 32, g.num_classes(), 2, 0.3, &mut rng);
        let result = train_node_classifier(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &quick_cfg(60),
            &mut rng,
        );
        assert!(
            result.test_accuracy > 0.6,
            "accuracy {}",
            result.test_accuracy
        );
    }

    #[test]
    fn skipnode_trains_without_breaking_eval_determinism() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(2);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 4, 0.2, &mut rng);
        let strategy = Strategy::SkipNode(SkipNodeConfig::new(0.5, Sampling::Uniform));
        let result =
            train_node_classifier(&mut model, &g, &split, &strategy, &quick_cfg(30), &mut rng);
        assert!(result.test_accuracy > 0.2, "{}", result.test_accuracy);
        assert!(result.epochs_run == 30);
    }

    #[test]
    fn diagnostics_are_recorded_when_enabled() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(3);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 16, g.num_classes(), 3, 0.0, &mut rng);
        let cfg = TrainConfig {
            epochs: 10,
            patience: 0,
            diagnostics_every: 2,
            record_mad: true,
            ..Default::default()
        };
        let result = train_node_classifier(&mut model, &g, &split, &Strategy::None, &cfg, &mut rng);
        assert_eq!(result.diagnostics.len(), 5);
        assert!(result.diagnostics.iter().all(|d| d.weight_norm_sq > 0.0));
        assert!(result.diagnostics.iter().all(|d| d.mad.is_some()));
    }

    #[test]
    fn grand_multi_head_training_runs() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(4);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Grand::new(
            g.feature_dim(),
            16,
            g.num_classes(),
            3,
            2,
            0.4,
            0.2,
            &mut rng,
        );
        let result = train_node_classifier(
            &mut model,
            &g,
            &split,
            &Strategy::None,
            &quick_cfg(30),
            &mut rng,
        );
        assert!(result.test_accuracy > 0.2, "{}", result.test_accuracy);
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let g = load(DatasetName::Cornell, Scale::Bench, 7);
        let mut rng = SplitRng::new(5);
        let split = full_supervised_split(&g, &mut rng);
        let mut model = Gcn::new(g.feature_dim(), 8, g.num_classes(), 2, 0.0, &mut rng);
        let cfg = TrainConfig {
            epochs: 500,
            patience: 5,
            eval_every: 1,
            ..Default::default()
        };
        let result = train_node_classifier(&mut model, &g, &split, &Strategy::None, &cfg, &mut rng);
        assert!(result.epochs_run < 500, "ran {}", result.epochs_run);
    }
}
