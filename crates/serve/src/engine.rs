//! The serving engine: frontier-restricted execution of a compiled
//! [`LayerPlan`] against a patchable normalized adjacency.
//!
//! A node-classification query for node `q` under a `k`-layer model
//! depends only on `q`'s `k`-hop in-neighborhood, so answering it never
//! needs the full-graph forward the training stack runs. The engine
//! re-executes the checkpointed model's plan over *compact* matrices:
//! every intermediate register holds only the rows some query in the
//! micro-batch can reach, discovered by one reverse-dataflow pass over
//! the plan (SpMM ops expand a row set to the union of its adjacency
//! columns; everything else in the eval-mode op set is row-local).
//!
//! Bitwise identity with the full forward ([`skipnode_nn::trainer::evaluate`]
//! under `Strategy::None`) is the engine's contract, and it holds by
//! construction rather than by tolerance:
//!
//! - the subset SpMM kernel ([`DynamicAdjacency::spmm_rows_subset_mapped`])
//!   runs each row's CSR-order accumulation exactly as the full kernel
//!   does;
//! - GEMM row content is invariant to the number of rows in the left
//!   operand (the accumulation-order policy), so a subset GEMM produces
//!   the same bytes per row as the full one;
//! - every elementwise op routes through [`skipnode_autograd::subset`] —
//!   the same helpers the deferred tape executor calls — so the two
//!   implementations cannot drift;
//! - the quantized path pre-quantizes weights once with the identical
//!   per-column code ([`QuantizedMatrix::from_cols`]) the quantized tape
//!   applies per evaluation, and activation quantization inside
//!   [`qgemm`] is row-local.
//!
//! Incremental updates patch the cached normalized adjacency in place
//! ([`DynamicAdjacency`]); the engine invalidates exactly the touched
//! rows of its first-hop `Ã·X` cache, so steady-state queries against a
//! mutating graph recompute only what the mutations reached.

use skipnode_graph::{Graph, GraphUpdate};
use skipnode_nn::models::JkAggregate;
use skipnode_nn::plan::{LayerPlan, PlanOp, Reg};
use skipnode_nn::{ModelCheckpoint, ParamId, ParamStore};
use skipnode_sparse::{CsrMatrix, DynamicAdjacency, COL_SKIP};
use skipnode_tensor::quant::{qgemm, QuantizedMatrix};
use skipnode_tensor::{workspace, Matrix};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Numeric path the engine serves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Full-precision dense products (bf16 storage staging still applies
    /// if the process-global precision mode says so).
    F32,
    /// Int8 weight quantization: every plan GEMM runs through [`qgemm`]
    /// against weights quantized once at load — bitwise identical to
    /// [`skipnode_nn::trainer::evaluate_quantized`], which re-quantizes
    /// per evaluation with the same per-column code.
    Quantized,
}

/// Why an engine could not be built from a checkpoint.
#[derive(Debug)]
pub enum ServeError {
    /// Checkpoint restore failed (corrupt stream, unknown backbone, …).
    Restore(std::io::Error),
    /// The restored model has no layer plan (bespoke forwards such as
    /// GAT cannot be frontier-served).
    NoPlan(String),
    /// The plan contains a graph-level op the node-serving engine does
    /// not support.
    UnsupportedOp(&'static str),
    /// Graph feature width does not match the checkpoint's input dim.
    FeatureDim {
        /// What the checkpoint expects.
        expected: usize,
        /// What the graph provides.
        got: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            ServeError::NoPlan(name) => {
                write!(
                    f,
                    "backbone {name:?} has no layer plan; cannot frontier-serve"
                )
            }
            ServeError::UnsupportedOp(op) => {
                write!(
                    f,
                    "plan op {op} is not supported by the node-serving engine"
                )
            }
            ServeError::FeatureDim { expected, got } => {
                write!(
                    f,
                    "graph features have width {got}, checkpoint expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A register value restricted to a sorted set of logical rows.
struct Compact {
    /// Sorted logical row ids; `data` row `i` is logical row `ids[i]`.
    ids: Vec<u32>,
    data: Matrix,
}

impl Compact {
    fn index_of(&self, id: u32) -> usize {
        self.ids
            .binary_search(&id)
            .unwrap_or_else(|_| panic!("frontier invariant broken: row {id} absent"))
    }

    /// Copy the rows `ids` (each present in `self.ids`) into a fresh
    /// matrix. Row-local ops consume operands through this, so an
    /// operand computed for a superset frontier serves a narrower one.
    fn gather(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.data.cols());
        for (i, &id) in ids.iter().enumerate() {
            out.row_mut(i)
                .copy_from_slice(self.data.row(self.index_of(id)));
        }
        out
    }
}

/// Per-register execution slot: alias registers (eval-mode dropout,
/// penultimate markers) point at the register that materializes them.
enum Slot {
    Alias,
    Mat(Compact),
}

/// Counters the server and benches report.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Queries answered (rows returned, counting duplicates).
    pub queries: u64,
    /// `serve_batch` calls.
    pub batches: u64,
    /// Graph updates applied.
    pub updates: u64,
    /// First-hop cache rows invalidated by updates.
    pub invalidated_rows: u64,
    /// First-hop rows answered from cache.
    pub first_hop_hits: u64,
    /// First-hop rows computed fresh.
    pub first_hop_misses: u64,
}

/// Long-lived serving state for one checkpointed model over one live graph.
pub struct ServeEngine {
    plan: LayerPlan,
    params: ParamStore,
    mode: ServeMode,
    backbone: String,
    /// Weights pre-quantized at load (empty in [`ServeMode::F32`]).
    qweights: HashMap<ParamId, QuantizedMatrix>,
    adj: DynamicAdjacency,
    /// Row-major growable feature store (`n × feat_dim`).
    feat: Vec<f32>,
    feat_dim: usize,
    out_dim: usize,
    /// Cached rows of `Ã·X` (the first propagation over raw features —
    /// the widest SpMM in most plans). Invalidated per touched row.
    first_hop: Vec<Option<Vec<f32>>>,
    /// Scratch logical-column → compact-row map, length `n`, reset to
    /// [`COL_SKIP`] after each SpMM.
    col_map: Vec<u32>,
    /// Alias-resolved root register per register index.
    root: Vec<usize>,
    /// Static column width per register.
    reg_cols: Vec<usize>,
    stats: EngineStats,
}

impl ServeEngine {
    /// Build a serving engine from a trained checkpoint and the graph it
    /// serves. Precomputes the normalized adjacency in patchable form and
    /// (in quantized mode) the per-column weight codes.
    pub fn from_checkpoint(
        ckpt: &ModelCheckpoint,
        graph: &Graph,
        mode: ServeMode,
    ) -> Result<Self, ServeError> {
        let model = ckpt.restore().map_err(ServeError::Restore)?;
        let plan = model
            .plan()
            .ok_or_else(|| ServeError::NoPlan(ckpt.spec.name.clone()))?;
        if graph.feature_dim() != ckpt.spec.in_dim {
            return Err(ServeError::FeatureDim {
                expected: ckpt.spec.in_dim,
                got: graph.feature_dim(),
            });
        }
        // Copy the restored store; registration order matches the plan's
        // ParamIds by construction (restore validates names and shapes).
        let src = model.store();
        let mut params = ParamStore::new();
        for id in src.ids() {
            params.add(src.name(id).to_string(), src.value(id).clone());
        }

        let mut qweights = HashMap::new();
        for op in &plan.ops {
            if let PlanOp::Readout { .. } = op {
                return Err(ServeError::UnsupportedOp("Readout"));
            }
            if mode == ServeMode::Quantized {
                // Exactly the matmuls the quantized tape routes through
                // qgemm: dense products whose right operand is a leaf
                // weight.
                let w = match op {
                    PlanOp::Conv { w, .. }
                    | PlanOp::ActivatedConv { w, .. }
                    | PlanOp::Dense { w, .. } => Some(*w),
                    _ => None,
                };
                if let Some(w) = w {
                    qweights
                        .entry(w)
                        .or_insert_with(|| QuantizedMatrix::from_cols(params.value(w)));
                }
            }
        }

        let n = graph.num_nodes();
        let feat_dim = graph.feature_dim();
        let adj = DynamicAdjacency::from_edges(n, graph.edges());
        let root = alias_roots(&plan);
        let reg_cols = infer_reg_cols(&plan, &params, feat_dim);
        Ok(Self {
            plan,
            params,
            mode,
            backbone: ckpt.spec.name.clone(),
            qweights,
            adj,
            feat: graph.features().as_slice().to_vec(),
            feat_dim,
            out_dim: ckpt.spec.out_dim,
            first_hop: vec![None; n],
            col_map: vec![COL_SKIP; n],
            root,
            reg_cols,
            stats: EngineStats::default(),
        })
    }

    /// Current number of servable nodes (grows with `AddNode` updates).
    pub fn num_nodes(&self) -> usize {
        self.adj.n()
    }

    /// Logit width per query.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The numeric path this engine serves on.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Backbone name from the checkpoint spec.
    pub fn backbone(&self) -> &str {
        &self.backbone
    }

    /// Execution counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of currently valid first-hop cache rows.
    pub fn first_hop_cached(&self) -> usize {
        self.first_hop.iter().filter(|r| r.is_some()).count()
    }

    /// Materialize the current patched adjacency (oracle hook for tests:
    /// must be byte-identical to a from-scratch rebuild).
    pub fn snapshot_adjacency(&self) -> CsrMatrix {
        self.adj.snapshot()
    }

    /// Apply one structural update, patching the normalized adjacency in
    /// place and invalidating exactly the first-hop cache rows whose
    /// adjacency row changed.
    pub fn apply_update(&mut self, update: &GraphUpdate) {
        match update {
            GraphUpdate::AddEdge(u, v) => {
                self.adj.add_edge(*u, *v);
            }
            GraphUpdate::AddNode(features) => {
                assert_eq!(
                    features.len(),
                    self.feat_dim,
                    "AddNode feature width must match the model's input dim"
                );
                self.adj.add_node();
                self.feat.extend_from_slice(features);
                self.first_hop.push(None);
                self.col_map.push(COL_SKIP);
            }
        }
        for r in self.adj.drain_touched() {
            if self.first_hop[r as usize].take().is_some() {
                self.stats.invalidated_rows += 1;
            }
        }
        self.stats.updates += 1;
    }

    /// Answer one query — a `serve_batch` of size 1.
    pub fn serve_one(&mut self, node: usize) -> Vec<f32> {
        self.serve_batch(&[node]).row(0).to_vec()
    }

    /// Answer a micro-batch of node queries. Row `i` of the result is the
    /// logits for `queries[i]` (duplicates allowed); bitwise identical to
    /// serving each query alone and to the corresponding rows of the
    /// full-graph evaluation.
    pub fn serve_batch(&mut self, queries: &[usize]) -> Matrix {
        let n = self.adj.n();
        let mut ids: Vec<u32> = queries
            .iter()
            .map(|&q| {
                assert!(q < n, "query node {q} out of range (n = {n})");
                q as u32
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let need = self.frontier(&ids);
        let slots = self.execute(&need);
        let out = resolve(&slots, &self.root, self.plan.output.0);
        let mut res = Matrix::zeros(queries.len(), out.data.cols());
        for (i, &q) in queries.iter().enumerate() {
            res.row_mut(i)
                .copy_from_slice(out.data.row(out.index_of(q as u32)));
        }
        self.stats.queries += queries.len() as u64;
        self.stats.batches += 1;
        res
    }

    /// Reverse dataflow: which logical rows of each register the query
    /// set can reach. SpMM sources expand to the union of the adjacency
    /// columns of every needed output row; all other eval-mode ops are
    /// row-local. Carries are dead at eval (`post_conv` is the identity
    /// under `Strategy::None`), so they are *not* expanded — that is what
    /// keeps the frontier exactly the k-hop in-neighborhood.
    fn frontier(&self, query_ids: &[u32]) -> Vec<Vec<u32>> {
        let ops = &self.plan.ops;
        let mut need: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); ops.len() + 1];
        need[self.plan.output.0].extend(query_ids.iter().copied());
        for k in (0..ops.len()).rev() {
            if need[k + 1].is_empty() {
                continue;
            }
            let out: Vec<u32> = need[k + 1].iter().copied().collect();
            let local = |need: &mut Vec<BTreeSet<u32>>, r: Reg| {
                need[r.0].extend(out.iter().copied());
            };
            match &ops[k] {
                PlanOp::Dropout { src, .. }
                | PlanOp::DropRows { src, .. }
                | PlanOp::Penultimate { src }
                | PlanOp::Relu { src }
                | PlanOp::Dense { src, .. } => local(&mut need, *src),
                PlanOp::Conv { src, .. } => self.expand_spmm(&mut need[src.0], &out),
                PlanOp::ActivatedConv {
                    src,
                    w,
                    init_residual,
                    residual,
                    ..
                } => {
                    if let Some((h0, _)) = init_residual {
                        local(&mut need, *h0);
                    }
                    if let Some(res) = residual {
                        // Same shape gate the tape applies (rows are
                        // uniformly n in the full forward, so the gate
                        // reduces to column equality).
                        if self.reg_cols[res.0] == self.params.value(*w).cols() {
                            local(&mut need, *res);
                        }
                    }
                    self.expand_spmm(&mut need[src.0], &out);
                }
                PlanOp::Propagate { src, teleport, .. } => {
                    if let Some((h0, _)) = teleport {
                        local(&mut need, *h0);
                    }
                    self.expand_spmm(&mut need[src.0], &out);
                }
                PlanOp::LinComb { parts } => {
                    for &(p, _) in parts {
                        local(&mut need, p);
                    }
                }
                PlanOp::WeightedSum { parts, .. } | PlanOp::Aggregate { parts, .. } => {
                    for &p in parts {
                        local(&mut need, p);
                    }
                }
                PlanOp::Readout { .. } => unreachable!("rejected at construction"),
            }
        }
        need.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    fn expand_spmm(&self, dst: &mut BTreeSet<u32>, out_rows: &[u32]) {
        for &r in out_rows {
            let (cols, _) = self.adj.row(r as usize);
            dst.extend(cols.iter().copied());
        }
    }

    /// Forward pass over compact registers, replaying the canonical
    /// unfused op chains of [`skipnode_nn::plan`]'s executor in eval mode.
    fn execute(&mut self, need: &[Vec<u32>]) -> Vec<Slot> {
        let mut slots: Vec<Slot> = Vec::with_capacity(self.plan.ops.len() + 1);
        slots.push(Slot::Mat(Compact {
            ids: need[0].clone(),
            data: self.gather_features(&need[0]),
        }));
        for k in 0..self.plan.ops.len() {
            let op = self.plan.ops[k].clone();
            let out_ids = &need[k + 1];
            let slot = match &op {
                // Identity at eval: dropout never fires, the penultimate
                // marker only records.
                PlanOp::Dropout { .. } | PlanOp::DropRows { .. } | PlanOp::Penultimate { .. } => {
                    Slot::Alias
                }
                _ if out_ids.is_empty() => Slot::Mat(Compact {
                    ids: Vec::new(),
                    data: Matrix::zeros(0, self.reg_cols[k + 1]),
                }),
                PlanOp::Conv { src, w, b } => {
                    let p = self.exec_spmm(out_ids, &slots, *src);
                    let mut z = self.plan_matmul(&p.data, *w);
                    skipnode_autograd::subset::add_bias_in_place(&mut z, self.params.value(*b));
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: z,
                    })
                }
                PlanOp::ActivatedConv {
                    src,
                    w,
                    b,
                    init_residual,
                    identity_map,
                    residual,
                    ..
                } => {
                    // Canonical unfused chain: spmm → [init-residual
                    // lin_comb] → matmul → [identity-map lin_comb] →
                    // [add_bias] → relu → [residual add]; post_conv is
                    // the identity at eval.
                    let p = self.exec_spmm(out_ids, &slots, *src);
                    let support = match init_residual {
                        Some((h0, alpha)) => {
                            let h0m = resolve(&slots, &self.root, h0.0).gather(out_ids);
                            let mut s = Matrix::zeros(p.data.rows(), p.data.cols());
                            skipnode_autograd::subset::lin_comb_into(
                                &mut s,
                                &[(&p.data, 1.0 - alpha), (&h0m, *alpha)],
                            );
                            s
                        }
                        None => p.data,
                    };
                    let t = self.plan_matmul(&support, *w);
                    let mut z = match identity_map {
                        Some(beta) => {
                            let mut z = Matrix::zeros(t.rows(), t.cols());
                            skipnode_autograd::subset::lin_comb_into(
                                &mut z,
                                &[(&support, 1.0 - beta), (&t, *beta)],
                            );
                            z
                        }
                        None => t,
                    };
                    if let Some(b) = b {
                        skipnode_autograd::subset::add_bias_in_place(&mut z, self.params.value(*b));
                    }
                    skipnode_autograd::subset::relu_in_place(&mut z);
                    if let Some(res) = residual {
                        if self.reg_cols[res.0] == z.cols() {
                            let resm = resolve(&slots, &self.root, res.0).gather(out_ids);
                            z.add_scaled(&resm, 1.0);
                        }
                    }
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: z,
                    })
                }
                PlanOp::Dense { src, w, b } => {
                    let a = resolve(&slots, &self.root, src.0).gather(out_ids);
                    let mut z = self.plan_matmul(&a, *w);
                    skipnode_autograd::subset::add_bias_in_place(&mut z, self.params.value(*b));
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: z,
                    })
                }
                PlanOp::Relu { src } => {
                    let mut a = resolve(&slots, &self.root, src.0).gather(out_ids);
                    skipnode_autograd::subset::relu_in_place(&mut a);
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: a,
                    })
                }
                PlanOp::Propagate { src, teleport, .. } => {
                    let p = self.exec_spmm(out_ids, &slots, *src);
                    let data = match teleport {
                        Some((h0, alpha)) => {
                            let h0m = resolve(&slots, &self.root, h0.0).gather(out_ids);
                            let mut s = Matrix::zeros(p.data.rows(), p.data.cols());
                            skipnode_autograd::subset::lin_comb_into(
                                &mut s,
                                &[(&p.data, 1.0 - alpha), (&h0m, *alpha)],
                            );
                            s
                        }
                        None => p.data,
                    };
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data,
                    })
                }
                PlanOp::LinComb { parts } => {
                    let gathered: Vec<(Matrix, f32)> = parts
                        .iter()
                        .map(|&(p, c)| (resolve(&slots, &self.root, p.0).gather(out_ids), c))
                        .collect();
                    let refs: Vec<(&Matrix, f32)> = gathered.iter().map(|(m, c)| (m, *c)).collect();
                    let mut v = Matrix::zeros(out_ids.len(), self.reg_cols[k + 1]);
                    skipnode_autograd::subset::lin_comb_into(&mut v, &refs);
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: v,
                    })
                }
                PlanOp::WeightedSum { parts, w } => {
                    let coefs = self.params.value(*w).row(0).to_vec();
                    let gathered: Vec<Matrix> = parts
                        .iter()
                        .map(|&p| resolve(&slots, &self.root, p.0).gather(out_ids))
                        .collect();
                    let refs: Vec<(&Matrix, f32)> =
                        gathered.iter().zip(&coefs).map(|(m, &c)| (m, c)).collect();
                    let mut v = Matrix::zeros(out_ids.len(), self.reg_cols[k + 1]);
                    skipnode_autograd::subset::lin_comb_into(&mut v, &refs);
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data: v,
                    })
                }
                PlanOp::Aggregate { parts, kind } => {
                    let gathered: Vec<Matrix> = parts
                        .iter()
                        .map(|&p| resolve(&slots, &self.root, p.0).gather(out_ids))
                        .collect();
                    let data = match kind {
                        JkAggregate::Concat => {
                            let refs: Vec<&Matrix> = gathered.iter().collect();
                            Matrix::hcat(&refs)
                        }
                        JkAggregate::MaxPool => {
                            let mut v = gathered[0].clone();
                            for cand in &gathered[1..] {
                                skipnode_autograd::subset::max_pool_in_place(&mut v, cand);
                            }
                            v
                        }
                    };
                    Slot::Mat(Compact {
                        ids: out_ids.clone(),
                        data,
                    })
                }
                PlanOp::Readout { .. } => unreachable!("rejected at construction"),
            };
            slots.push(slot);
        }
        slots
    }

    /// Subset SpMM of the patched adjacency against a compact operand.
    /// When the operand is (an alias of) the raw feature register, rows
    /// are answered from / inserted into the first-hop cache.
    fn exec_spmm(&mut self, out_ids: &[u32], slots: &[Slot], src: Reg) -> Compact {
        let root = self.root[src.0];
        let operand = resolve(slots, &self.root, src.0);
        let d = operand.data.cols();
        if root == 0 {
            let uncached: Vec<u32> = out_ids
                .iter()
                .copied()
                .filter(|&r| self.first_hop[r as usize].is_none())
                .collect();
            self.stats.first_hop_hits += (out_ids.len() - uncached.len()) as u64;
            self.stats.first_hop_misses += uncached.len() as u64;
            if !uncached.is_empty() {
                let fresh = self.mapped_spmm(operand, &uncached);
                for (i, &r) in uncached.iter().enumerate() {
                    self.first_hop[r as usize] = Some(fresh.row(i).to_vec());
                }
            }
            let mut out = Matrix::zeros(out_ids.len(), d);
            for (i, &r) in out_ids.iter().enumerate() {
                out.row_mut(i)
                    .copy_from_slice(self.first_hop[r as usize].as_ref().unwrap());
            }
            Compact {
                ids: out_ids.to_vec(),
                data: out,
            }
        } else {
            let data = self.mapped_spmm(operand, out_ids);
            Compact {
                ids: out_ids.to_vec(),
                data,
            }
        }
    }

    fn mapped_spmm(&mut self, operand: &Compact, rows: &[u32]) -> Matrix {
        for (i, &id) in operand.ids.iter().enumerate() {
            self.col_map[id as usize] = i as u32;
        }
        let mut out = Matrix::zeros(rows.len(), operand.data.cols());
        self.adj
            .spmm_rows_subset_mapped(&operand.data, &self.col_map, rows, &mut out);
        // Reset only the entries just written; the scratch stays all
        // COL_SKIP between calls without an O(n) clear.
        for &id in &operand.ids {
            self.col_map[id as usize] = COL_SKIP;
        }
        out
    }

    /// Dense product against a plan weight: pre-quantized int8 GEMM in
    /// quantized mode, the standard (precision-mode-aware) GEMM otherwise.
    fn plan_matmul(&self, a: &Matrix, w: ParamId) -> Matrix {
        if let Some(qb) = self.qweights.get(&w) {
            let mut out = workspace::take(a.rows(), qb.n());
            qgemm(a, qb, &mut out);
            out
        } else {
            a.matmul(self.params.value(w))
        }
    }

    fn gather_features(&self, ids: &[u32]) -> Matrix {
        let d = self.feat_dim;
        let mut out = Matrix::zeros(ids.len(), d);
        for (i, &id) in ids.iter().enumerate() {
            let r = id as usize;
            out.row_mut(i)
                .copy_from_slice(&self.feat[r * d..(r + 1) * d]);
        }
        out
    }
}

fn resolve<'a>(slots: &'a [Slot], root: &[usize], reg: usize) -> &'a Compact {
    match &slots[root[reg]] {
        Slot::Mat(c) => c,
        Slot::Alias => unreachable!("alias root must be materialized"),
    }
}

/// Alias-resolved root register per register: eval-mode identity ops
/// (dropout, row dropout, penultimate markers) forward to their source.
fn alias_roots(plan: &LayerPlan) -> Vec<usize> {
    let mut root: Vec<usize> = (0..=plan.ops.len()).collect();
    for (k, op) in plan.ops.iter().enumerate() {
        if let PlanOp::Dropout { src, .. }
        | PlanOp::DropRows { src, .. }
        | PlanOp::Penultimate { src } = op
        {
            root[k + 1] = root[src.0];
        }
    }
    root
}

/// Static column width of every register (rows are uniform in the full
/// forward, so shape gates reduce to these widths).
fn infer_reg_cols(plan: &LayerPlan, params: &ParamStore, in_dim: usize) -> Vec<usize> {
    let mut cols = vec![0usize; plan.ops.len() + 1];
    cols[0] = in_dim;
    for (k, op) in plan.ops.iter().enumerate() {
        cols[k + 1] = match op {
            PlanOp::Dropout { src, .. }
            | PlanOp::DropRows { src, .. }
            | PlanOp::Penultimate { src }
            | PlanOp::Relu { src }
            | PlanOp::Readout { src, .. } => cols[src.0],
            PlanOp::Conv { w, .. } | PlanOp::ActivatedConv { w, .. } | PlanOp::Dense { w, .. } => {
                params.value(*w).cols()
            }
            PlanOp::Propagate { src, .. } => cols[src.0],
            PlanOp::LinComb { parts } => cols[parts[0].0 .0],
            PlanOp::WeightedSum { parts, .. } => cols[parts[0].0],
            PlanOp::Aggregate { parts, kind } => match kind {
                JkAggregate::Concat => parts.iter().map(|p| cols[p.0]).sum(),
                JkAggregate::MaxPool => cols[parts[0].0],
            },
        };
    }
    cols
}
