//! Adaptive micro-batched request serving on top of [`ServeEngine`].
//!
//! Requests land in a shared queue; a single worker thread coalesces
//! everything that arrives within a tunable batching window (or up to a
//! batch-size cap) into one frontier-restricted forward. Because batched
//! and sequential serving are bitwise identical (the engine's contract),
//! the window is a pure latency/throughput knob with no accuracy
//! dimension: wider windows amortize the per-forward fixed costs
//! (frontier discovery, weight traffic, kernel launch overhead) over
//! more queries.
//!
//! Graph updates ride the same channel: they are drained and applied
//! *before* each batch executes, so every response reflects all updates
//! submitted before its batch formed.

use crate::engine::{EngineStats, ServeEngine};
use skipnode_graph::GraphUpdate;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long the worker holds the first request of a batch open for
    /// followers. `Duration::ZERO` serves strictly one request at a time
    /// (the degenerate baseline the benches compare against).
    pub window: Duration,
    /// Hard cap on requests per batch; a full batch dispatches without
    /// waiting out the window.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_micros(500),
            max_batch: 64,
        }
    }
}

/// Batch-formation counters, separate from the engine's own stats.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Batches dispatched.
    pub batches: u64,
    /// Requests answered.
    pub requests: u64,
    /// Largest batch formed.
    pub max_batch_formed: usize,
    /// Batches that hit the size cap (dispatched early).
    pub capped_batches: u64,
}

impl ServerStats {
    /// Mean formed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

struct State {
    queue: VecDeque<(usize, mpsc::Sender<Vec<f32>>)>,
    updates: VecDeque<GraphUpdate>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// Handle to a running inference server. Cloneable-by-reference via
/// `&InferenceServer`; submit from any thread.
pub struct InferenceServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<(ServeEngine, ServerStats)>>,
}

impl InferenceServer {
    /// Spawn the worker thread and start serving.
    pub fn start(engine: ServeEngine, config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                updates: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || worker_loop(worker_shared, engine, config));
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueue a query; the returned receiver yields the logits row.
    pub fn submit(&self, node: usize) -> mpsc::Receiver<Vec<f32>> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().unwrap();
        st.queue.push_back((node, tx));
        self.shared.cv.notify_one();
        rx
    }

    /// Blocking query: submit and wait for the logits.
    ///
    /// # Panics
    /// Panics if the server shut down before answering.
    pub fn infer(&self, node: usize) -> Vec<f32> {
        self.submit(node)
            .recv()
            .expect("server shut down before answering")
    }

    /// Enqueue a graph update; applied before the next batch executes.
    pub fn update(&self, update: GraphUpdate) {
        let mut st = self.shared.state.lock().unwrap();
        st.updates.push_back(update);
        self.shared.cv.notify_one();
    }

    /// Drain the queue, stop the worker, and recover the engine (with
    /// its caches warm) plus the batching stats.
    pub fn shutdown(mut self) -> (ServeEngine, ServerStats, EngineStats) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_one();
        }
        let (engine, stats) = self
            .worker
            .take()
            .expect("shutdown called once")
            .join()
            .expect("server worker panicked");
        let engine_stats = engine.stats();
        (engine, stats, engine_stats)
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            {
                let mut st = self.shared.state.lock().unwrap();
                st.shutdown = true;
                self.shared.cv.notify_one();
            }
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    mut engine: ServeEngine,
    config: ServerConfig,
) -> (ServeEngine, ServerStats) {
    let max_batch = config.max_batch.max(1);
    let mut stats = ServerStats::default();
    loop {
        let mut st = shared.state.lock().unwrap();
        while st.queue.is_empty() && st.updates.is_empty() && !st.shutdown {
            st = shared.cv.wait(st).unwrap();
        }
        if st.queue.is_empty() && st.updates.is_empty() && st.shutdown {
            return (engine, stats);
        }
        // Hold the batch open for the window (skipped when flushing at
        // shutdown) unless the cap fills first.
        if !st.shutdown && !st.queue.is_empty() && !config.window.is_zero() {
            let deadline = Instant::now() + config.window;
            while st.queue.len() < max_batch && !st.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let updates: Vec<GraphUpdate> = st.updates.drain(..).collect();
        let take = st.queue.len().min(max_batch);
        let batch: Vec<(usize, mpsc::Sender<Vec<f32>>)> = st.queue.drain(..take).collect();
        drop(st);

        for update in &updates {
            engine.apply_update(update);
        }
        if !batch.is_empty() {
            let queries: Vec<usize> = batch.iter().map(|(q, _)| *q).collect();
            let logits = engine.serve_batch(&queries);
            for (i, (_, tx)) in batch.iter().enumerate() {
                // A caller that dropped its receiver just misses the row.
                let _ = tx.send(logits.row(i).to_vec());
            }
            stats.batches += 1;
            stats.requests += batch.len() as u64;
            stats.max_batch_formed = stats.max_batch_formed.max(batch.len());
            if batch.len() == max_batch {
                stats.capped_batches += 1;
            }
        }
    }
}
