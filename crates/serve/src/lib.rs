#![warn(missing_docs)]

//! Online inference serving for checkpointed SkipNode-stack models.
//!
//! Training answers "what are the logits of every node"; serving answers
//! "what are the logits of *this* node, now, on the graph as it exists
//! this millisecond". This crate provides the runtime between the two
//! (DESIGN.md §15):
//!
//! - [`ServeEngine`] — loads a [`skipnode_nn::ModelCheckpoint`],
//!   precomputes the normalized adjacency in patchable form
//!   ([`skipnode_sparse::DynamicAdjacency`]), and answers micro-batches
//!   of node queries by executing the model's compiled
//!   [`skipnode_nn::plan::LayerPlan`] over each batch's k-hop frontier
//!   only. Batched, sequential, and full-graph evaluation are bitwise
//!   identical, on both the f32 and the int8-quantized path.
//! - [`InferenceServer`] — a worker thread with an adaptive batching
//!   window: requests arriving within the window (or until a size cap)
//!   coalesce into one frontier forward. Graph updates
//!   ([`skipnode_graph::GraphUpdate`]) share the queue and are applied
//!   before the batch they precede.

mod engine;
mod server;

pub use engine::{EngineStats, ServeEngine, ServeError, ServeMode};
pub use server::{InferenceServer, ServerConfig, ServerStats};
