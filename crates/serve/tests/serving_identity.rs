//! The serving identity gates (ISSUE PR 10):
//!
//! 1. Micro-batched frontier serving is **bitwise identical** to
//!    sequential single-request serving and to the corresponding rows of
//!    the full-graph forward, for every plan backbone, on the f32 and
//!    the int8-quantized path.
//! 2. Incrementally patched serving state equals a from-scratch rebuild:
//!    after a stream of edge/node updates, the patched adjacency is
//!    byte-identical to one rebuilt from the final edge list, and served
//!    logits equal a fresh evaluation on the final graph.

use skipnode_graph::{Graph, GraphUpdate, UpdateStream};
use skipnode_nn::models::BACKBONE_NAMES;
use skipnode_nn::{evaluate, evaluate_quantized, BackboneSpec, ModelCheckpoint, Strategy};
use skipnode_serve::{InferenceServer, ServeEngine, ServeMode, ServerConfig};
use skipnode_tensor::{Matrix, SplitRng};
use std::time::Duration;

const IN_DIM: usize = 10;
const CLASSES: usize = 4;

/// A connected random graph with deterministic features.
fn test_graph(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = SplitRng::new(seed);
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..extra_edges {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            edges.push((u, v));
        }
    }
    let features = rng.uniform_matrix(n, IN_DIM, -1.0, 1.0);
    let labels: Vec<usize> = (0..n).map(|i| i % CLASSES).collect();
    Graph::new(n, edges, features, labels, CLASSES)
}

fn checkpoint_for(name: &str, seed: u64) -> ModelCheckpoint {
    let spec = BackboneSpec::new(name, IN_DIM, 12, CLASSES, 4, 0.3);
    let mut rng = SplitRng::new(seed);
    let model = spec.build(&mut rng).unwrap();
    ModelCheckpoint::capture(&spec, model.as_ref())
}

fn full_eval(ckpt: &ModelCheckpoint, graph: &Graph, mode: ServeMode) -> Matrix {
    let model = ckpt.restore().unwrap();
    let adj = graph.gcn_adjacency();
    let mut rng = SplitRng::new(1);
    let (logits, _) = match mode {
        ServeMode::F32 => evaluate(model.as_ref(), graph, &adj, &Strategy::None, &mut rng),
        ServeMode::Quantized => {
            evaluate_quantized(model.as_ref(), graph, &adj, &Strategy::None, &mut rng)
        }
    };
    logits
}

/// Gate 1: batched == sequential == full-graph rows, every backbone,
/// both numeric paths.
#[test]
fn micro_batched_serving_is_bitwise_identical_to_full_forward() {
    let graph = test_graph(60, 90, 11);
    let queries: Vec<usize> = vec![3, 17, 17, 42, 0, 59, 28];
    for name in BACKBONE_NAMES {
        let ckpt = checkpoint_for(name, 23);
        for mode in [ServeMode::F32, ServeMode::Quantized] {
            let full = full_eval(&ckpt, &graph, mode);
            let mut engine = ServeEngine::from_checkpoint(&ckpt, &graph, mode).unwrap();
            let batched = engine.serve_batch(&queries);
            assert_eq!(batched.rows(), queries.len());
            assert_eq!(batched.cols(), CLASSES);
            for (i, &q) in queries.iter().enumerate() {
                assert_eq!(
                    batched.row(i),
                    full.row(q),
                    "{name} {mode:?}: batched row for node {q} != full forward"
                );
                let single = engine.serve_one(q);
                assert_eq!(
                    single.as_slice(),
                    batched.row(i),
                    "{name} {mode:?}: sequential serve for node {q} != batched"
                );
            }
        }
    }
}

/// Gate 2: updates patched in place == rebuilt from scratch, with serving
/// interleaved between update bursts (so caches are warm when
/// invalidation happens).
#[test]
fn incremental_updates_match_from_scratch_rebuild() {
    let n0 = 48;
    let graph = test_graph(n0, 60, 7);

    for (which, name) in ["gcn", "gcnii", "appnp", "jknet"].into_iter().enumerate() {
        let ckpt = checkpoint_for(name, 29);
        let mut engine = ServeEngine::from_checkpoint(&ckpt, &graph, ServeMode::F32).unwrap();
        // A different update sequence per backbone.
        let mut stream = UpdateStream::new(&vec![2usize; n0], 0.15, IN_DIM, 5 + which as u64);
        let mut shadow_edges: Vec<(usize, usize)> = graph.edges().to_vec();
        let mut shadow_feat: Vec<Vec<f32>> =
            (0..n0).map(|i| graph.features().row(i).to_vec()).collect();

        for burst in 0..4 {
            // Warm the caches, then mutate.
            let _ = engine.serve_batch(&[0, 1, 2, 3, 4, 5, 6, 7]);
            for update in stream.take_updates(10) {
                match &update {
                    GraphUpdate::AddEdge(u, v) => shadow_edges.push((*u, *v)),
                    GraphUpdate::AddNode(f) => shadow_feat.push(f.clone()),
                }
                engine.apply_update(&update);
            }

            // Structural oracle: patched adjacency == rebuilt adjacency.
            let n = shadow_feat.len();
            let feat_rows: Vec<&[f32]> = shadow_feat.iter().map(|r| r.as_slice()).collect();
            let rebuilt = Graph::new(
                n,
                shadow_edges.clone(),
                Matrix::from_rows(&feat_rows),
                vec![0; n],
                CLASSES,
            );
            let patched = engine.snapshot_adjacency();
            let oracle = rebuilt.gcn_adjacency();
            for r in 0..n {
                assert_eq!(
                    patched.row(r),
                    oracle.row(r),
                    "{name} burst {burst}: patched adjacency row {r} != rebuild"
                );
            }

            // Serving oracle: logits on the patched state == fresh
            // evaluation on the rebuilt graph.
            let full = full_eval(&ckpt, &rebuilt, ServeMode::F32);
            let queries: Vec<usize> = vec![0, 5, n - 1, n / 2, 7];
            let served = engine.serve_batch(&queries);
            for (i, &q) in queries.iter().enumerate() {
                assert_eq!(
                    served.row(i),
                    full.row(q),
                    "{name} burst {burst}: served node {q} != rebuilt-graph eval"
                );
            }
        }
    }
}

/// The threaded server preserves the identity gate: concurrent
/// submissions coalesced into micro-batches return exactly the
/// full-forward rows, before and after queued updates.
#[test]
fn inference_server_answers_match_full_forward_across_updates() {
    let graph = test_graph(40, 50, 3);
    let ckpt = checkpoint_for("gcn", 41);
    let engine = ServeEngine::from_checkpoint(&ckpt, &graph, ServeMode::F32).unwrap();
    let server = InferenceServer::start(
        engine,
        ServerConfig {
            window: Duration::from_millis(2),
            max_batch: 16,
        },
    );

    let full = full_eval(&ckpt, &graph, ServeMode::F32);
    let pending: Vec<(usize, std::sync::mpsc::Receiver<Vec<f32>>)> =
        (0..20).map(|q| (q, server.submit(q))).collect();
    for (q, rx) in pending {
        let got = rx.recv().unwrap();
        assert_eq!(got.as_slice(), full.row(q), "server answer for node {q}");
    }

    // Queue updates, then query again: answers must reflect the new graph.
    let mut edges = graph.edges().to_vec();
    for &(u, v) in &[(0usize, 20usize), (5, 35), (11, 29)] {
        edges.push((u, v));
        server.update(GraphUpdate::AddEdge(u, v));
    }
    let updated = Graph::new(
        graph.num_nodes(),
        edges,
        graph.features().clone(),
        graph.labels().to_vec(),
        CLASSES,
    );
    let full2 = full_eval(&ckpt, &updated, ServeMode::F32);
    for q in [0usize, 5, 11, 20, 29, 35, 39] {
        assert_eq!(
            server.infer(q).as_slice(),
            full2.row(q),
            "post-update server answer for node {q}"
        );
    }

    let (engine, stats, engine_stats) = server.shutdown();
    assert!(stats.requests >= 27);
    assert!(engine_stats.updates == 3);
    assert!(engine.first_hop_cached() > 0);
}
