//! Property tests pinning the vectorized kernels to the scalar reference
//! across awkward shapes (single rows, prime widths, empties).
//!
//! The accumulation-order policy (see `simd` module docs) promises two
//! different strengths, and this file checks both:
//!
//! - **Bitwise-class kernels** (`add_scaled`, `relu`, reductions' partial
//!   layout) avoid FMA so the vector lanes produce the same bytes as the
//!   scalar loop on every ISA.
//! - **FMA-class kernels** (the GEMM family) contract `a*b + acc` on vector
//!   ISAs, so they match the scalar reference only to rounding — pinned
//!   here at 1e-5 relative tolerance. Within one ISA, every `GemmTile`
//!   must agree bit-for-bit because tiling never reorders the k-loop.
//!
//! Everything lives in ONE `#[test]` because the active ISA is process
//! global: parallel test threads flipping `simd::force` would race. This
//! binary owns its process, so a single serial test is safe.

use skipnode_tensor::simd::{self, GemmTile, Isa};
use skipnode_tensor::{l2_norm_sq, Matrix, SplitRng};

/// Best vector ISA the host supports, or `None` on scalar-only machines
/// (where the dispatch equivalence is vacuous and the test exits early).
fn host_vector_isa() -> Option<Isa> {
    for isa in [Isa::Avx2, Isa::Neon] {
        if simd::force(isa) == isa {
            return Some(isa);
        }
    }
    simd::force(Isa::Scalar);
    None
}

/// Shapes with remainders in every tile dimension, plus degenerate cases.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 13, 7),   // single output row
    (7, 13, 1),   // single output column
    (4, 8, 16),   // exact tile multiples
    (6, 16, 16),  // T6x16 tile exactly
    (13, 11, 17), // primes everywhere
    (33, 3, 9),   // tall with tiny inner dim
    (3, 0, 4),    // empty inner dimension
    (0, 4, 3),    // no rows
];

fn assert_close(vector: &Matrix, scalar: &Matrix, label: &str) {
    assert_eq!(vector.shape(), scalar.shape(), "{label}: shape");
    for (i, (x, y)) in vector.as_slice().iter().zip(scalar.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-5 * (1.0 + y.abs()),
            "{label}: element {i}: vector {x} vs scalar {y}"
        );
    }
}

#[test]
fn vectorized_kernels_match_the_scalar_reference() {
    let Some(vector_isa) = host_vector_isa() else {
        eprintln!("host has no vector ISA; dispatch equivalence is vacuous");
        return;
    };
    let mut rng = SplitRng::new(0x51_3d);

    for &(m, k, n) in SHAPES {
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let gt = rng.uniform_matrix(m, n, -1.0, 1.0); // t_matmul's dOut shape
        let c = rng.uniform_matrix(n, k, -1.0, 1.0); // matmul_t's rhs shape

        // Scalar reference pass.
        simd::force(Isa::Scalar);
        let mm_s = a.matmul(&b);
        let at_s = a.t_matmul(&gt);
        let abt_s = a.matmul_t(&c);
        let norm_s = l2_norm_sq(&a);
        let mut axpy_s = gt.clone();
        axpy_s.add_scaled(&mm_s, 0.37);
        let relu_s = a.relu();

        // Vector pass over the same inputs.
        simd::force(vector_isa);
        let label = format!("{m}x{k}x{n}");
        assert_close(&a.matmul(&b), &mm_s, &format!("matmul {label}"));
        assert_close(&a.t_matmul(&gt), &at_s, &format!("t_matmul {label}"));
        assert_close(&a.matmul_t(&c), &abt_s, &format!("matmul_t {label}"));
        let norm_v = l2_norm_sq(&a);
        assert!(
            (norm_v - norm_s).abs() <= 1e-7 * (1.0 + norm_s.abs()),
            "l2_norm_sq {label}: {norm_v} vs {norm_s}"
        );

        // Bitwise-class kernels: exact bytes, not tolerance.
        let mut axpy_v = gt.clone();
        axpy_v.add_scaled(&mm_s, 0.37);
        assert_eq!(
            axpy_v.as_slice(),
            axpy_s.as_slice(),
            "add_scaled {label}: vector lanes must match scalar bytes"
        );
        assert_eq!(
            a.relu().as_slice(),
            relu_s.as_slice(),
            "relu {label}: vector lanes must match scalar bytes"
        );

        // Tile invariance: every tile shape keeps the k-loop order, so all
        // products under the vector ISA agree bit-for-bit.
        let reference_tile = a.matmul(&b);
        let prior = simd::gemm_tile();
        for tile in GemmTile::ALL {
            simd::set_gemm_tile(tile);
            assert_eq!(
                a.matmul(&b).as_slice(),
                reference_tile.as_slice(),
                "tile {} diverges on {label}",
                tile.name()
            );
        }
        simd::set_gemm_tile(prior);
    }
}
