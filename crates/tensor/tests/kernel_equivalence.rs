//! Equivalence tests: the pooled/blocked GEMM kernels must agree with
//! straightforward serial references on every shape class — including the
//! awkward ones (vectors, tile-remainder shapes, zero rows, empty matrices).
//!
//! The kernels accumulate each output element in a fixed order that does not
//! depend on the thread count (disjoint output partitioning + fixed chunk
//! constants), so agreement here holds for every `SKIPNODE_THREADS` value.

use skipnode_tensor::{Matrix, SplitRng};

/// Naive triple-loop `a * b` accumulating in the same `p = 0..k` order as the
/// blocked kernel, so results should be bit-identical (zero-skip adds
/// nothing: `0 * x == 0` exactly for finite `x`).
fn reference_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for c in 0..b.cols() {
            let mut acc = 0.0f32;
            for p in 0..a.cols() {
                acc += a.get(r, p) * b.get(p, c);
            }
            out.set(r, c, acc);
        }
    }
    out
}

fn assert_bitwise(kernel: &Matrix, reference: &Matrix, label: &str) {
    assert_eq!(kernel.shape(), reference.shape(), "{label}: shape");
    for (i, (x, y)) in kernel
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .enumerate()
    {
        assert!(
            x.to_bits() == y.to_bits() || (x - y).abs() <= 1e-5 * (1.0 + y.abs()),
            "{label}: element {i}: {x} vs {y}"
        );
    }
}

/// Shape sweep: vectors, exact tile multiples, remainders in both tile
/// dimensions, and degenerate empties.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 7, 5),    // single output row
    (5, 7, 1),    // single output column
    (4, 3, 8),    // exact MR x NR tile
    (8, 16, 16),  // multiple full tiles
    (5, 3, 9),    // remainder in both tile dims
    (7, 1, 7),    // inner dimension 1
    (13, 11, 17), // primes everywhere
    (3, 0, 4),    // empty inner dimension: output all zeros
    (0, 4, 3),    // no rows
    (70, 65, 70), // crosses the parallel-dispatch threshold
];

#[test]
fn gemm_matches_reference_across_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut rng = SplitRng::new(0xA0 + i as u64);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(k, n, -2.0, 2.0);
        let got = a.matmul(&b);
        assert_bitwise(&got, &reference_gemm(&a, &b), &format!("gemm {m}x{k}x{n}"));
    }
}

#[test]
fn gemm_at_b_matches_reference_across_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut rng = SplitRng::new(0xB0 + i as u64);
        // aᵀ b with a of shape m x k computes a k x n output from m x n b.
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(m, n, -2.0, 2.0);
        let got = a.t_matmul(&b);
        assert_bitwise(
            &got,
            &reference_gemm(&a.transpose(), &b),
            &format!("at_b {m}x{k}x{n}"),
        );
    }
}

#[test]
fn gemm_a_bt_matches_reference_across_shapes() {
    for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut rng = SplitRng::new(0xC0 + i as u64);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let b = rng.uniform_matrix(n, k, -2.0, 2.0);
        let got = a.matmul_t(&b);
        assert_bitwise(
            &got,
            &reference_gemm(&a, &b.transpose()),
            &format!("a_bt {m}x{k}x{n}"),
        );
    }
}

/// Zero rows/columns exercise the kernels' zero-skip fast paths; skipping a
/// zero multiplier must not change any bit of the result.
#[test]
fn zero_skip_is_exact() {
    let mut rng = SplitRng::new(0xD0);
    let mut a = rng.uniform_matrix(23, 19, -2.0, 2.0);
    for r in [0usize, 5, 11, 22] {
        a.row_mut(r).fill(0.0);
    }
    for c in [2usize, 9, 18] {
        for r in 0..23 {
            a.set(r, c, 0.0);
        }
    }
    let b = rng.uniform_matrix(19, 13, -2.0, 2.0);
    assert_bitwise(&a.matmul(&b), &reference_gemm(&a, &b), "zero-skip gemm");
    let c = rng.uniform_matrix(23, 13, -2.0, 2.0);
    assert_bitwise(
        &a.t_matmul(&c),
        &reference_gemm(&a.transpose(), &c),
        "zero-skip at_b",
    );
}

/// `*_into` kernels overwrite recycled buffers: stale NaNs must not leak.
#[test]
fn into_kernels_ignore_stale_buffer_contents() {
    let mut rng = SplitRng::new(0xE0);
    let a = rng.uniform_matrix(9, 6, -1.0, 1.0);
    let b = rng.uniform_matrix(6, 11, -1.0, 1.0);
    let mut out = Matrix::full(9, 11, f32::NAN);
    a.matmul_into(&b, &mut out);
    assert_bitwise(&out, &reference_gemm(&a, &b), "matmul_into stale");

    let mut out2 = Matrix::full(6, 11, f32::NAN);
    let c = rng.uniform_matrix(9, 11, -1.0, 1.0);
    a.t_matmul_into(&c, &mut out2);
    assert_bitwise(
        &out2,
        &reference_gemm(&a.transpose(), &c),
        "t_matmul_into stale",
    );

    let mut out3 = Matrix::full(9, 9, f32::NAN);
    let d = rng.uniform_matrix(9, 6, -1.0, 1.0);
    a.matmul_t_into(&d, &mut out3);
    assert_bitwise(
        &out3,
        &reference_gemm(&a, &d.transpose()),
        "matmul_t_into stale",
    );
}

/// Repeated products through the workspace free-list stay deterministic:
/// buffer recycling must not perturb results between identical calls.
#[test]
fn workspace_recycling_is_deterministic() {
    let mut rng = SplitRng::new(0xF0);
    let a = rng.uniform_matrix(33, 21, -1.0, 1.0);
    let b = rng.uniform_matrix(21, 17, -1.0, 1.0);
    let first = a.matmul(&b);
    for _ in 0..8 {
        let again = a.matmul(&b);
        assert_eq!(
            first.as_slice(),
            again.as_slice(),
            "recycled-buffer product diverged"
        );
        skipnode_tensor::workspace::give(again);
    }
}
