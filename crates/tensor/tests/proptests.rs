//! Property-style tests for the dense matrix algebra.
//!
//! Each test sweeps many randomized cases from a fixed [`SplitRng`] seed, so
//! failures are exactly reproducible without any external test framework.

use skipnode_tensor::{Matrix, SplitRng};

const CASES: u64 = 48;

fn random_matrix(rng: &mut SplitRng, rows: usize, cols: usize) -> Matrix {
    rng.uniform_matrix(rows, cols, -10.0, 10.0)
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

/// (AB)C = A(BC) within float tolerance.
#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x100 + seed);
        let a = random_matrix(&mut rng, 4, 3);
        let b = random_matrix(&mut rng, 3, 5);
        let c = random_matrix(&mut rng, 5, 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }
}

/// A(B + C) = AB + AC.
#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x200 + seed);
        let a = random_matrix(&mut rng, 3, 4);
        let b = random_matrix(&mut rng, 4, 3);
        let c = random_matrix(&mut rng, 4, 3);
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        assert_close(&left, &right, 1e-3);
    }
}

/// (AB)ᵀ = Bᵀ Aᵀ.
#[test]
fn transpose_reverses_products() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x300 + seed);
        let a = random_matrix(&mut rng, 3, 4);
        let b = random_matrix(&mut rng, 4, 2);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4);
    }
}

/// The fused kernels agree with explicit transposition.
#[test]
fn fused_transpose_kernels_agree() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x400 + seed);
        let a = random_matrix(&mut rng, 5, 3);
        let b = random_matrix(&mut rng, 5, 4);
        assert_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-4);
        let c = Matrix::from_vec(4, 3, b.as_slice()[..12].to_vec());
        assert_close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-4);
    }
}

/// hcat then select recovers column blocks; select_rows of all rows is the
/// identity.
#[test]
fn hcat_and_select_round_trip() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x500 + seed);
        let a = random_matrix(&mut rng, 4, 2);
        let b = random_matrix(&mut rng, 4, 3);
        let cat = Matrix::hcat(&[&a, &b]);
        assert_eq!(cat.cols(), 5);
        for r in 0..4 {
            assert_eq!(&cat.row(r)[..2], a.row(r));
            assert_eq!(&cat.row(r)[2..], b.row(r));
        }
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(cat.select_rows(&all), cat);
    }
}

/// ReLU is idempotent and non-expansive in Frobenius norm.
#[test]
fn relu_properties() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x600 + seed);
        let a = random_matrix(&mut rng, 4, 4);
        let r = a.relu();
        assert_eq!(r.relu(), r.clone());
        assert!(skipnode_tensor::frobenius_norm(&r) <= skipnode_tensor::frobenius_norm(&a) + 1e-9);
        assert!(r.as_slice().iter().all(|&x| x >= 0.0));
    }
}

/// Softmax rows are a probability simplex for arbitrary inputs.
#[test]
fn softmax_simplex() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(0x700 + seed);
        let mut s = random_matrix(&mut rng, 3, 6);
        skipnode_tensor::row_softmax_in_place(&mut s);
        for r in 0..3 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-4);
            assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}

/// max_singular_value is sub-multiplicative: s(AB) ≤ s(A)s(B).
#[test]
fn singular_value_submultiplicative() {
    for seed in 0..CASES {
        let mut rng = SplitRng::new(seed);
        let a = rng.uniform_matrix(4, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(4, 4, -1.0, 1.0);
        let sa = skipnode_tensor::max_singular_value(&a, 300);
        let sb = skipnode_tensor::max_singular_value(&b, 300);
        let sab = skipnode_tensor::max_singular_value(&a.matmul(&b), 300);
        assert!(sab <= sa * sb * 1.001 + 1e-6, "{sab} > {sa}*{sb}");
    }
}
