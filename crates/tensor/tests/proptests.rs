//! Property-based tests for the dense matrix algebra.

use proptest::prelude::*;
use skipnode_tensor::{Matrix, SplitRng};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (AB)C = A(BC) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(4, 3),
        b in matrix_strategy(3, 5),
        c in matrix_strategy(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-3)?;
    }

    /// A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 3),
        c in matrix_strategy(4, 3),
    ) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        assert_close(&left, &right, 1e-3)?;
    }

    /// (AB)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn transpose_reverses_products(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4)?;
    }

    /// The fused kernels agree with explicit transposition.
    #[test]
    fn fused_transpose_kernels_agree(
        a in matrix_strategy(5, 3),
        b in matrix_strategy(5, 4),
    ) {
        assert_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-4)?;
        let c = Matrix::from_vec(4, 3, b.as_slice()[..12].to_vec());
        assert_close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-4)?;
    }

    /// hcat then select recovers column blocks; select_rows of all rows is
    /// the identity.
    #[test]
    fn hcat_and_select_round_trip(
        a in matrix_strategy(4, 2),
        b in matrix_strategy(4, 3),
    ) {
        let cat = Matrix::hcat(&[&a, &b]);
        prop_assert_eq!(cat.cols(), 5);
        for r in 0..4 {
            prop_assert_eq!(&cat.row(r)[..2], a.row(r));
            prop_assert_eq!(&cat.row(r)[2..], b.row(r));
        }
        let all: Vec<usize> = (0..4).collect();
        prop_assert_eq!(cat.select_rows(&all), cat);
    }

    /// ReLU is idempotent and non-expansive in Frobenius norm.
    #[test]
    fn relu_properties(a in matrix_strategy(4, 4)) {
        let r = a.relu();
        prop_assert_eq!(r.relu(), r.clone());
        prop_assert!(
            skipnode_tensor::frobenius_norm(&r) <= skipnode_tensor::frobenius_norm(&a) + 1e-9
        );
        prop_assert!(r.as_slice().iter().all(|&x| x >= 0.0));
    }

    /// Softmax rows are a probability simplex for arbitrary inputs.
    #[test]
    fn softmax_simplex(a in matrix_strategy(3, 6)) {
        let mut s = a.clone();
        skipnode_tensor::row_softmax_in_place(&mut s);
        for r in 0..3 {
            let total: f32 = s.row(r).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// max_singular_value is sub-multiplicative: s(AB) ≤ s(A)s(B).
    #[test]
    fn singular_value_submultiplicative(seed in 0u64..500) {
        let mut rng = SplitRng::new(seed);
        let a = rng.uniform_matrix(4, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(4, 4, -1.0, 1.0);
        let sa = skipnode_tensor::max_singular_value(&a, 300);
        let sb = skipnode_tensor::max_singular_value(&b, 300);
        let sab = skipnode_tensor::max_singular_value(&a.matmul(&b), 300);
        prop_assert!(sab <= sa * sb * 1.001 + 1e-6, "{sab} > {sa}*{sb}");
    }
}
