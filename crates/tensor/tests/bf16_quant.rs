//! Property tests for the reduced-precision paths: f32↔bf16 conversion,
//! vector-vs-scalar bit-identity of the conversion and int8 kernels, the
//! tolerance-class bf16 compute twins, and the process-global precision
//! mode switch.
//!
//! Everything lives in ONE `#[test]` because both the active ISA
//! (`simd::force`) and the storage precision (`precision::force`) are
//! process-global: parallel test threads flipping them would race. This
//! binary owns its process, so a single serial test is safe — and it is
//! the one place in the test tree allowed to flip `precision::force`
//! (the unit-test modules promise not to; see `precision.rs`).

use skipnode_tensor::precision::{self, Storage};
use skipnode_tensor::quant::{qgemm, QuantizedMatrix};
use skipnode_tensor::simd::{self, Isa};
use skipnode_tensor::{bf16, kstats, Matrix, SplitRng};

/// Best vector ISA the host supports, or `None` on scalar-only machines
/// (where vector-vs-scalar equivalence is vacuous).
fn host_vector_isa() -> Option<Isa> {
    for isa in [Isa::Avx2, Isa::Neon] {
        if simd::force(isa) == isa {
            return Some(isa);
        }
    }
    simd::force(Isa::Scalar);
    None
}

/// Awkward lengths: vector-width multiples, remainders, empties.
const LENGTHS: &[usize] = &[0, 1, 3, 7, 8, 9, 31, 32, 33, 64, 100, 257];

/// Finite specials plus representative normals/subnormals for conversion
/// edge cases (NaN handled separately — payload equality is not promised).
/// The halfway literals are exact f32 values on purpose.
#[allow(clippy::excessive_precision)]
const SPECIALS: &[f32] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    f32::INFINITY,
    f32::NEG_INFINITY,
    f32::MIN_POSITIVE, // smallest normal
    1.0e-41,           // subnormal
    -1.0e-41,          // negative subnormal
    f32::MAX,
    f32::MIN,
    3.4028e38,  // near-overflow; rounds up to inf in bf16
    1.00390625, // 1 + 2^-8: exact halfway, even mantissa below
    1.01171875, // 1 + 3·2^-8: exact halfway, odd mantissa below
];

#[allow(clippy::excessive_precision)]
fn roundtrip_properties(rng: &mut SplitRng) {
    // Narrowing is idempotent: a value that came out of widen() is exactly
    // representable, so a second narrow must return the same bits.
    for _ in 0..10_000 {
        let x = rng.uniform(-1.0e6, 1.0e6);
        let b = bf16::narrow(x);
        let w = bf16::widen(b);
        assert_eq!(bf16::narrow(w), b, "idempotent narrow for {x}");
        // RNE error bound: |x - widen(narrow(x))| <= 2^-8 |x| for normals.
        assert!(
            (x - w).abs() <= x.abs() * 2.0f32.powi(-8),
            "rounding error bound for {x}: widened {w}"
        );
    }
    for &s in SPECIALS {
        let w = bf16::widen(bf16::narrow(s));
        if s.abs() > 3.389e38 {
            assert!(w.is_infinite() && w.signum() == s.signum(), "{s} -> {w}");
        } else if s.is_finite() && s != 0.0 && s.abs() < 1.0e-40 {
            // Subnormals round like any bit pattern; the result stays tiny.
            assert!(w.abs() <= 1.1e-40, "subnormal {s} -> {w}");
        } else if s == 1.00390625 {
            // 1 + 2^-8: exact halfway between 1.0 and 1.0078125 — ties to
            // even picks the even mantissa below.
            assert_eq!(w, 1.0, "halfway {s} must round down to even");
        } else if s == 1.01171875 {
            // 1 + 3·2^-8: halfway with an odd mantissa below — ties to
            // even rounds up.
            assert_eq!(w, 1.015625, "halfway {s} must round up to even");
        } else {
            assert_eq!(w.to_bits(), s.to_bits(), "special {s} must round-trip");
        }
    }
    assert!(bf16::widen(bf16::narrow(f32::NAN)).is_nan());
    // NaN whose payload lives only in the truncated bits stays NaN.
    assert!(bf16::widen(bf16::narrow(f32::from_bits(0x7f80_0001))).is_nan());
}

fn conversion_bit_identity(vector_isa: Isa, rng: &mut SplitRng) {
    for &len in LENGTHS {
        let mut src: Vec<f32> = (0..len).map(|_| rng.uniform(-100.0, 100.0)).collect();
        for (i, &s) in SPECIALS.iter().enumerate() {
            if i < src.len() {
                src[i] = s;
            }
        }
        let mut packed_v = vec![0u16; len];
        let mut packed_s = vec![0u16; len];
        bf16::narrow_slice(vector_isa, &src, &mut packed_v);
        bf16::narrow_slice(Isa::Scalar, &src, &mut packed_s);
        assert_eq!(packed_v, packed_s, "narrow_slice len {len}");

        let mut wide_v = vec![0.0f32; len];
        let mut wide_s = vec![0.0f32; len];
        bf16::widen_slice(vector_isa, &packed_v, &mut wide_v);
        bf16::widen_slice(Isa::Scalar, &packed_s, &mut wide_s);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&wide_v), bits(&wide_s), "widen_slice len {len}");
    }
}

fn bf16_compute_tolerance(vector_isa: Isa, rng: &mut SplitRng) {
    // axpy and the bf16 GEMM are FMA-class: vector paths contract, so they
    // match the scalar reference to rounding, not bitwise.
    for &len in LENGTHS {
        let x: Vec<u16> = (0..len)
            .map(|_| bf16::narrow(rng.uniform(-2.0, 2.0)))
            .collect();
        let y0: Vec<f32> = (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut y_v = y0.clone();
        let mut y_s = y0;
        bf16::axpy_bf16(vector_isa, 0.37, &x, &mut y_v);
        bf16::axpy_bf16(Isa::Scalar, 0.37, &x, &mut y_s);
        for (i, (a, b)) in y_v.iter().zip(&y_s).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                "axpy_bf16 len {len} element {i}: {a} vs {b}"
            );
        }
    }
    for (m, k, n) in [(1, 1, 1), (5, 13, 7), (8, 32, 16), (13, 11, 17)] {
        let a = rng.uniform_matrix(m, k, -1.5, 1.5);
        let b = rng.uniform_matrix(k, n, -1.5, 1.5);
        let mut bq = vec![0u16; k * n];
        bf16::narrow_slice(vector_isa, b.as_slice(), &mut bq);
        let mut out_v = vec![f32::NAN; m * n];
        let mut out_s = vec![f32::NAN; m * n];
        bf16::gemm_rows_bf16(vector_isa, simd::gemm_tile(), &a, &bq, n, &mut out_v, 0, m);
        bf16::gemm_rows_bf16(Isa::Scalar, simd::gemm_tile(), &a, &bq, n, &mut out_s, 0, m);
        for (i, (x, y)) in out_v.iter().zip(&out_s).enumerate() {
            assert!(
                (x - y).abs() <= 1e-5 * (1.0 + y.abs()),
                "gemm_rows_bf16 ({m},{k},{n}) element {i}: {x} vs {y}"
            );
        }
    }
}

fn qgemm_bit_identity_and_accuracy(vector_isa: Isa, rng: &mut SplitRng) {
    for (m, k, n) in [(1, 64, 9), (17, 96, 12), (33, 130, 5), (9, 31, 16)] {
        let mut a = rng.uniform_matrix(m, k, -2.0, 2.0);
        for c in 0..k {
            a.set(m / 2, c, 0.25); // constant row: affine-correction path
        }
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let qb = QuantizedMatrix::from_cols(&b);

        simd::force(vector_isa);
        let mut fast = Matrix::full(m, n, f32::NAN);
        qgemm(&a, &qb, &mut fast);
        simd::force(Isa::Scalar);
        let mut slow = Matrix::full(m, n, f32::NAN);
        qgemm(&a, &qb, &mut slow);
        simd::force(vector_isa);
        assert_eq!(
            fast.as_slice(),
            slow.as_slice(),
            "qgemm must be bit-identical across ISAs at ({m},{k},{n})"
        );

        // 7-bit affine activations x 6-bit weights track the f32 product
        // within the scales' error bound (loose absolute check). Pin f32
        // for the reference so an ambient SKIPNODE_PRECISION=bf16 doesn't
        // swap in the staged path.
        let ambient = precision::force(Storage::F32);
        let reference = a.matmul(&b);
        precision::force(ambient);
        for (q, f) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (q - f).abs() <= 0.05 * (k as f32).sqrt() + 0.05,
                "qgemm accuracy at ({m},{k},{n}): {q} vs {f}"
            );
        }
    }
}

fn precision_mode_switch(rng: &mut SplitRng) {
    // The ONE place in the test tree that flips the process-global
    // precision mode. bf16-staged matmul is tolerance-class against the
    // f32 reference, and the conversion kernels must leave kstats
    // evidence that data actually moved through the packed path.
    let a = rng.uniform_matrix(37, 29, -1.0, 1.0);
    let b = rng.uniform_matrix(29, 23, -1.0, 1.0);
    // Pin an f32 baseline whatever SKIPNODE_PRECISION says; the ambient
    // mode is restored on the way out.
    let ambient = precision::force(Storage::F32);
    let reference = a.matmul(&b);

    kstats::set_enabled(true);
    let packs_before = kstats::snapshot()[kstats::Kernel::PackBf16 as usize].calls;
    let prev = precision::force(Storage::Bf16);
    assert_eq!(prev, Storage::F32);
    let staged = a.matmul(&b);
    precision::force(ambient);
    let packs_after = kstats::snapshot()[kstats::Kernel::PackBf16 as usize].calls;

    assert!(
        packs_after > packs_before,
        "bf16 mode must route the GEMM operand through narrow_slice"
    );
    let tol = precision::accuracy_tolerance() as f32;
    for (i, (x, y)) in staged
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .enumerate()
    {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "bf16-staged matmul element {i}: {x} vs f32 {y}"
        );
    }
}

#[test]
fn reduced_precision_paths_hold_their_contracts() {
    let mut rng = SplitRng::new(4242);
    roundtrip_properties(&mut rng);

    let Some(vector_isa) = host_vector_isa() else {
        eprintln!("host has no vector ISA; vector-vs-scalar checks are vacuous");
        let mut rng = SplitRng::new(17);
        qgemm_bit_identity_and_accuracy(Isa::Scalar, &mut rng);
        precision_mode_switch(&mut rng);
        return;
    };
    conversion_bit_identity(vector_isa, &mut rng);
    bf16_compute_tolerance(vector_isa, &mut rng);
    qgemm_bit_identity_and_accuracy(vector_isa, &mut rng);
    precision_mode_switch(&mut rng);
}
