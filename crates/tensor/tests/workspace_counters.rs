//! Exact-delta checks for the workspace live/peak byte counters.
//!
//! The free-list is process-global, so these assertions run as a single
//! test in their own integration binary — unit tests in the crate (matrix
//! ops route allocations through the workspace) would otherwise perturb
//! the counters between observations.

use skipnode_tensor::{workspace, Matrix};

const F32: i64 = std::mem::size_of::<f32>() as i64;

#[test]
fn live_and_peak_bytes_track_the_working_set() {
    // take raises live and peak by the buffer size.
    let before = workspace::stats();
    let m = workspace::take(41, 9);
    let taken = workspace::stats();
    assert_eq!(taken.live_bytes, before.live_bytes + 41 * 9 * F32);
    assert!(taken.peak_live_bytes >= taken.live_bytes);

    // give lowers live but not the high-water mark.
    workspace::give(m);
    let given = workspace::stats();
    assert_eq!(given.live_bytes, before.live_bytes);
    assert!(given.peak_live_bytes >= taken.live_bytes);

    // reset_peak collapses the mark to the current live level.
    let held = workspace::take(37, 11);
    workspace::give(workspace::take(37, 13)); // push peak above the held level
    workspace::reset_peak();
    let s = workspace::stats();
    assert_eq!(s.peak_live_bytes, s.live_bytes);
    assert_eq!(s.live_bytes, given.live_bytes + 37 * 11 * F32);
    workspace::give(held);

    // Matrices allocated outside the workspace (clones, loss seeds) are
    // retired through give: live accounting goes down without a matching
    // take instead of panicking or saturating.
    let before = workspace::stats();
    workspace::give(Matrix::zeros(43, 5));
    let after = workspace::stats();
    assert_eq!(after.live_bytes, before.live_bytes - 43 * 5 * F32);
}
