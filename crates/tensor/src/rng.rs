//! Seeded randomness helpers.
//!
//! Every stochastic component in the workspace draws from a [`SplitRng`] so
//! experiments are reproducible end-to-end from a single `--seed`.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64, so the workspace carries no external RNG dependency
//! and the stream is identical on every platform and toolchain.

use crate::matrix::Matrix;

/// SplitMix64 step: the recommended seeder for xoshiro state words.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG that can deterministically `split` child RNGs, so
/// independent subsystems (graph generation, weight init, per-epoch masks)
/// do not perturb each other's streams when one of them changes.
///
/// Backed by xoshiro256++: 256 bits of state, period `2^256 - 1`, passes
/// BigCrush, and is a few instructions per draw.
///
/// `Clone` copies the full state: a cloned RNG replays the exact same
/// stream, which is how the sweep executor hands every grid configuration
/// an identical starting stream (matching the historical
/// fresh-`SplitRng::new(seed)`-per-config behavior) without re-deriving
/// shared preprocessing.
#[derive(Clone)]
pub struct SplitRng {
    s: [u64; 4],
}

impl SplitRng {
    /// New RNG from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derive an independent child RNG. Advances this RNG by one draw.
    pub fn split(&mut self) -> SplitRng {
        SplitRng::new(self.next_u64())
    }

    /// Raw u64 draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0,1) with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in [0,1) with 24 bits of precision.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit_f32()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f64 = self.unit().max(1e-12);
        let u2: f64 = self.unit();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Bernoulli draw.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift, unbiased for
    /// the `n` used in this workspace up to a 2^-64 defect).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Matrix with i.i.d. uniform entries.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.uniform(lo, hi);
        }
        m
    }

    /// Matrix with i.i.d. `N(0, std²)` entries.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, std: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.normal() * std;
        }
        m
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), uniform without
    /// replacement, order unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // Partial Fisher-Yates over an index array; O(n) setup is fine at
        // the graph sizes used here.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_inclusive(i, n - 1);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Weighted sample of `k` distinct indices, probability proportional to
    /// `weights` (the paper's biased / degree-proportional sampler).
    ///
    /// Uses the Efraimidis–Spirakis exponential-key trick: key_i =
    /// u_i^(1/w_i); take the k largest keys. Zero-weight items are never
    /// selected unless fewer than `k` positive-weight items exist.
    pub fn weighted_sample_indices(&mut self, weights: &[f64], k: usize) -> Vec<usize> {
        let n = weights.len();
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut keyed: Vec<(f64, usize)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let key = if w > 0.0 {
                    // ln(u)/w is a monotone transform of u^(1/w); avoids
                    // underflow for large weights.
                    let u: f64 = self.unit().max(f64::MIN_POSITIVE);
                    u.ln() / w
                } else {
                    f64::NEG_INFINITY
                };
                (key, i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN sampling key"));
        keyed.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

/// Uniform `f32` in `[lo, hi)`.
pub fn uniform_f32(rng: &mut SplitRng, lo: f32, hi: f32) -> f32 {
    rng.uniform(lo, hi)
}

/// Standard-normal `f32` via Box–Muller.
pub fn normal_f32(rng: &mut SplitRng) -> f32 {
    rng.normal()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitRng::new(42);
        let mut b = SplitRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_of_parent_usage() {
        let mut a = SplitRng::new(9);
        let child_seed_first = a.split().next_u64();
        let mut b = SplitRng::new(9);
        let child_seed_second = b.split().next_u64();
        assert_eq!(child_seed_first, child_seed_second);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SplitRng::new(7);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "unit out of range: {u}");
            let uf = rng.unit_f32();
            assert!((0.0..1.0).contains(&uf), "unit_f32 out of range: {uf}");
        }
    }

    #[test]
    fn below_covers_small_ranges_uniformly() {
        let mut rng = SplitRng::new(8);
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            counts[rng.below(5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = trials / 5;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 10,
                "bucket {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn normal_mean_and_variance_are_sane() {
        let mut rng = SplitRng::new(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SplitRng::new(2);
        let s = rng.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn weighted_sampling_never_picks_zero_weight() {
        let mut rng = SplitRng::new(3);
        let weights = [0.0, 5.0, 0.0, 1.0, 3.0];
        for _ in 0..50 {
            let s = rng.weighted_sample_indices(&weights, 3);
            assert!(
                !s.contains(&0) && !s.contains(&2),
                "picked zero weight: {s:?}"
            );
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = SplitRng::new(4);
        let weights = [1.0, 100.0, 1.0, 1.0];
        let mut hits = 0;
        let trials = 500;
        for _ in 0..trials {
            if rng.weighted_sample_indices(&weights, 1)[0] == 1 {
                hits += 1;
            }
        }
        assert!(
            hits > trials * 8 / 10,
            "heavy item picked only {hits}/{trials}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitRng::new(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
