//! Optional per-kernel invocation and work counters.
//!
//! Enabled by `SKIPNODE_KERNEL_STATS=1` (or forced on by benches via
//! [`set_enabled`]), each dispatched kernel entry point records one
//! invocation plus a work measure — output **rows** for the GEMM/SpMM
//! families, **elements** for elementwise, reduce, and Adam kernels. The
//! counters complement the [`crate::workspace`] free-list counters: the
//! workspace says what memory moved, these say which kernels did the
//! flops, which is the observability needed to sanity-check the
//! auto-tuner's choices.
//!
//! When disabled (the default) the cost per kernel call is one relaxed
//! atomic load of the cached enable flag. Bench binaries hold an
//! [`ExitReport`] guard so the table prints on exit without `atexit`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI8, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Kernel families tracked by the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense `A·B` (work = output rows).
    Gemm,
    /// Dense `Aᵀ·B` (work = output rows).
    GemmAtB,
    /// Dense `A·Bᵀ` (work = output rows).
    GemmABt,
    /// Full SpMM (work = output rows).
    Spmm,
    /// Masked/subset SpMM of the fused SkipNode path (work = active rows).
    SpmmSubset,
    /// Column-compacted SpMM of the fused backward (work = output rows).
    SpmmCompact,
    /// Row-subset SpMM against a col-mapped compact operand — the serving
    /// frontier kernel (work = computed rows).
    SpmmSubsetMapped,
    /// Sparse mat-vec (work = output rows).
    Spmv,
    /// Elementwise update kernels: `add_scaled`, `relu` (work = elements).
    Elemwise,
    /// f64-accumulated reductions (work = elements).
    Reduce,
    /// Fused Adam parameter step (work = parameter elements).
    Adam,
    /// f32 → bf16 narrowing (work = elements packed).
    PackBf16,
    /// bf16 → f32 widening, counted by the bf16 drivers as packed elements
    /// streamed through widen-on-load (work = elements widened).
    WidenBf16,
    /// f32 → int8 symmetric quantization (work = elements quantized).
    QuantI8,
    /// int8 GEMM with i32 accumulation (work = output rows).
    GemmI8,
    /// Segmented (per-graph) pooling reductions (work = input elements).
    SegReduce,
}

/// Number of tracked kernel families.
pub const KERNEL_COUNT: usize = 16;

const NAMES: [&str; KERNEL_COUNT] = [
    "gemm",
    "gemm_at_b",
    "gemm_a_bt",
    "spmm",
    "spmm_subset",
    "spmm_compact",
    "spmm_mapped",
    "spmv",
    "elemwise",
    "reduce",
    "adam",
    "pack_bf16",
    "widen_bf16",
    "quant_i8",
    "gemm_i8",
    "seg_reduce",
];

static CALLS: [AtomicU64; KERNEL_COUNT] = [const { AtomicU64::new(0) }; KERNEL_COUNT];
static WORK: [AtomicU64; KERNEL_COUNT] = [const { AtomicU64::new(0) }; KERNEL_COUNT];

/// -1 = off, 0 = unresolved (read env on first query), 1 = on.
static ENABLED: AtomicI8 = AtomicI8::new(0);

/// Whether counters are being collected (cached env lookup).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        -1 => false,
        _ => {
            let on = matches!(
                std::env::var("SKIPNODE_KERNEL_STATS").as_deref(),
                Ok("1") | Ok("on") | Ok("true")
            );
            ENABLED.store(if on { 1 } else { -1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force collection on or off regardless of the environment (benches that
/// want the exit table, tests that assert on counters).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { -1 }, Ordering::Relaxed);
}

/// Record one invocation of `kernel` covering `work` rows/elements.
/// A no-op unless collection is enabled.
#[inline]
pub fn record(kernel: Kernel, work: usize) {
    if !enabled() {
        return;
    }
    let i = kernel as usize;
    CALLS[i].fetch_add(1, Ordering::Relaxed);
    WORK[i].fetch_add(work as u64, Ordering::Relaxed);
    let shard = SHARD.load(Ordering::Relaxed);
    if shard != NO_SHARD {
        let mut table = shard_table().lock().expect("shard-stats lock");
        table.entry(shard).or_insert([0u64; KERNEL_COUNT])[i] += work as u64;
    }
}

/// No shard scope active (the default).
const NO_SHARD: u32 = u32::MAX;

/// The shard every [`record`] call is currently attributed to, if any.
/// Process-global: kernels dispatched to worker threads still run on
/// behalf of the shard the main loop is training.
static SHARD: AtomicU32 = AtomicU32::new(NO_SHARD);

fn shard_table() -> &'static Mutex<BTreeMap<u32, [u64; KERNEL_COUNT]>> {
    static TABLE: OnceLock<Mutex<BTreeMap<u32, [u64; KERNEL_COUNT]>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attribute subsequent kernel work to `shard` (`None` ends the scope).
/// The mini-batch trainer brackets each shard's training step with this
/// so the exit report can say which shards did the rows.
pub fn set_shard(shard: Option<u32>) {
    SHARD.store(shard.unwrap_or(NO_SHARD), Ordering::Relaxed);
}

/// Per-shard work table: `(shard, work-per-kernel-family)` rows in shard
/// order. Empty unless collection was enabled inside a shard scope.
pub fn shard_snapshot() -> Vec<(u32, [u64; KERNEL_COUNT])> {
    shard_table()
        .lock()
        .expect("shard-stats lock")
        .iter()
        .map(|(&s, &w)| (s, w))
        .collect()
}

/// One kernel family's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel family name (stable, lowercase).
    pub name: &'static str,
    /// Invocations recorded.
    pub calls: u64,
    /// Total rows/elements processed.
    pub work: u64,
}

/// Snapshot of all counters (zero entries included).
pub fn snapshot() -> [KernelStat; KERNEL_COUNT] {
    std::array::from_fn(|i| KernelStat {
        name: NAMES[i],
        calls: CALLS[i].load(Ordering::Relaxed),
        work: WORK[i].load(Ordering::Relaxed),
    })
}

/// Zero all counters, including the per-shard table (tests and benches
/// measuring a window).
pub fn reset() {
    for i in 0..KERNEL_COUNT {
        CALLS[i].store(0, Ordering::Relaxed);
        WORK[i].store(0, Ordering::Relaxed);
    }
    shard_table().lock().expect("shard-stats lock").clear();
}

/// The exit table as a string, or `None` when collection is disabled or
/// nothing was recorded.
pub fn report_string() -> Option<String> {
    if !enabled() {
        return None;
    }
    let stats = snapshot();
    if stats.iter().all(|s| s.calls == 0) {
        return None;
    }
    let mut out = String::from("kernel stats (SKIPNODE_KERNEL_STATS):\n");
    out.push_str(&format!(
        "  {:<14} {:>12} {:>16}\n",
        "kernel", "calls", "rows/elems"
    ));
    for s in stats.iter().filter(|s| s.calls > 0) {
        out.push_str(&format!(
            "  {:<14} {:>12} {:>16}\n",
            s.name, s.calls, s.work
        ));
    }
    let shards = shard_snapshot();
    if !shards.is_empty() {
        out.push_str("per-shard attribution:\n");
        out.push_str(&format!(
            "  {:<8} {:>16} {:>16}\n",
            "shard", "spmm rows", "total rows/elems"
        ));
        let spmm_families = [
            Kernel::Spmm as usize,
            Kernel::SpmmSubset as usize,
            Kernel::SpmmCompact as usize,
            Kernel::SpmmSubsetMapped as usize,
            Kernel::Spmv as usize,
        ];
        for (shard, work) in shards {
            let spmm: u64 = spmm_families.iter().map(|&i| work[i]).sum();
            let total: u64 = work.iter().sum();
            out.push_str(&format!("  {shard:<8} {spmm:>16} {total:>16}\n"));
        }
    }
    Some(out)
}

/// Guard that prints [`report_string`] to stderr when dropped. Bench and
/// CLI mains hold one so the table appears at process exit.
#[derive(Debug, Default)]
pub struct ExitReport;

/// Create an exit-report guard (see [`ExitReport`]).
pub fn exit_report() -> ExitReport {
    ExitReport
}

impl Drop for ExitReport {
    fn drop(&mut self) {
        if let Some(report) = report_string() {
            eprintln!("{report}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters and the enable flag are process-global, so both behaviors
    // live in one test (parallel tests toggling the flag would race) and
    // assertions are deltas, not absolutes.

    #[test]
    fn record_respects_the_enable_flag() {
        set_enabled(true);
        let before = snapshot()[Kernel::Spmv as usize];
        record(Kernel::Spmv, 42);
        let after = snapshot()[Kernel::Spmv as usize];
        assert_eq!(after.calls, before.calls + 1);
        assert_eq!(after.work, before.work + 42);
        assert!(report_string().is_some());

        set_enabled(false);
        let before = snapshot()[Kernel::Reduce as usize];
        record(Kernel::Reduce, 7);
        let after = snapshot()[Kernel::Reduce as usize];
        assert_eq!(before, after);
        assert!(report_string().is_none());

        // Shard scopes attribute work to the active shard only.
        set_enabled(true);
        reset();
        set_shard(Some(3));
        record(Kernel::Spmm, 11);
        set_shard(None);
        record(Kernel::Spmm, 5); // unattributed
        set_shard(Some(4));
        record(Kernel::Gemm, 2);
        set_shard(None);
        let shards = shard_snapshot();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].0, 3);
        assert_eq!(shards[0].1[Kernel::Spmm as usize], 11);
        assert_eq!(shards[1].0, 4);
        assert_eq!(shards[1].1[Kernel::Gemm as usize], 2);
        let report = report_string().expect("report with shard table");
        assert!(report.contains("per-shard attribution"), "{report}");
        reset();
        assert!(shard_snapshot().is_empty());
        set_enabled(false);
    }
}
