//! Persistent compute pool shared by every parallel kernel in the
//! workspace.
//!
//! The seed implementation spawned and joined fresh OS threads (via scoped
//! threads) inside every GEMM/SpMM call — hundreds of times per training
//! epoch. This module replaces that with a single lazily-initialized pool
//! of long-lived workers plus chunked dispatch:
//!
//! - Work is expressed as `chunks` independent chunk indices; workers (and
//!   the submitting thread itself) race on an atomic counter to claim the
//!   next chunk, which gives dynamic load balancing without a task queue.
//! - The worker count is resolved **once** from the `SKIPNODE_THREADS`
//!   environment variable (falling back to `std::thread::available_parallelism`,
//!   itself queried exactly once) and exposed through [`num_threads`].
//! - With one resolved thread the pool spawns nothing and every
//!   [`parallel_for`] runs inline, so single-core machines and
//!   `SKIPNODE_THREADS=1` runs pay zero synchronization overhead.
//! - Kernels partition output elements disjointly across chunks and keep a
//!   fixed accumulation order per element, so results are bit-identical for
//!   every thread count (asserted by the kernel-equivalence tests).
//!
//! Calls are serialized through a submission lock: if a second thread (or a
//! nested kernel) submits while a job is in flight, it simply runs its own
//! chunks inline. That keeps the pool deadlock-free under `cargo test`'s
//! multi-threaded test runner without any per-call thread spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One in-flight chunked job. `ctx`/`call` form a type-erased borrow of the
/// submitting stack frame; see the safety argument in [`parallel_for`].
struct Job {
    /// Invokes the user closure for one chunk index.
    call: unsafe fn(*const (), usize),
    /// Pointer to the closure on the submitter's stack. Only dereferenced
    /// for claimed chunk indices `< chunks`, which cannot happen after the
    /// submitter observed `done == chunks` and returned.
    ctx: *const (),
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Total number of chunks.
    chunks: usize,
    /// Chunks fully executed so far.
    done: AtomicUsize,
}

// SAFETY: `ctx` is only dereferenced while the submitter keeps the closure
// alive (it blocks until `done == chunks`); all other fields are atomics.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Slot the workers watch for new jobs.
#[derive(Default)]
struct Slot {
    /// Monotonic job counter; workers detect a new job by epoch change.
    epoch: u64,
    /// The current job, if one is in flight.
    job: Option<Arc<Job>>,
}

struct Pool {
    /// Resolved parallelism including the submitting thread.
    threads: usize,
    slot: Mutex<Slot>,
    /// Signals workers that `slot.epoch` advanced.
    work_cv: Condvar,
    /// Signals the submitter that `job.done == job.chunks`.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Guards submission so at most one job is in flight.
    submit: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True on pool workers and inside inline chunk execution; nested
    /// parallel calls from such contexts run serially instead of
    /// re-entering the pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Resolve the worker count once: `SKIPNODE_THREADS` wins, else the
/// machine's available parallelism.
fn resolve_threads() -> usize {
    match std::env::var("SKIPNODE_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("SKIPNODE_THREADS={v:?} is not a positive integer; ignoring");
                available_parallelism()
            }
        },
        Err(_) => available_parallelism(),
    }
}

/// `thread::available_parallelism()` queried exactly once per process.
fn available_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        threads: resolve_threads(),
        slot: Mutex::new(Slot::default()),
        work_cv: Condvar::new(),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
        submit: Mutex::new(()),
    })
}

/// Spawn the long-lived workers exactly once (only when `threads > 1`).
fn ensure_workers() {
    static SPAWNED: OnceLock<()> = OnceLock::new();
    SPAWNED.get_or_init(|| {
        let p = pool();
        for worker in 1..p.threads {
            std::thread::Builder::new()
                .name(format!("skipnode-pool-{worker}"))
                .spawn(move || worker_loop(pool()))
                .expect("failed to spawn pool worker");
        }
    });
}

fn worker_loop(p: &'static Pool) {
    IN_POOL.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job: Arc<Job> = {
            let mut slot = p.slot.lock().expect("pool slot poisoned");
            loop {
                if slot.epoch != seen_epoch {
                    if let Some(job) = slot.job.as_ref() {
                        seen_epoch = slot.epoch;
                        break Arc::clone(job);
                    }
                    seen_epoch = slot.epoch;
                }
                slot = p.work_cv.wait(slot).expect("pool slot poisoned");
            }
        };
        run_chunks(p, &job);
    }
}

/// Claim and execute chunks until the counter is exhausted, then signal the
/// submitter when this call completed the final chunk.
fn run_chunks(p: &Pool, job: &Job) {
    loop {
        let idx = job.next.fetch_add(1, Ordering::Relaxed);
        if idx >= job.chunks {
            return;
        }
        // SAFETY: `idx < chunks`, so the submitter is still blocked in
        // `parallel_for` (it waits for `done == chunks`) and the closure
        // behind `ctx` is alive.
        unsafe { (job.call)(job.ctx, idx) };
        let finished = job.done.fetch_add(1, Ordering::AcqRel) + 1;
        if finished == job.chunks {
            // Last chunk: wake the submitter. Takes the lock so the wakeup
            // cannot race with the submitter's wait registration.
            let _g = p.done_lock.lock().expect("pool done lock poisoned");
            p.done_cv.notify_all();
        }
    }
}

/// Number of threads the pool uses for parallel kernels, including the
/// submitting thread. Resolved once per process from `SKIPNODE_THREADS`
/// (else the machine's available parallelism).
pub fn num_threads() -> usize {
    pool().threads
}

/// Heuristic chunk count for `work_items` independent items: enough
/// over-decomposition for dynamic load balancing, never more chunks than
/// items.
pub fn chunk_count(work_items: usize) -> usize {
    (num_threads() * 4).min(work_items).max(1)
}

/// Run `f(chunk_index)` for every `chunk_index in 0..chunks`, using the
/// persistent pool. The closure runs concurrently on the pool workers and
/// the calling thread; it must partition any mutable state disjointly by
/// chunk index (see [`par_chunks_mut`] for the common slice case).
///
/// Runs inline (serially) when the pool is single-threaded, when called
/// from inside another pool job, or when another job is already in flight.
pub fn parallel_for<F>(chunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if chunks == 0 {
        return;
    }
    let p = pool();
    if p.threads == 1 || chunks == 1 || IN_POOL.with(|flag| flag.get()) {
        run_inline(&f, chunks);
        return;
    }
    // One job in flight at a time; a busy pool means some other thread is
    // mid-kernel, so just do our own work serially rather than wait.
    let Ok(_submit_guard) = p.submit.try_lock() else {
        run_inline(&f, chunks);
        return;
    };
    ensure_workers();

    unsafe fn call_erased<F: Fn(usize) + Sync>(ctx: *const (), idx: usize) {
        // SAFETY: `ctx` points to `f` in the submitting frame, which is
        // kept alive until every chunk has run.
        let f = unsafe { &*(ctx as *const F) };
        f(idx);
    }

    let job = Arc::new(Job {
        call: call_erased::<F>,
        ctx: (&raw const f).cast(),
        next: AtomicUsize::new(0),
        chunks,
        done: AtomicUsize::new(0),
    });

    {
        let mut slot = p.slot.lock().expect("pool slot poisoned");
        slot.epoch += 1;
        slot.job = Some(Arc::clone(&job));
        drop(slot);
        p.work_cv.notify_all();
    }

    // The submitting thread participates instead of idling.
    IN_POOL.with(|flag| flag.set(true));
    run_chunks(p, &job);
    IN_POOL.with(|flag| flag.set(false));

    // Wait for stragglers still executing their final chunk.
    let mut guard = p.done_lock.lock().expect("pool done lock poisoned");
    while job.done.load(Ordering::Acquire) < chunks {
        guard = p.done_cv.wait(guard).expect("pool done lock poisoned");
    }
    drop(guard);

    // Retire the job; late-waking workers see `None` and go back to sleep.
    // (Workers already holding an `Arc` clone can only observe an exhausted
    // chunk counter, never `ctx`.)
    p.slot.lock().expect("pool slot poisoned").job = None;
}

/// Run `f` with kernel-level parallelism disabled on the current thread:
/// every [`parallel_for`] issued inside (directly or through nested calls)
/// executes inline, and the pool is never entered. This is the
/// nested-parallelism policy hook for *run-level* executors: when several
/// independent training runs execute on their own threads, each run's
/// kernels must go serial or the machine oversubscribes (outer threads ×
/// inner pool workers). Restores the previous state on exit, so nesting is
/// safe.
pub fn with_serial_kernels<R>(f: impl FnOnce() -> R) -> R {
    let was = IN_POOL.with(|flag| flag.replace(true));
    let out = f();
    IN_POOL.with(|flag| flag.set(was));
    out
}

fn run_inline<F: Fn(usize) + Sync>(f: &F, chunks: usize) {
    let was = IN_POOL.with(|flag| flag.replace(true));
    for idx in 0..chunks {
        f(idx);
    }
    IN_POOL.with(|flag| flag.set(was));
}

/// Split `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and run `f(chunk_index, chunk)` for each on the
/// pool. This is the safe entry point for kernels that write disjoint
/// row-blocks of an output buffer in parallel.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut with zero chunk_len");
    let total = data.len();
    if total == 0 {
        return;
    }
    let chunks = total.div_ceil(chunk_len);
    let base = data.as_mut_ptr() as usize;
    parallel_for(chunks, |idx| {
        let start = idx * chunk_len;
        let len = chunk_len.min(total - start);
        // SAFETY: chunks index disjoint ranges of `data`, which outlives
        // this call because `parallel_for` blocks until every chunk ran.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), len) };
        f(idx, chunk);
    });
}

/// Split `data` at the element offsets in `bounds` (`bounds[0] == 0`,
/// `bounds.last() == data.len()`, non-decreasing) and run `f(chunk_index,
/// chunk)` for each range `[bounds[i], bounds[i+1])` on the pool. Unlike
/// [`par_chunks_mut`], chunks may have *unequal* lengths — this is the entry
/// point for nnz-balanced sparse kernels, whose row ranges are chosen by
/// nonzero count rather than row count. Empty ranges are dispatched (with an
/// empty slice) so chunk indices stay aligned with `bounds`.
pub fn par_ranges_mut<T, F>(data: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(bounds.len() >= 2, "par_ranges_mut needs at least one range");
    assert_eq!(bounds[0], 0, "par_ranges_mut bounds must start at 0");
    assert_eq!(
        *bounds.last().unwrap(),
        data.len(),
        "par_ranges_mut bounds must end at data.len()"
    );
    debug_assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "par_ranges_mut bounds must be non-decreasing"
    );
    let chunks = bounds.len() - 1;
    let base = data.as_mut_ptr() as usize;
    parallel_for(chunks, |idx| {
        let start = bounds[idx];
        let len = bounds[idx + 1] - start;
        // SAFETY: bounds are non-decreasing, so ranges are disjoint; `data`
        // outlives this call because `parallel_for` blocks until every
        // chunk ran.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), len) };
        f(idx, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_chunk_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(97, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_partitions_disjointly() {
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 7, |idx, chunk| {
            for v in chunk {
                *v += 1 + idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 7) as u32, "element {i}");
        }
    }

    #[test]
    fn par_ranges_mut_handles_unequal_and_empty_ranges() {
        let mut data = vec![0u32; 100];
        // Skewed split: one huge range, several tiny ones, one empty.
        let bounds = [0usize, 80, 80, 85, 100];
        par_ranges_mut(&mut data, &bounds, |idx, chunk| {
            for v in chunk {
                *v = idx as u32 + 1;
            }
        });
        assert!(data[..80].iter().all(|&v| v == 1));
        assert!(data[80..85].iter().all(|&v| v == 3));
        assert!(data[85..].iter().all(|&v| v == 4));
    }

    #[test]
    fn nested_parallel_for_runs_inline_without_deadlock() {
        let total = AtomicU64::new(0);
        parallel_for(8, |_| {
            parallel_for(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (0..8).sum::<u64>());
    }

    #[test]
    fn concurrent_submitters_complete() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let sum = AtomicU64::new(0);
                    for _ in 0..50 {
                        parallel_for(16, |i| {
                            sum.fetch_add(i as u64, Ordering::Relaxed);
                        });
                    }
                    assert_eq!(sum.load(Ordering::Relaxed), 50 * (0..16).sum::<u64>());
                });
            }
        });
    }

    #[test]
    fn num_threads_is_stable_and_positive() {
        let n = num_threads();
        assert!(n >= 1);
        assert_eq!(n, num_threads());
    }

    #[test]
    fn chunk_count_bounded_by_items() {
        assert_eq!(chunk_count(0), 1);
        assert!(chunk_count(3) <= 3);
        assert!(chunk_count(1_000_000) >= num_threads());
    }
}
