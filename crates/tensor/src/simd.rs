//! Runtime-dispatched SIMD inner kernels.
//!
//! Every hot loop in the stack funnels through a handful of primitives in
//! this module: the GEMM register microkernel, the feature-dimension axpy
//! used by SpMM and `Aᵀ·B`, the dot chains of `A·Bᵀ`, the elementwise
//! update kernels, the f64-accumulated square-sum, and the fused Adam
//! element step. Each primitive takes an explicit [`Isa`] so callers hoist
//! the dispatch out of their loops; the active ISA is detected once per
//! process (AVX2+FMA on x86_64, NEON on aarch64) and can be forced off via
//! `SKIPNODE_SIMD=off` or [`force`] for A/B comparisons.
//!
//! # Accumulation-order policy
//!
//! The identity suites pin eager-vs-compiled and fused-vs-unfused results
//! bitwise, so vectorized kernels must not make results depend on schedule,
//! tile size, or row compaction. The rules:
//!
//! - **Order-preserving kernels vectorize across output elements only.**
//!   The GEMM microkernel, the SpMM axpy, and `Aᵀ·B` accumulate each output
//!   element in the exact scalar index order (`p = 0..k`, neighbors in CSR
//!   order); lanes hold *different* output columns, never partial sums of
//!   the same element. Zero-skip (`fma(0, x, acc) == acc` for finite `x`)
//!   stays exact.
//! - **The SIMD path uses fused multiply-add uniformly** — vector FMA in
//!   the lane loops and `f32::mul_add` in every remainder loop — so a given
//!   element's bits are invariant to where tile/lane boundaries fall. SIMD
//!   results therefore differ from the scalar reference only by FMA's
//!   skipped intermediate rounding, pinned by tolerance-gated tests.
//! - **Bitwise-class kernels avoid FMA entirely.** `add_scaled`, `relu`,
//!   and the Adam step use plain mul/add/max lanes that round exactly like
//!   the scalar reference, so they stay bit-identical to it on every ISA
//!   (the `-0.0 < +0.0` ReLU edge noted on [`relu`] aside).
//! - **Reductions that fold lanes** (`dot`, [`sum_sq_f64`]) combine partial
//!   sums in a fixed order, so they are deterministic per ISA but
//!   tolerance-class versus scalar.
//!
//! The scalar kernels in [`crate::gemm`] and friends are untouched and
//! remain the bitwise reference; `SKIPNODE_SIMD=off` reproduces pre-SIMD
//! results byte-for-byte.

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set family the dispatched kernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar loops; bit-identical to the pre-SIMD kernels.
    Scalar,
    /// 8-lane f32 AVX2 with FMA (x86_64, runtime-detected).
    Avx2,
    /// 4-lane f32 NEON (aarch64 baseline).
    Neon,
}

impl Isa {
    /// Stable lowercase name used in bench metadata and tuner reports.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2+fma",
            Isa::Neon => "neon",
        }
    }

    /// f32 lanes per vector register on this ISA.
    pub fn lanes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 8,
            Isa::Neon => 4,
        }
    }
}

/// 0 = undetected sentinel; otherwise `Isa` discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn code(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
        Isa::Neon => 3,
    }
}

/// The ISA the current host supports for `isa` (used to clamp [`force`]).
fn supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        Isa::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        Isa::Neon => cfg!(target_arch = "aarch64"),
    }
}

fn detect() -> Isa {
    if let Ok(v) = std::env::var("SKIPNODE_SIMD") {
        match v.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" => return Isa::Scalar,
            "" | "on" | "auto" | "1" => {}
            other => eprintln!("SKIPNODE_SIMD={other:?} not recognized (off|auto); using auto"),
        }
    }
    if supported(Isa::Avx2) {
        Isa::Avx2
    } else if supported(Isa::Neon) {
        Isa::Neon
    } else {
        Isa::Scalar
    }
}

/// The ISA kernels currently dispatch to. Detected on first call (honoring
/// `SKIPNODE_SIMD=off`), then a relaxed atomic load.
pub fn active() -> Isa {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let isa = detect();
            ACTIVE.store(code(isa), Ordering::Relaxed);
            isa
        }
        1 => Isa::Scalar,
        2 => Isa::Avx2,
        _ => Isa::Neon,
    }
}

/// Force the dispatched ISA for this process (benches comparing scalar vs
/// SIMD on the same binary; tests pinning one path). Requests the host
/// cannot execute are clamped to [`Isa::Scalar`]; returns what was applied.
pub fn force(isa: Isa) -> Isa {
    let applied = if supported(isa) { isa } else { Isa::Scalar };
    ACTIVE.store(code(applied), Ordering::Relaxed);
    applied
}

// ---------------------------------------------------------------------------
// GEMM register-tile selection
// ---------------------------------------------------------------------------

/// Register-tile shape candidates for the SIMD GEMM microkernel
/// (`rows × columns` of output per tile step). All candidates produce
/// bit-identical results — per-element accumulation order is `p = 0..k`
/// regardless of tile shape — so the auto-tuner may pick freely on speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmTile {
    /// 4 rows × 8 columns (one vector wide).
    T4x8,
    /// 4 rows × 16 columns.
    T4x16,
    /// 8 rows × 8 columns.
    T8x8,
    /// 6 rows × 16 columns.
    T6x16,
}

impl GemmTile {
    /// Every candidate the tuner times, in a fixed order.
    pub const ALL: [GemmTile; 4] = [
        GemmTile::T4x8,
        GemmTile::T4x16,
        GemmTile::T8x8,
        GemmTile::T6x16,
    ];

    /// Stable name used in bench metadata and tuner reports.
    pub fn name(self) -> &'static str {
        match self {
            GemmTile::T4x8 => "4x8",
            GemmTile::T4x16 => "4x16",
            GemmTile::T8x8 => "8x8",
            GemmTile::T6x16 => "6x16",
        }
    }
}

/// Process-global tile choice; encoding is index into [`GemmTile::ALL`].
static TILE: AtomicU8 = AtomicU8::new(1); // default T4x16

/// The tile the SIMD GEMM currently uses (tuner-set, bit-neutral).
pub fn gemm_tile() -> GemmTile {
    GemmTile::ALL[(TILE.load(Ordering::Relaxed) as usize).min(GemmTile::ALL.len() - 1)]
}

/// Select the GEMM register tile (normally called by the auto-tuner).
pub fn set_gemm_tile(tile: GemmTile) {
    let idx = GemmTile::ALL.iter().position(|&t| t == tile).unwrap_or(1);
    TILE.store(idx as u8, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// FMA-class primitives (order-preserving per element, tolerance vs scalar)
// ---------------------------------------------------------------------------

/// `y[i] = alpha * x[i] + y[i]`. This is the inner axpy of SpMM's neighbor
/// accumulation and `Aᵀ·B`'s streaming update: each `y[i]` is one output
/// element, so repeated calls accumulate every element in the caller's
/// (scalar) order. Vector ISAs use FMA lanes (tolerance-class); the
/// [`Isa::Scalar`] path is the plain `y += alpha * x` reference loop,
/// bit-identical to the pre-SIMD kernels.
#[inline]
pub fn axpy(isa: Isa, alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: Isa::Avx2 only escapes detection/force when avx2+fma are
        // available on this host.
        unsafe { axpy_avx2(alpha, x, y) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { axpy_neon(alpha, x, y) };
        return;
    }
    let _ = isa;
    for (o, &xv) in y.iter_mut().zip(x) {
        *o += alpha * xv;
    }
}

/// Dot product. Vector ISAs use FMA lanes with a fixed-order horizontal
/// fold (deterministic per ISA, tolerance-class); [`Isa::Scalar`] is the
/// plain `acc += x*y` reference chain.
#[inline]
pub fn dot(isa: Isa, x: &[f32], y: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        return unsafe { dot_avx2(x, y) };
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        return unsafe { dot_neon(x, y) };
    }
    let _ = isa;
    let mut acc = 0.0f32;
    for (&xv, &yv) in x.iter().zip(y) {
        acc += xv * yv;
    }
    acc
}

/// Four simultaneous dot products of `x` against `ys[0..4]` (the `A·Bᵀ`
/// microkernel: one pass over `x` serves four output columns).
pub fn dot4(isa: Isa, x: &[f32], ys: [&[f32]; 4]) -> [f32; 4] {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        return unsafe { dot4_avx2(x, ys) };
    }
    [
        dot(isa, x, ys[0]),
        dot(isa, x, ys[1]),
        dot(isa, x, ys[2]),
        dot(isa, x, ys[3]),
    ]
}

/// Sum of squares with f64 accumulation (the [`crate::l2_norm_sq`] chunk
/// kernel). Scalar ISA reproduces the reference loop bitwise; vector ISAs
/// fold two f64 lanes-groups in a fixed order (tolerance-class).
pub fn sum_sq_f64(isa: Isa, x: &[f32]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        return unsafe { sum_sq_f64_avx2(x) };
    }
    let _ = isa;
    x.iter().map(|&v| (v as f64) * (v as f64)).sum()
}

/// SIMD GEMM row kernel: rows `[row_begin, row_end)` of `a·b` into the row
/// block `out`, using the register tile `tile`. Per-element accumulation
/// order is `p = 0..k` with exact zero-skip for every tile shape, so all
/// tiles (and the serial/pooled split) produce identical bytes; versus the
/// scalar reference the only difference is FMA contraction.
pub fn gemm_rows(
    isa: Isa,
    tile: GemmTile,
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        unsafe {
            match tile {
                GemmTile::T4x8 => gemm_rows_avx2::<4, 1>(a, b, out, row_begin, row_end),
                GemmTile::T4x16 => gemm_rows_avx2::<4, 2>(a, b, out, row_begin, row_end),
                GemmTile::T8x8 => gemm_rows_avx2::<8, 1>(a, b, out, row_begin, row_end),
                GemmTile::T6x16 => gemm_rows_avx2::<6, 2>(a, b, out, row_begin, row_end),
            }
        }
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe {
            match tile {
                GemmTile::T4x8 => gemm_rows_neon::<4, 2>(a, b, out, row_begin, row_end),
                GemmTile::T4x16 => gemm_rows_neon::<4, 4>(a, b, out, row_begin, row_end),
                GemmTile::T8x8 => gemm_rows_neon::<8, 2>(a, b, out, row_begin, row_end),
                GemmTile::T6x16 => gemm_rows_neon::<6, 4>(a, b, out, row_begin, row_end),
            }
        }
        return;
    }
    let _ = (isa, tile);
    gemm_rows_portable(a, b, out, row_begin, row_end);
}

/// Portable fallback matching the SIMD path's per-element semantics
/// (`mul_add` accumulation, zero-skip). Only reached when a vector ISA is
/// requested on a host without one (tests on exotic targets).
fn gemm_rows_portable(a: &Matrix, b: &Matrix, out: &mut [f32], row_begin: usize, row_end: usize) {
    let n = b.cols();
    let bd = b.as_slice();
    for (local, r) in (row_begin..row_end).enumerate() {
        let out_row = &mut out[local * n..(local + 1) * n];
        out_row.fill(0.0);
        for (p, &ap) in a.row(r).iter().enumerate() {
            if ap == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = ap.mul_add(bv, *o);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bitwise-class primitives (plain mul/add/max; bit-identical to scalar)
// ---------------------------------------------------------------------------

/// `y[i] += alpha * x[i]` with separate mul and add lanes — rounds exactly
/// like the scalar loop, so this stays bitwise on every ISA.
#[inline]
pub fn add_scaled(isa: Isa, y: &mut [f32], x: &[f32], alpha: f32) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        unsafe { add_scaled_avx2(y, x, alpha) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { add_scaled_neon(y, x, alpha) };
        return;
    }
    let _ = isa;
    for (a, &b) in y.iter_mut().zip(x) {
        *a += alpha * b;
    }
}

/// In-place ReLU. Bit-identical to `x.max(0.0)` for every input except
/// `-0.0`, where the vector max returns `+0.0` (the scalar `f32::max` may
/// keep the sign). The stack never produces `-0.0` pre-activations — exact
/// zeros come from zero-skip, which yields `+0.0` — so the paths agree on
/// real data; tests simply avoid `-0.0` inputs.
#[inline]
pub fn relu(isa: Isa, y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        unsafe { relu_avx2(y) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { relu_neon(y) };
        return;
    }
    let _ = isa;
    for v in y {
        *v = v.max(0.0);
    }
}

/// Hyperparameters of one fused Adam step, pre-broadcast by the caller
/// ([`bias1`](AdamLanes::bias1)/[`bias2`](AdamLanes::bias2) are the
/// `1 - βᵢᵗ` bias corrections for the current step).
#[derive(Debug, Clone, Copy)]
pub struct AdamLanes {
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Decoupled weight decay added into the gradient.
    pub weight_decay: f32,
    /// Learning rate (f64, as in the scalar reference).
    pub lr: f64,
    /// Denominator epsilon (f64).
    pub eps: f64,
    /// `1 - β₁ᵗ`.
    pub bias1: f64,
    /// `1 - β₂ᵗ`.
    pub bias2: f64,
}

/// One fused Adam update over a parameter slice: moments in f32 with plain
/// mul/add (no FMA), the moment-hat/denominator section in f64 exactly as
/// the scalar reference computes it. Bit-identical to the scalar loop on
/// every ISA. `grad = None` means an all-zero gradient (frozen tail of a
/// ragged parameter group) — the reference's `0.0 + wd·θ` path.
pub fn adam_step(
    isa: Isa,
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: Option<&[f32]>,
    h: &AdamLanes,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `axpy`.
        unsafe { adam_step_avx2(value, m, v, grad, h) };
        return;
    }
    let _ = isa;
    adam_step_scalar(value, m, v, grad, h);
}

/// Scalar Adam element loop — the bitwise reference the vector path must
/// reproduce (and the remainder loop it shares).
fn adam_step_scalar(
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: Option<&[f32]>,
    h: &AdamLanes,
) {
    let omb1 = 1.0 - h.beta1;
    let omb2 = 1.0 - h.beta2;
    for j in 0..value.len() {
        let g = grad.map_or(0.0, |g| g[j]) + h.weight_decay * value[j];
        let mj = h.beta1 * m[j] + omb1 * g;
        let vj = h.beta2 * v[j] + omb2 * g * g;
        m[j] = mj;
        v[j] = vj;
        let m_hat = mj as f64 / h.bias1;
        let v_hat = vj as f64 / h.bias2;
        let upd = h.lr * m_hat / (v_hat.sqrt() + h.eps);
        value[j] -= upd as f32;
    }
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{AdamLanes, Matrix};
    use std::arch::x86_64::*;

    /// Fixed-order horizontal sum: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let av = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) = alpha.mul_add(*x.get_unchecked(i), *y.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len().min(y.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            acc = _mm256_fmadd_ps(xv, yv, acc);
            i += 8;
        }
        let mut tail = 0.0f32;
        while i < n {
            tail = x.get_unchecked(i).mul_add(*y.get_unchecked(i), tail);
            i += 1;
        }
        hsum(acc) + tail
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot4_avx2(x: &[f32], ys: [&[f32]; 4]) -> [f32; 4] {
        let n = x.len();
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            for (a, yrow) in acc.iter_mut().zip(&ys) {
                *a = _mm256_fmadd_ps(xv, _mm256_loadu_ps(yrow.as_ptr().add(i)), *a);
            }
            i += 8;
        }
        let mut tail = [0.0f32; 4];
        while i < n {
            let xv = *x.get_unchecked(i);
            for (t, yrow) in tail.iter_mut().zip(&ys) {
                *t = xv.mul_add(*yrow.get_unchecked(i), *t);
            }
            i += 1;
        }
        let mut out = [0.0f32; 4];
        for j in 0..4 {
            out[j] = hsum(acc[j]) + tail[j];
        }
        out
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_sq_f64_avx2(x: &[f32]) -> f64 {
        let n = x.len();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(x.as_ptr().add(i));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
            acc0 = _mm256_fmadd_pd(lo, lo, acc0);
            acc1 = _mm256_fmadd_pd(hi, hi, acc1);
            i += 8;
        }
        let mut tail = 0.0f64;
        while i < n {
            let v = *x.get_unchecked(i) as f64;
            tail += v * v;
            i += 1;
        }
        let fold = |v: __m256d| {
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), v);
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        };
        (fold(acc0) + fold(acc1)) + tail
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_scaled_avx2(y: &mut [f32], x: &[f32], alpha: f32) {
        let n = y.len().min(x.len());
        let av = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            // mul + add, not FMA: bitwise with the scalar `*a += alpha * b`.
            _mm256_storeu_ps(
                y.as_mut_ptr().add(i),
                _mm256_add_ps(yv, _mm256_mul_ps(av, xv)),
            );
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn relu_avx2(y: &mut [f32]) {
        let n = y.len();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_max_ps(v, zero));
            i += 8;
        }
        while i < n {
            let v = y.get_unchecked_mut(i);
            *v = v.max(0.0);
            i += 1;
        }
    }

    /// Register-tiled GEMM rows: `MR` output rows × `NU` 8-lane column
    /// vectors per tile. Accumulation over `p` is in scalar order with the
    /// same all-rows-zero skip as the scalar kernel, so every tile shape
    /// produces identical bytes.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_rows_avx2<const MR: usize, const NU: usize>(
        a: &Matrix,
        b: &Matrix,
        out: &mut [f32],
        row_begin: usize,
        row_end: usize,
    ) {
        let k = a.cols();
        let n = b.cols();
        let bd = b.as_slice();
        let nr = NU * 8;
        let rows = row_end - row_begin;
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let r0 = row_begin + i;
            let mut jt = 0;
            while jt < n {
                let w = nr.min(n - jt);
                if mr == MR && w == nr {
                    let a_ptrs: [*const f32; MR] = std::array::from_fn(|r| a.row(r0 + r).as_ptr());
                    let mut acc = [[_mm256_setzero_ps(); NU]; MR];
                    for p in 0..k {
                        let avals: [f32; MR] = std::array::from_fn(|r| *a_ptrs[r].add(p));
                        if avals == [0.0; MR] {
                            continue;
                        }
                        let bp = bd.as_ptr().add(p * n + jt);
                        let bv: [__m256; NU] =
                            std::array::from_fn(|u| _mm256_loadu_ps(bp.add(u * 8)));
                        for (accr, &ar) in acc.iter_mut().zip(&avals) {
                            let av = _mm256_set1_ps(ar);
                            for (o, &bvu) in accr.iter_mut().zip(&bv) {
                                *o = _mm256_fmadd_ps(av, bvu, *o);
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let optr = out.as_mut_ptr().add((i + r) * n + jt);
                        for (u, &o) in accr.iter().enumerate() {
                            _mm256_storeu_ps(optr.add(u * 8), o);
                        }
                    }
                } else {
                    // Remainder: same per-element order, mul_add to stay
                    // FMA-consistent with the tile path.
                    let mut acc = [0.0f32; 16];
                    for r in 0..mr {
                        let a_row = a.row(r0 + r);
                        acc[..w].fill(0.0);
                        for (p, &ap) in a_row.iter().enumerate() {
                            if ap == 0.0 {
                                continue;
                            }
                            let bp = &bd[p * n + jt..p * n + jt + w];
                            for (o, &bv) in acc[..w].iter_mut().zip(bp) {
                                *o = ap.mul_add(bv, *o);
                            }
                        }
                        out[(i + r) * n + jt..(i + r) * n + jt + w].copy_from_slice(&acc[..w]);
                    }
                }
                jt += w;
            }
            i += mr;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn adam_step_avx2(
        value: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        grad: Option<&[f32]>,
        h: &AdamLanes,
    ) {
        let n = value.len();
        let wd = _mm256_set1_ps(h.weight_decay);
        let b1 = _mm256_set1_ps(h.beta1);
        let b2 = _mm256_set1_ps(h.beta2);
        let omb1 = _mm256_set1_ps(1.0 - h.beta1);
        let omb2 = _mm256_set1_ps(1.0 - h.beta2);
        let bc1 = _mm256_set1_pd(h.bias1);
        let bc2 = _mm256_set1_pd(h.bias2);
        let lr = _mm256_set1_pd(h.lr);
        let eps = _mm256_set1_pd(h.eps);
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let val = _mm256_loadu_ps(value.as_ptr().add(i));
            let gv = match grad {
                Some(g) => _mm256_loadu_ps(g.as_ptr().add(i)),
                None => zero,
            };
            // g = grad + wd*θ; m' = β₁m + (1-β₁)g; v' = β₂v + ((1-β₂)g)·g —
            // plain mul/add in the scalar association order (bitwise).
            let g = _mm256_add_ps(gv, _mm256_mul_ps(wd, val));
            let mv = _mm256_loadu_ps(m.as_ptr().add(i));
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let m_new = _mm256_add_ps(_mm256_mul_ps(b1, mv), _mm256_mul_ps(omb1, g));
            let v_new = _mm256_add_ps(
                _mm256_mul_ps(b2, vv),
                _mm256_mul_ps(_mm256_mul_ps(omb2, g), g),
            );
            _mm256_storeu_ps(m.as_mut_ptr().add(i), m_new);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), v_new);
            // f64 section: m̂ = m'/bc₁, v̂ = v'/bc₂, upd = lr·m̂/(√v̂+ε) —
            // div/sqrt/convert are IEEE-exact elementwise, matching scalar.
            let upd_half = |m128: __m128, v128: __m128| -> __m128 {
                let m64 = _mm256_cvtps_pd(m128);
                let v64 = _mm256_cvtps_pd(v128);
                let m_hat = _mm256_div_pd(m64, bc1);
                let v_hat = _mm256_div_pd(v64, bc2);
                let denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), eps);
                _mm256_cvtpd_ps(_mm256_div_pd(_mm256_mul_pd(lr, m_hat), denom))
            };
            let lo = upd_half(_mm256_castps256_ps128(m_new), _mm256_castps256_ps128(v_new));
            let hi = upd_half(
                _mm256_extractf128_ps(m_new, 1),
                _mm256_extractf128_ps(v_new, 1),
            );
            let upd = _mm256_set_m128(hi, lo);
            _mm256_storeu_ps(value.as_mut_ptr().add(i), _mm256_sub_ps(val, upd));
            i += 8;
        }
        if i < n {
            super::adam_step_scalar(
                &mut value[i..],
                &mut m[i..],
                &mut v[i..],
                grad.map(|g| &g[i..]),
                h,
            );
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    adam_step_avx2, add_scaled_avx2, axpy_avx2, dot4_avx2, dot_avx2, gemm_rows_avx2, relu_avx2,
    sum_sq_f64_avx2,
};

// ---------------------------------------------------------------------------
// NEON implementations (aarch64 baseline; f64-heavy Adam stays scalar)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::Matrix;
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy_neon(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let mut i = 0;
        while i + 4 <= n {
            let xv = vld1q_f32(x.as_ptr().add(i));
            let yv = vld1q_f32(y.as_ptr().add(i));
            vst1q_f32(y.as_mut_ptr().add(i), vfmaq_n_f32(yv, xv, alpha));
            i += 4;
        }
        while i < n {
            *y.get_unchecked_mut(i) = alpha.mul_add(*x.get_unchecked(i), *y.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn dot_neon(x: &[f32], y: &[f32]) -> f32 {
        let n = x.len().min(y.len());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let xv = vld1q_f32(x.as_ptr().add(i));
            let yv = vld1q_f32(y.as_ptr().add(i));
            acc = vfmaq_f32(acc, xv, yv);
            i += 4;
        }
        let mut tail = 0.0f32;
        while i < n {
            tail = x.get_unchecked(i).mul_add(*y.get_unchecked(i), tail);
            i += 1;
        }
        let mut lanes = [0.0f32; 4];
        vst1q_f32(lanes.as_mut_ptr(), acc);
        ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn add_scaled_neon(y: &mut [f32], x: &[f32], alpha: f32) {
        let n = y.len().min(x.len());
        let av = vdupq_n_f32(alpha);
        let mut i = 0;
        while i + 4 <= n {
            let xv = vld1q_f32(x.as_ptr().add(i));
            let yv = vld1q_f32(y.as_ptr().add(i));
            // mul + add (not fused) to stay bitwise with the scalar loop.
            vst1q_f32(y.as_mut_ptr().add(i), vaddq_f32(yv, vmulq_f32(av, xv)));
            i += 4;
        }
        while i < n {
            *y.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn relu_neon(y: &mut [f32]) {
        let n = y.len();
        let zero = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let v = vld1q_f32(y.as_ptr().add(i));
            vst1q_f32(y.as_mut_ptr().add(i), vmaxq_f32(v, zero));
            i += 4;
        }
        while i < n {
            let v = y.get_unchecked_mut(i);
            *v = v.max(0.0);
            i += 1;
        }
    }

    /// NEON GEMM rows: `MR` output rows × `NU` 4-lane column vectors.
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_rows_neon<const MR: usize, const NU: usize>(
        a: &Matrix,
        b: &Matrix,
        out: &mut [f32],
        row_begin: usize,
        row_end: usize,
    ) {
        let k = a.cols();
        let n = b.cols();
        let bd = b.as_slice();
        let nr = NU * 4;
        let rows = row_end - row_begin;
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let r0 = row_begin + i;
            let mut jt = 0;
            while jt < n {
                let w = nr.min(n - jt);
                if mr == MR && w == nr {
                    let a_ptrs: [*const f32; MR] = std::array::from_fn(|r| a.row(r0 + r).as_ptr());
                    let mut acc = [[vdupq_n_f32(0.0); NU]; MR];
                    for p in 0..k {
                        let avals: [f32; MR] = std::array::from_fn(|r| *a_ptrs[r].add(p));
                        if avals == [0.0; MR] {
                            continue;
                        }
                        let bp = bd.as_ptr().add(p * n + jt);
                        let bv: [float32x4_t; NU] =
                            std::array::from_fn(|u| vld1q_f32(bp.add(u * 4)));
                        for (accr, &ar) in acc.iter_mut().zip(&avals) {
                            for (o, &bvu) in accr.iter_mut().zip(&bv) {
                                *o = vfmaq_n_f32(*o, bvu, ar);
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let optr = out.as_mut_ptr().add((i + r) * n + jt);
                        for (u, &o) in accr.iter().enumerate() {
                            vst1q_f32(optr.add(u * 4), o);
                        }
                    }
                } else {
                    let mut acc = [0.0f32; 16];
                    for r in 0..mr {
                        let a_row = a.row(r0 + r);
                        acc[..w].fill(0.0);
                        for (p, &ap) in a_row.iter().enumerate() {
                            if ap == 0.0 {
                                continue;
                            }
                            let bp = &bd[p * n + jt..p * n + jt + w];
                            for (o, &bv) in acc[..w].iter_mut().zip(bp) {
                                *o = ap.mul_add(bv, *o);
                            }
                        }
                        out[(i + r) * n + jt..(i + r) * n + jt + w].copy_from_slice(&acc[..w]);
                    }
                }
                jt += w;
            }
            i += mr;
        }
    }
}

#[cfg(target_arch = "aarch64")]
use neon::{add_scaled_neon, axpy_neon, dot_neon, gemm_rows_neon, relu_neon};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    fn vector_isa() -> Option<Isa> {
        [Isa::Avx2, Isa::Neon]
            .into_iter()
            .find(|&isa| supported(isa))
    }

    #[test]
    fn force_clamps_unsupported_requests() {
        let prev = active();
        assert_eq!(force(Isa::Scalar), Isa::Scalar);
        let v = force(Isa::Avx2);
        assert!(v == Isa::Avx2 || v == Isa::Scalar);
        force(prev);
    }

    #[test]
    fn add_scaled_is_bitwise_vs_scalar() {
        let Some(isa) = vector_isa() else { return };
        let mut rng = SplitRng::new(11);
        for len in [0usize, 1, 3, 8, 13, 64, 257] {
            let x: Vec<f32> = (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let mut y_s: Vec<f32> = (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect();
            let mut y_v = y_s.clone();
            add_scaled(Isa::Scalar, &mut y_s, &x, 0.37);
            add_scaled(isa, &mut y_v, &x, 0.37);
            assert_eq!(y_s, y_v, "len {len}");
        }
    }

    #[test]
    fn relu_is_bitwise_vs_scalar_on_nonzero_inputs() {
        let Some(isa) = vector_isa() else { return };
        let mut rng = SplitRng::new(12);
        for len in [1usize, 7, 8, 9, 31, 200] {
            let mut y_s: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut y_v = y_s.clone();
            relu(Isa::Scalar, &mut y_s);
            relu(isa, &mut y_v);
            assert_eq!(y_s, y_v, "len {len}");
        }
    }

    #[test]
    fn axpy_and_dot_are_close_to_scalar() {
        let Some(isa) = vector_isa() else { return };
        let mut rng = SplitRng::new(13);
        for len in [1usize, 5, 8, 17, 100] {
            let x: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let y0: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let mut y_s = y0.clone();
            let mut y_v = y0.clone();
            axpy(Isa::Scalar, 0.9, &x, &mut y_s);
            axpy(isa, 0.9, &x, &mut y_v);
            for (a, b) in y_s.iter().zip(&y_v) {
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0));
            }
            let ds = dot(Isa::Scalar, &x, &y0);
            let dv = dot(isa, &x, &y0);
            assert!((ds - dv).abs() <= 1e-4 * ds.abs().max(1.0));
        }
    }

    #[test]
    fn gemm_tiles_agree_bitwise_with_each_other() {
        let Some(isa) = vector_isa() else { return };
        let mut rng = SplitRng::new(14);
        let a = rng.uniform_matrix(13, 9, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 21, -1.0, 1.0);
        let mut reference: Option<Vec<f32>> = None;
        for tile in GemmTile::ALL {
            let mut out = vec![f32::NAN; 13 * 21];
            gemm_rows(isa, tile, &a, &b, &mut out, 0, 13);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "tile {}", tile.name()),
            }
        }
    }

    #[test]
    fn adam_step_is_bitwise_vs_scalar() {
        let Some(isa) = vector_isa() else { return };
        let mut rng = SplitRng::new(15);
        let h = AdamLanes {
            beta1: 0.9,
            beta2: 0.999,
            weight_decay: 5e-4,
            lr: 0.01,
            eps: 1e-8,
            bias1: 1.0 - 0.9f64.powi(3),
            bias2: 1.0 - 0.999f64.powi(3),
        };
        for len in [1usize, 8, 11, 40] {
            let val0: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let m0: Vec<f32> = (0..len).map(|_| rng.uniform(-0.1, 0.1)).collect();
            let v0: Vec<f32> = (0..len).map(|_| rng.uniform(0.0, 0.1)).collect();
            let g: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
            for grad in [Some(g.as_slice()), None] {
                let (mut vs, mut ms, mut ss) = (val0.clone(), m0.clone(), v0.clone());
                let (mut vv, mut mv, mut sv) = (val0.clone(), m0.clone(), v0.clone());
                adam_step(Isa::Scalar, &mut vs, &mut ms, &mut ss, grad, &h);
                adam_step(isa, &mut vv, &mut mv, &mut sv, grad, &h);
                assert_eq!(vs, vv, "len {len}");
                assert_eq!(ms, mv);
                assert_eq!(ss, sv);
            }
        }
    }
}
