//! Recycled matrix buffers for the training hot path.
//!
//! A deep-GCN epoch allocates one output matrix per op on the autograd tape
//! — for a 64-layer model that is hundreds of `n × d` buffers per epoch,
//! every one of them freed again when the tape drops. This module keeps
//! those buffers on a process-wide free-list keyed by element count, so
//! steady-state training performs no large allocations at all: the tape,
//! the sparse kernels, and the trainer all draw from and return to the same
//! pool.
//!
//! Invariants:
//! - [`take`] returns a **zeroed** matrix (kernels that overwrite every
//!   element can use [`take_full`] / [`take_copy`] and skip the memset).
//! - A buffer handed to [`give`] must no longer be referenced; it may be
//!   returned by any later `take*` call of the same element count.
//! - The free-list is bounded ([`MAX_BUFFERS_PER_SHAPE`] per element count,
//!   [`MAX_POOL_BYTES`] overall); beyond that, `give` simply drops the
//!   buffer, so the pool can never hold more memory than a few epochs'
//!   working set.

use crate::matrix::Matrix;
use std::collections::HashMap;
use std::sync::Mutex;

/// Buffers kept per distinct element count.
const MAX_BUFFERS_PER_SHAPE: usize = 16;
/// Total bytes the free-list may hold before `give` starts dropping.
const MAX_POOL_BYTES: usize = 512 << 20;

#[derive(Default)]
struct FreeList {
    /// Spare buffers keyed by element count (shapes with equal `rows*cols`
    /// share buffers; a `Matrix` is just a `Vec<f32>` plus a shape).
    buffers: HashMap<usize, Vec<Vec<f32>>>,
    bytes: usize,
    hits: u64,
    misses: u64,
    returned: u64,
    /// Bytes taken but not yet given back (workspace-mediated only).
    /// Signed: buffers allocated elsewhere and retired through [`give`]
    /// (loss seeds, cloned matrices) decrement without a matching take.
    live_bytes: i64,
    /// High-water mark of `live_bytes` since the last [`reset_peak`].
    peak_live_bytes: i64,
}

static FREE_LIST: Mutex<Option<FreeList>> = Mutex::new(None);

/// Counters describing free-list effectiveness (used by benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// `take*` calls served from a recycled buffer.
    pub hits: u64,
    /// `take*` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers accepted back by [`give`].
    pub returned: u64,
    /// Bytes currently parked on the free-list.
    pub pooled_bytes: usize,
    /// Bytes currently taken from the workspace and not yet given back.
    /// May go negative when buffers allocated outside the workspace are
    /// retired through [`give`].
    pub live_bytes: i64,
    /// High-water mark of `live_bytes` since the last [`reset_peak`] —
    /// the peak workspace working set of the measured window.
    pub peak_live_bytes: i64,
}

fn with_list<R>(f: impl FnOnce(&mut FreeList) -> R) -> R {
    let mut guard = FREE_LIST.lock().expect("workspace free-list poisoned");
    f(guard.get_or_insert_with(FreeList::default))
}

fn take_buffer(len: usize) -> Option<Vec<f32>> {
    with_list(|list| {
        let buf = list.buffers.get_mut(&len).and_then(Vec::pop);
        match &buf {
            Some(b) => {
                list.bytes -= b.len() * std::mem::size_of::<f32>();
                list.hits += 1;
            }
            None => list.misses += 1,
        }
        // Both branches hand `len` elements to the caller (the miss path
        // allocates right after returning), so live accounting is uniform.
        list.live_bytes += (len * std::mem::size_of::<f32>()) as i64;
        list.peak_live_bytes = list.peak_live_bytes.max(list.live_bytes);
        buf
    })
}

/// A zeroed `rows × cols` matrix, recycled when a buffer of that element
/// count is on the free-list.
pub fn take(rows: usize, cols: usize) -> Matrix {
    match take_buffer(rows * cols) {
        Some(mut buf) => {
            buf.fill(0.0);
            Matrix::from_vec(rows, cols, buf)
        }
        None => Matrix::zeros(rows, cols),
    }
}

/// A `rows × cols` matrix filled with `value`, recycled when possible.
pub fn take_full(rows: usize, cols: usize, value: f32) -> Matrix {
    match take_buffer(rows * cols) {
        Some(mut buf) => {
            buf.fill(value);
            Matrix::from_vec(rows, cols, buf)
        }
        None => Matrix::full(rows, cols, value),
    }
}

/// A `rows × cols` matrix with **arbitrary** (stale but initialized)
/// contents, recycled when possible. For kernels that overwrite every
/// element (the GEMM/SpMM `*_into` family) this skips the zeroing memset;
/// falls back to a zeroed allocation when the free-list is empty.
pub fn take_scratch(rows: usize, cols: usize) -> Matrix {
    match take_buffer(rows * cols) {
        Some(buf) => Matrix::from_vec(rows, cols, buf),
        None => Matrix::zeros(rows, cols),
    }
}

/// A copy of `src`, recycled when possible (avoids `Matrix::clone`'s fresh
/// allocation on the per-epoch hot path).
pub fn take_copy(src: &Matrix) -> Matrix {
    let (rows, cols) = src.shape();
    match take_buffer(rows * cols) {
        Some(mut buf) => {
            buf.copy_from_slice(src.as_slice());
            Matrix::from_vec(rows, cols, buf)
        }
        None => src.clone(),
    }
}

/// Return a matrix's backing buffer to the free-list. The pool bounds mean
/// this may simply drop it; either way the matrix is consumed.
pub fn give(m: Matrix) {
    let len = m.len();
    if len == 0 {
        return;
    }
    let bytes = len * std::mem::size_of::<f32>();
    with_list(|list| {
        // The buffer leaves the caller's working set whether or not the
        // pool bounds let us park it.
        list.live_bytes -= bytes as i64;
        if list.bytes + bytes > MAX_POOL_BYTES {
            return;
        }
        let bucket = list.buffers.entry(len).or_default();
        if bucket.len() >= MAX_BUFFERS_PER_SHAPE {
            return;
        }
        bucket.push(m.into_vec());
        list.bytes += bytes;
        list.returned += 1;
    });
}

/// Snapshot of the pool counters.
pub fn stats() -> WorkspaceStats {
    with_list(|list| WorkspaceStats {
        hits: list.hits,
        misses: list.misses,
        returned: list.returned,
        pooled_bytes: list.bytes,
        live_bytes: list.live_bytes,
        peak_live_bytes: list.peak_live_bytes,
    })
}

/// Collapse the peak-live-bytes high-water mark down to the current live
/// level, starting a fresh measurement window (benches call this before
/// the region whose peak working set they want to report).
pub fn reset_peak() {
    with_list(|list| list.peak_live_bytes = list.live_bytes);
}

/// Drop every pooled buffer and reset the counters (tests and
/// memory-pressure escapes).
pub fn clear() {
    with_list(|list| *list = FreeList::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    // The free-list is process-global, so these tests avoid asserting on
    // absolute counter values (other tests run concurrently) and instead
    // check behaviors on distinctive shapes.

    #[test]
    fn take_after_give_recycles_and_zeroes() {
        let mut m = take(13, 17);
        m.as_mut_slice().fill(3.5);
        give(m);
        let again = take(13, 17);
        assert_eq!(again.shape(), (13, 17));
        assert!(again.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_copy_matches_source() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        give(take(2, 2)); // ensure a same-size buffer is pooled
        let copy = take_copy(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn shapes_with_equal_len_share_buffers() {
        give(take(3, 8));
        let m = take(8, 3);
        assert_eq!(m.shape(), (8, 3));
        let m2 = take(24, 1);
        assert_eq!(m2.shape(), (24, 1));
    }

    #[test]
    fn empty_matrices_are_ignored() {
        give(Matrix::zeros(0, 5));
        let m = take(0, 5);
        assert_eq!(m.shape(), (0, 5));
    }

    #[test]
    fn stats_move_in_the_right_direction() {
        let before = stats();
        give(take(31, 7));
        let _hit = take(31, 7);
        let after = stats();
        assert!(after.hits > before.hits, "{after:?} vs {before:?}");
        assert!(after.returned > before.returned);
    }

    // Exact-delta assertions on `live_bytes` / `peak_live_bytes` live in
    // `tests/workspace_counters.rs` (their own process): the free-list is
    // global, and matrix ops in concurrently-running unit tests would
    // perturb the counters mid-assertion here.
}
