//! Reductions and normalizations used by losses, metrics, and PairNorm.

use crate::matrix::Matrix;

/// Squared Frobenius norm with f64 accumulation.
pub fn l2_norm_sq(m: &Matrix) -> f64 {
    m.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum()
}

/// Frobenius norm.
pub fn frobenius_norm(m: &Matrix) -> f64 {
    l2_norm_sq(m).sqrt()
}

/// In-place, numerically stable row-wise softmax.
pub fn row_softmax_in_place(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f64;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v as f64;
        }
        let inv = (1.0 / sum) as f32;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Cosine distance `1 - cos(a, b)` between two rows of (possibly different)
/// matrices. Zero vectors are defined to have distance 0 from anything —
/// this matches the MAD metric's treatment of fully-smoothed (all-zero)
/// features as "indistinguishable".
pub fn cosine_distance_rows(a: &Matrix, ra: usize, b: &Matrix, rb: usize) -> f64 {
    let x = a.row(ra);
    let y = b.row(rb);
    debug_assert_eq!(x.len(), y.len());
    let mut dot = 0.0f64;
    let mut nx = 0.0f64;
    let mut ny = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y) {
        dot += xi as f64 * yi as f64;
        nx += (xi as f64).powi(2);
        ny += (yi as f64).powi(2);
    }
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    let c = (dot / (nx.sqrt() * ny.sqrt())).clamp(-1.0, 1.0);
    1.0 - c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(frobenius_norm(&m), 5.0);
        assert_eq!(l2_norm_sq(&m), 25.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        row_softmax_in_place(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        row_softmax_in_place(&mut a);
        assert!(a.all_finite());
        let mut b = Matrix::from_rows(&[&[0.0, 1.0]]);
        row_softmax_in_place(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cosine_distance_of_identical_rows_is_zero() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]);
        assert!(cosine_distance_rows(&m, 0, &m, 1).abs() < 1e-7);
    }

    #[test]
    fn cosine_distance_of_orthogonal_rows_is_one() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!((cosine_distance_rows(&m, 0, &m, 1) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn cosine_distance_with_zero_vector_is_zero() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert_eq!(cosine_distance_rows(&m, 0, &m, 1), 0.0);
    }
}
