//! Reductions and normalizations used by losses, metrics, and PairNorm.

use crate::kstats;
use crate::matrix::Matrix;
use crate::pool;
use crate::simd;

/// Elements below which reductions stay serial.
const REDUCE_PAR_THRESHOLD: usize = 1 << 17;
/// Fixed per-chunk element count: chunk boundaries (and thus the partial-sum
/// association order) do not depend on the thread count, keeping reductions
/// bit-stable under any `SKIPNODE_THREADS`.
const REDUCE_CHUNK: usize = 1 << 15;

/// Squared Frobenius norm with f64 accumulation, pooled for large matrices.
/// Chunk boundaries are fixed, so the result is thread-count invariant; the
/// SIMD chunk kernel folds f64 lanes in a fixed order (deterministic per
/// ISA, tolerance-class versus scalar).
pub fn l2_norm_sq(m: &Matrix) -> f64 {
    let data = m.as_slice();
    kstats::record(kstats::Kernel::Reduce, data.len());
    let isa = simd::active();
    let chunk_sum = move |c: &[f32]| -> f64 { simd::sum_sq_f64(isa, c) };
    if data.len() < REDUCE_PAR_THRESHOLD {
        return chunk_sum(data);
    }
    let chunks = data.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f64; chunks];
    pool::par_chunks_mut(&mut partials, 1, |idx, slot| {
        let start = idx * REDUCE_CHUNK;
        let end = (start + REDUCE_CHUNK).min(data.len());
        slot[0] = chunk_sum(&data[start..end]);
    });
    partials.iter().sum()
}

/// Frobenius norm.
pub fn frobenius_norm(m: &Matrix) -> f64 {
    l2_norm_sq(m).sqrt()
}

/// In-place, numerically stable row-wise softmax, pooled over row blocks
/// for large matrices.
pub fn row_softmax_in_place(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    let softmax_rows = |rows: &mut [f32]| {
        for row in rows.chunks_mut(cols) {
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum = 0.0f64;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v as f64;
            }
            let inv = (1.0 / sum) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    };
    if m.len() < REDUCE_PAR_THRESHOLD {
        softmax_rows(m.as_mut_slice());
        return;
    }
    let rows_per_chunk = REDUCE_CHUNK.div_ceil(cols);
    pool::par_chunks_mut(m.as_mut_slice(), rows_per_chunk * cols, |_, block| {
        softmax_rows(block);
    });
}

/// Cosine distance `1 - cos(a, b)` between two rows of (possibly different)
/// matrices. Zero vectors are defined to have distance 0 from anything —
/// this matches the MAD metric's treatment of fully-smoothed (all-zero)
/// features as "indistinguishable".
pub fn cosine_distance_rows(a: &Matrix, ra: usize, b: &Matrix, rb: usize) -> f64 {
    let x = a.row(ra);
    let y = b.row(rb);
    debug_assert_eq!(x.len(), y.len());
    let mut dot = 0.0f64;
    let mut nx = 0.0f64;
    let mut ny = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y) {
        dot += xi as f64 * yi as f64;
        nx += (xi as f64).powi(2);
        ny += (yi as f64).powi(2);
    }
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    let c = (dot / (nx.sqrt() * ny.sqrt())).clamp(-1.0, 1.0);
    1.0 - c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(frobenius_norm(&m), 5.0);
        assert_eq!(l2_norm_sq(&m), 25.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        row_softmax_in_place(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = Matrix::from_rows(&[&[1000.0, 1001.0]]);
        row_softmax_in_place(&mut a);
        assert!(a.all_finite());
        let mut b = Matrix::from_rows(&[&[0.0, 1.0]]);
        row_softmax_in_place(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cosine_distance_of_identical_rows_is_zero() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]);
        assert!(cosine_distance_rows(&m, 0, &m, 1).abs() < 1e-7);
    }

    #[test]
    fn cosine_distance_of_orthogonal_rows_is_one() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!((cosine_distance_rows(&m, 0, &m, 1) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn cosine_distance_with_zero_vector_is_zero() {
        let m = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert_eq!(cosine_distance_rows(&m, 0, &m, 1), 0.0);
    }
}
