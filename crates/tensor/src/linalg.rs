//! Power-iteration linear algebra.
//!
//! The paper's bounds are phrased in terms of `s`, the maximum singular
//! value of each weight matrix `W^(l)`, and `λ`, the second-largest
//! eigenvalue magnitude of `Ã`. This module provides `s`; the sparse crate
//! layers the graph-spectrum part (`λ`) on top of [`power_iteration`].

use crate::matrix::Matrix;
use crate::reduce::frobenius_norm;
use crate::rng::SplitRng;

/// Options for the generic power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterOptions {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the Rayleigh quotient.
    pub tol: f64,
    /// RNG seed for the starting vector.
    pub seed: u64,
}

impl Default for PowerIterOptions {
    fn default() -> Self {
        Self {
            max_iters: 300,
            tol: 1e-9,
            seed: 0x5eed,
        }
    }
}

/// Generic power iteration on a linear operator `apply: R^n -> R^n`,
/// orthogonalized against `deflate` vectors each step (assumed orthonormal).
///
/// Returns `(eigenvalue_estimate, eigenvector)` where the eigenvalue is the
/// Rayleigh quotient `vᵀ A v` of the converged unit vector, so its *sign* is
/// meaningful for symmetric operators.
pub fn power_iteration(
    n: usize,
    apply: impl Fn(&[f32], &mut [f32]),
    deflate: &[Vec<f32>],
    opts: PowerIterOptions,
) -> (f64, Vec<f32>) {
    assert!(n > 0, "power iteration on empty operator");
    let mut rng = SplitRng::new(opts.seed);
    let mut v: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
    orthogonalize(&mut v, deflate);
    normalize(&mut v);
    let mut av = vec![0.0f32; n];
    let mut prev_rq = f64::NAN;
    for _ in 0..opts.max_iters {
        apply(&v, &mut av);
        orthogonalize(&mut av, deflate);
        // Rayleigh quotient before normalization: v is unit, so vᵀ(Av).
        let rq: f64 = v.iter().zip(&av).map(|(&a, &b)| a as f64 * b as f64).sum();
        let norm = l2(&av);
        if norm < 1e-30 {
            // Operator annihilates the deflated subspace complement.
            return (0.0, v);
        }
        for (o, &x) in v.iter_mut().zip(&av) {
            *o = (x as f64 / norm) as f32;
        }
        if (rq - prev_rq).abs() <= opts.tol * rq.abs().max(1.0) {
            return (rq, v);
        }
        prev_rq = rq;
    }
    (prev_rq, v)
}

fn l2(v: &[f32]) -> f64 {
    v.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f32]) {
    let n = l2(v);
    if n > 0.0 {
        let inv = (1.0 / n) as f32;
        for x in v {
            *x *= inv;
        }
    }
}

fn orthogonalize(v: &mut [f32], basis: &[Vec<f32>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(&a, &c)| a as f64 * c as f64).sum();
        for (x, &c) in v.iter_mut().zip(b) {
            *x -= (dot * c as f64) as f32;
        }
    }
}

/// Maximum singular value of `w` by power iteration on `WᵀW`.
///
/// This is the `s` in the paper's `(sλ)^L` over-smoothing coefficient.
pub fn max_singular_value(w: &Matrix, max_iters: usize) -> f64 {
    let (rows, cols) = w.shape();
    if rows == 0 || cols == 0 {
        return 0.0;
    }
    if frobenius_norm(w) == 0.0 {
        return 0.0;
    }
    let apply = |x: &[f32], out: &mut [f32]| {
        // out = Wᵀ (W x)
        let xv = Matrix::from_vec(cols, 1, x.to_vec());
        let wx = w.matmul(&xv);
        let wtwx = w.t_matmul(&wx);
        out.copy_from_slice(wtwx.as_slice());
    };
    let opts = PowerIterOptions {
        max_iters,
        ..Default::default()
    };
    let (lambda_max, _) = power_iteration(cols, apply, &[], opts);
    lambda_max.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Iterative solves route every matmul through the ambient storage
    /// mode; under bf16 (the `SKIPNODE_PRECISION` CI legs) convergence
    /// plateaus near 2⁻⁸ relative, so accuracy assertions widen there.
    fn bf16_tol(f32_tol: f64) -> f64 {
        match crate::precision::active() {
            crate::precision::Storage::Bf16 => 0.1,
            crate::precision::Storage::F32 => f32_tol,
        }
    }

    #[test]
    fn singular_value_of_diagonal_matrix() {
        let w = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        let s = max_singular_value(&w, 500);
        assert!((s - 7.0).abs() < 1e-3, "s = {s}");
    }

    #[test]
    fn singular_value_of_scaled_identity() {
        let w = &Matrix::eye(5) * 0.25;
        let s = max_singular_value(&w, 200);
        assert!((s - 0.25).abs() < 1e-4, "s = {s}");
    }

    #[test]
    fn singular_value_of_zero_matrix_is_zero() {
        let w = Matrix::zeros(4, 4);
        assert_eq!(max_singular_value(&w, 100), 0.0);
    }

    #[test]
    fn singular_value_of_rank_one_outer_product() {
        // u vᵀ has single nonzero singular value |u||v|.
        let u = [1.0f32, 2.0, 2.0]; // norm 3
        let v = [3.0f32, 4.0]; // norm 5
        let mut w = Matrix::zeros(3, 2);
        for (r, &ur) in u.iter().enumerate() {
            for (c, &vc) in v.iter().enumerate() {
                w.set(r, c, ur * vc);
            }
        }
        let s = max_singular_value(&w, 500);
        assert!((s - 15.0).abs() < bf16_tol(1e-2), "s = {s}");
    }

    #[test]
    fn power_iteration_finds_dominant_eigenpair_with_sign() {
        // Symmetric matrix with eigenvalues {-5, 2}.
        let a = Matrix::from_rows(&[&[-1.5, 3.5], &[3.5, -1.5]]);
        let apply = |x: &[f32], out: &mut [f32]| {
            let xv = Matrix::from_vec(2, 1, x.to_vec());
            out.copy_from_slice(a.matmul(&xv).as_slice());
        };
        let (val, vec) = power_iteration(2, apply, &[], PowerIterOptions::default());
        assert!((val + 5.0).abs() < bf16_tol(1e-4), "val = {val}");
        // Eigenvector for -5 is (1, -1)/sqrt(2) up to sign.
        assert!(((vec[0] + vec[1]).abs() as f64) < bf16_tol(1e-3));
    }

    #[test]
    fn deflation_skips_dominant_eigenvector() {
        // diag(3, 1): deflating e1 must yield eigenvalue 1.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let apply = |x: &[f32], out: &mut [f32]| {
            let xv = Matrix::from_vec(2, 1, x.to_vec());
            out.copy_from_slice(a.matmul(&xv).as_slice());
        };
        let e1 = vec![1.0f32, 0.0];
        let (val, _) = power_iteration(2, apply, &[e1], PowerIterOptions::default());
        assert!((val - 1.0).abs() < 1e-4, "val = {val}");
    }
}
