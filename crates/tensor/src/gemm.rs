//! Blocked dense GEMM kernels on the persistent pool.
//!
//! Three layout-specialized kernels (`A·B`, `Aᵀ·B`, `A·Bᵀ`) share a design:
//!
//! - **Register tiling.** The `A·B` kernel computes 4×8 output tiles with
//!   accumulators held in locals and fixed-size (`[f32; 8]`) row windows, so
//!   the autovectorizer lifts the inner loop to SIMD FMAs. `Aᵀ·B` streams
//!   row-axpy updates into a cache-resident output slab; `A·Bᵀ` runs four
//!   independent dot-product chains per output row.
//! - **Zero skipping.** Rows of the feature matrix are extremely sparse
//!   (binary bag-of-words), so tiles whose `A` window is entirely zero are
//!   skipped. Adding `0·x` for finite `x` is exact, so results are
//!   unchanged.
//! - **Pooled dispatch.** Large products are split over disjoint output
//!   row-blocks and dispatched on [`crate::pool`] — no per-call thread
//!   spawn/join. Every output element is computed by exactly one chunk with
//!   a fixed accumulation order, so results are bit-identical for every
//!   `SKIPNODE_THREADS` value (and match the serial reference kernels).
//!
//! All kernels **overwrite** `out`; callers may pass recycled, non-zeroed
//! buffers from [`crate::workspace`].

use crate::bf16;
use crate::kstats;
use crate::matrix::Matrix;
use crate::pool;
use crate::precision::{self, Storage};
use crate::simd::{self, Isa};

/// Below this many multiply-adds, pool dispatch overhead dominates.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Register-tile height (output rows per microkernel step).
const MR: usize = 4;
/// Register-tile width (output columns per microkernel step).
const NR: usize = 8;

/// Rows per parallel chunk for an `m`-row output.
fn rows_per_chunk(m: usize) -> usize {
    m.div_ceil(pool::chunk_count(m))
}

/// `out = a * b`. `out` must be pre-shaped `a.rows x b.cols`; prior
/// contents are ignored.
pub fn gemm(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(out.shape(), (m, n));
    if n == 0 {
        return;
    }
    kstats::record(kstats::Kernel::Gemm, m);
    let isa = simd::active();
    if precision::active() == Storage::Bf16 {
        return gemm_bf16_staged(isa, a, b, out);
    }
    if m * n * k < PARALLEL_THRESHOLD || m == 1 {
        gemm_rows_dispatch(isa, a, b, out.as_mut_slice(), 0, m);
        return;
    }
    let rows = rows_per_chunk(m);
    pool::par_chunks_mut(out.as_mut_slice(), rows * n, |idx, block| {
        let begin = idx * rows;
        gemm_rows_dispatch(isa, a, b, block, begin, (begin + rows).min(m));
    });
}

/// bf16-mode `A·B`: narrow `B` once into a packed staging buffer, then run
/// the widen-on-load microkernels over the same row-block split as the f32
/// driver. `B` is the streamed operand (re-read per row tile), so halving
/// its footprint is where the bandwidth goes; `A` rows and the `f32`
/// accumulators are untouched.
fn gemm_bf16_staged(isa: Isa, a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut bq = bf16::take_scratch_u16(k * n);
    bf16::narrow_slice(isa, b.as_slice(), &mut bq);
    // Widen-on-load volume: every 4-row tile group streams B once.
    kstats::record(kstats::Kernel::WidenBf16, m.div_ceil(4) * k * n);
    let tile = simd::gemm_tile();
    if m * n * k < PARALLEL_THRESHOLD || m == 1 {
        bf16::gemm_rows_bf16(isa, tile, a, &bq, n, out.as_mut_slice(), 0, m);
    } else {
        let rows = rows_per_chunk(m);
        let bq_ref = &bq;
        pool::par_chunks_mut(out.as_mut_slice(), rows * n, |idx, block| {
            let begin = idx * rows;
            bf16::gemm_rows_bf16(isa, tile, a, bq_ref, n, block, begin, (begin + rows).min(m));
        });
    }
    bf16::give_scratch_u16(bq);
}

/// Route one output row block to the scalar reference or the SIMD
/// microkernel (tile chosen by the auto-tuner; every tile is bit-equal).
fn gemm_rows_dispatch(
    isa: Isa,
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    match isa {
        Isa::Scalar => gemm_rows(a, b, out, row_begin, row_end),
        isa => simd::gemm_rows(isa, simd::gemm_tile(), a, b, out, row_begin, row_end),
    }
}

/// Serial reference/microkernel for rows `[row_begin, row_end)` of `a`,
/// writing the corresponding row block `out`.
pub(crate) fn gemm_rows(a: &Matrix, b: &Matrix, out: &mut [f32], row_begin: usize, row_end: usize) {
    let k = a.cols();
    let n = b.cols();
    let bd = b.as_slice();
    let rows = row_end - row_begin;
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let r0 = row_begin + i;
        let mut jt = 0;
        while jt < n {
            let nr = NR.min(n - jt);
            if mr == MR && nr == NR {
                // Fast path: full 4×8 register tile.
                let a_rows: [&[f32]; MR] = [a.row(r0), a.row(r0 + 1), a.row(r0 + 2), a.row(r0 + 3)];
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let av = [a_rows[0][p], a_rows[1][p], a_rows[2][p], a_rows[3][p]];
                    if av == [0.0; MR] {
                        continue; // sparse binary features make this pay off
                    }
                    let bp: &[f32; NR] = bd[p * n + jt..p * n + jt + NR]
                        .try_into()
                        .expect("NR window");
                    for (accr, &ar) in acc.iter_mut().zip(&av) {
                        for (o, &bv) in accr.iter_mut().zip(bp) {
                            *o += ar * bv;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    out[(i + r) * n + jt..(i + r) * n + jt + NR].copy_from_slice(accr);
                }
            } else {
                // Tail tile: same accumulation order, variable extent.
                for r in 0..mr {
                    let a_row = a.row(r0 + r);
                    let mut acc = [0.0f32; NR];
                    for (p, &ap) in a_row.iter().enumerate() {
                        if ap == 0.0 {
                            continue;
                        }
                        let bp = &bd[p * n + jt..p * n + jt + nr];
                        for (o, &bv) in acc[..nr].iter_mut().zip(bp) {
                            *o += ap * bv;
                        }
                    }
                    out[(i + r) * n + jt..(i + r) * n + jt + nr].copy_from_slice(&acc[..nr]);
                }
            }
            jt += nr;
        }
        i += mr;
    }
}

/// `out = aᵀ * b` without materializing `aᵀ`. `out` is `a.cols x b.cols`;
/// prior contents are ignored.
///
/// Parallelized over disjoint **output** row ranges (the `k` dimension of
/// `a`), so no cross-worker reduction or private accumulators are needed
/// and results are bit-stable across thread counts.
pub fn gemm_at_b(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(out.shape(), (k, n));
    if n == 0 || k == 0 {
        return;
    }
    kstats::record(kstats::Kernel::GemmAtB, k);
    let isa = simd::active();
    if m * n * k < PARALLEL_THRESHOLD || k == 1 {
        at_b_rows_dispatch(isa, a, b, out.as_mut_slice(), 0, k);
        return;
    }
    let rows = rows_per_chunk(k);
    pool::par_chunks_mut(out.as_mut_slice(), rows * n, |idx, block| {
        let begin = idx * rows;
        at_b_rows_dispatch(isa, a, b, block, begin, (begin + rows).min(k));
    });
}

fn at_b_rows_dispatch(
    isa: Isa,
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    p_begin: usize,
    p_end: usize,
) {
    match isa {
        Isa::Scalar => at_b_rows(a, b, out, p_begin, p_end),
        isa => at_b_rows_simd(isa, a, b, out, p_begin, p_end),
    }
}

/// SIMD `Aᵀ·B` rows: the same streaming row-axpy as the scalar reference
/// with the inner loop vectorized over output columns — per-element
/// accumulation order over `r` is unchanged, so the result is invariant to
/// the parallel row split and differs from scalar only by FMA contraction.
fn at_b_rows_simd(isa: Isa, a: &Matrix, b: &Matrix, out: &mut [f32], p_begin: usize, p_end: usize) {
    let m = a.rows();
    let n = b.cols();
    out.fill(0.0);
    for r in 0..m {
        let a_slab = &a.row(r)[p_begin..p_end];
        let b_row = b.row(r);
        for (local_p, &ap) in a_slab.iter().enumerate() {
            if ap == 0.0 {
                continue;
            }
            simd::axpy(isa, ap, b_row, &mut out[local_p * n..(local_p + 1) * n]);
        }
    }
}

/// Serial reference kernel for output rows `[p_begin, p_end)` of `aᵀ b`:
/// a streaming row-axpy accumulation (`out[p] += a[r,p] * b[r]`) with the
/// output slab staying cache-resident.
pub(crate) fn at_b_rows(a: &Matrix, b: &Matrix, out: &mut [f32], p_begin: usize, p_end: usize) {
    let m = a.rows();
    let n = b.cols();
    out.fill(0.0);
    for r in 0..m {
        let a_slab = &a.row(r)[p_begin..p_end];
        let b_row = b.row(r);
        for (local_p, &ap) in a_slab.iter().enumerate() {
            if ap == 0.0 {
                continue; // gradient w.r.t. sparse features skips most rows
            }
            let out_row = &mut out[local_p * n..(local_p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += ap * bv;
            }
        }
    }
}

/// `out = a * bᵀ` without materializing `bᵀ`. `out` is `a.rows x b.rows`;
/// prior contents are ignored.
pub fn gemm_a_bt(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.rows();
    debug_assert_eq!(out.shape(), (m, n));
    if n == 0 {
        return;
    }
    kstats::record(kstats::Kernel::GemmABt, m);
    let isa = simd::active();
    if m * n * k < PARALLEL_THRESHOLD || m == 1 {
        a_bt_rows_dispatch(isa, a, b, out.as_mut_slice(), 0, m);
        return;
    }
    let rows = rows_per_chunk(m);
    pool::par_chunks_mut(out.as_mut_slice(), rows * n, |idx, block| {
        let begin = idx * rows;
        a_bt_rows_dispatch(isa, a, b, block, begin, (begin + rows).min(m));
    });
}

fn a_bt_rows_dispatch(
    isa: Isa,
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    match isa {
        Isa::Scalar => a_bt_rows(a, b, out, row_begin, row_end),
        isa => a_bt_rows_simd(isa, a, b, out, row_begin, row_end),
    }
}

/// SIMD `A·Bᵀ` rows: four vector dot chains per output row. Dot products
/// fold lanes, so this kernel is tolerance-class versus the scalar
/// reference (deterministic for a fixed ISA).
fn a_bt_rows_simd(
    isa: Isa,
    a: &Matrix,
    b: &Matrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    let n = b.rows();
    for (local, r) in (row_begin..row_end).enumerate() {
        let a_row = a.row(r);
        let out_row = &mut out[local * n..(local + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let vals = simd::dot4(
                isa,
                a_row,
                [b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3)],
            );
            out_row[j..j + 4].copy_from_slice(&vals);
            j += 4;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            *o = simd::dot(isa, a_row, b.row(jj));
        }
    }
}

/// Serial reference kernel for rows `[row_begin, row_end)` of `a bᵀ`: four
/// independent dot-product chains per output row for instruction-level
/// parallelism.
pub(crate) fn a_bt_rows(a: &Matrix, b: &Matrix, out: &mut [f32], row_begin: usize, row_end: usize) {
    let k = a.cols();
    let n = b.rows();
    const JT: usize = 4;
    for (local, r) in (row_begin..row_end).enumerate() {
        let a_row = a.row(r);
        let out_row = &mut out[local * n..(local + 1) * n];
        let mut j = 0;
        while j + JT <= n {
            let b_rows: [&[f32]; JT] = [b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3)];
            let mut acc = [0.0f32; JT];
            for (p, &ap) in a_row.iter().enumerate().take(k) {
                for (o, br) in acc.iter_mut().zip(&b_rows) {
                    *o += ap * br[p];
                }
            }
            out_row[j..j + JT].copy_from_slice(&acc);
            j += JT;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let b_row = b.row(jj);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::matrix::Matrix;
    use crate::precision::{self, Storage};
    use crate::rng::SplitRng;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(r, p) * b.get(p, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    /// Plain `gemm` honours the ambient storage mode (the `SKIPNODE_PRECISION`
    /// CI legs run this suite under bf16), so tests comparing it against the
    /// f32 naive reference widen their tolerance to bf16 rounding there.
    fn gemm_tol(f32_tol: f32) -> f32 {
        match precision::active() {
            Storage::Bf16 => 0.05,
            Storage::F32 => f32_tol,
        }
    }

    #[test]
    fn parallel_gemm_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(3);
        let a = rng.uniform_matrix(70, 65, -1.0, 1.0);
        let b = rng.uniform_matrix(65, 70, -1.0, 1.0);
        assert_close(&a.matmul(&b), &naive(&a, &b), gemm_tol(1e-3));
    }

    #[test]
    fn at_b_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(4);
        let a = rng.uniform_matrix(80, 66, -1.0, 1.0);
        let b = rng.uniform_matrix(80, 64, -1.0, 1.0);
        assert_close(&a.t_matmul(&b), &naive(&a.transpose(), &b), 1e-3);
    }

    #[test]
    fn a_bt_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(5);
        let a = rng.uniform_matrix(72, 64, -1.0, 1.0);
        let b = rng.uniform_matrix(68, 64, -1.0, 1.0);
        assert_close(&a.matmul_t(&b), &naive(&a, &b.transpose()), 1e-3);
    }

    #[test]
    fn single_row_vector_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[6.0]]));
    }

    #[test]
    fn into_kernels_overwrite_stale_contents() {
        let mut rng = SplitRng::new(6);
        let a = rng.uniform_matrix(9, 11, -1.0, 1.0);
        let b = rng.uniform_matrix(11, 13, -1.0, 1.0);
        let mut out = Matrix::full(9, 13, f32::NAN);
        super::gemm(&a, &b, &mut out);
        assert_close(&out, &naive(&a, &b), gemm_tol(1e-4));
    }

    #[test]
    fn sparse_rows_are_skipped_exactly() {
        // Rows/columns of zeros exercise the zero-skip fast path.
        let mut a = Matrix::zeros(10, 12);
        a.set(0, 3, 2.0);
        a.set(7, 0, -1.5);
        let mut rng = SplitRng::new(7);
        let b = rng.uniform_matrix(12, 9, -1.0, 1.0);
        assert_close(&a.matmul(&b), &naive(&a, &b), gemm_tol(1e-5));
        let c = rng.uniform_matrix(10, 9, -1.0, 1.0);
        assert_close(&a.t_matmul(&c), &naive(&a.transpose(), &c), 1e-4);
    }
}
