//! Threaded dense GEMM kernels.
//!
//! These are straightforward cache-friendly triple loops (ikj order so the
//! inner loop streams over contiguous rows of `b` and `out`), parallelised
//! over row blocks with `crossbeam::scope`. They are not BLAS, but on the
//! matrix shapes this workspace uses (N up to ~20k nodes, hidden width 64,
//! feature width up to ~3.7k) they keep every core busy and are fast enough
//! to train 64-layer GCNs on a laptop-class CPU.

use crate::matrix::Matrix;
use std::thread;

/// Below this many output elements, threading overhead dominates; run serial.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

fn worker_count(work_items: usize) -> usize {
    let hw = thread::available_parallelism().map_or(1, |n| n.get());
    hw.min(work_items).max(1)
}

/// `out = a * b`. `out` must be pre-shaped `a.rows x b.cols` and zeroed.
pub fn gemm(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(out.shape(), (m, n));
    if m * n * k < PARALLEL_THRESHOLD || m == 1 {
        gemm_rows(a, b, out.as_mut_slice(), 0, m);
        return;
    }
    let workers = worker_count(m);
    let chunk = m.div_ceil(workers);
    let out_slice = out.as_mut_slice();
    crossbeam::scope(|s| {
        let mut rest = out_slice;
        let mut start = 0;
        while start < m {
            let rows = chunk.min(m - start);
            let (head, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let begin = start;
            s.spawn(move |_| gemm_rows(a, b, head, begin, begin + rows));
            start += rows;
        }
    })
    .expect("gemm worker panicked");
}

/// Serial kernel for rows `[row_begin, row_end)` of `a`, writing into `out`
/// which is the corresponding row block of the output.
fn gemm_rows(a: &Matrix, b: &Matrix, out: &mut [f32], row_begin: usize, row_end: usize) {
    let k = a.cols();
    let n = b.cols();
    for (local, r) in (row_begin..row_end).enumerate() {
        let a_row = a.row(r);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (p, &a_rp) in a_row.iter().enumerate().take(k) {
            if a_rp == 0.0 {
                continue; // sparse binary features make this branch pay off
            }
            let b_row = b.row(p);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_rp * bv;
            }
        }
    }
}

/// `out = aᵀ * b` without materializing `aᵀ`. `out` is `a.cols x b.cols`.
pub fn gemm_at_b(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(out.shape(), (k, n));
    // out[p, j] = sum_r a[r, p] * b[r, j]
    // Serial accumulation per output row-block would race; instead give each
    // worker a private accumulator then reduce. For the modest k (feature /
    // hidden widths) this is cheap.
    if m * n * k < PARALLEL_THRESHOLD {
        at_b_accumulate(a, b, out.as_mut_slice(), 0, m);
        return;
    }
    let workers = worker_count(m);
    let chunk = m.div_ceil(workers);
    let mut partials: Vec<Vec<f32>> = Vec::with_capacity(workers);
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        let mut start = 0;
        while start < m {
            let rows = chunk.min(m - start);
            let begin = start;
            handles.push(s.spawn(move |_| {
                let mut acc = vec![0.0f32; k * n];
                at_b_accumulate(a, b, &mut acc, begin, begin + rows);
                acc
            }));
            start += rows;
        }
        for h in handles {
            partials.push(h.join().expect("gemm_at_b worker panicked"));
        }
    })
    .expect("gemm_at_b scope failed");
    let out_slice = out.as_mut_slice();
    for p in partials {
        for (o, v) in out_slice.iter_mut().zip(p) {
            *o += v;
        }
    }
}

fn at_b_accumulate(a: &Matrix, b: &Matrix, acc: &mut [f32], row_begin: usize, row_end: usize) {
    let k = a.cols();
    let n = b.cols();
    for r in row_begin..row_end {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for (p, &a_rp) in a_row.iter().enumerate().take(k) {
            if a_rp == 0.0 {
                continue;
            }
            let acc_row = &mut acc[p * n..(p + 1) * n];
            for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                *o += a_rp * bv;
            }
        }
    }
}

/// `out = a * bᵀ` without materializing `bᵀ`. `out` is `a.rows x b.rows`.
pub fn gemm_a_bt(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.rows();
    debug_assert_eq!(out.shape(), (m, n));
    let run = |out: &mut [f32], row_begin: usize, row_end: usize| {
        for (local, r) in (row_begin..row_end).enumerate() {
            let a_row = a.row(r);
            let out_row = &mut out[local * n..(local + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o += acc;
            }
        }
    };
    if m * n * k < PARALLEL_THRESHOLD || m == 1 {
        run(out.as_mut_slice(), 0, m);
        return;
    }
    let workers = worker_count(m);
    let chunk = m.div_ceil(workers);
    let out_slice = out.as_mut_slice();
    crossbeam::scope(|s| {
        let mut rest = out_slice;
        let mut start = 0;
        while start < m {
            let rows = chunk.min(m - start);
            let (head, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let begin = start;
            s.spawn(move |_| run(head, begin, begin + rows));
            start += rows;
        }
    })
    .expect("gemm_a_bt worker panicked");
}

#[cfg(test)]
mod tests {
    use crate::matrix::Matrix;
    use crate::rng::SplitRng;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(r, p) * b.get(p, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_gemm_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(3);
        let a = rng.uniform_matrix(70, 65, -1.0, 1.0);
        let b = rng.uniform_matrix(65, 70, -1.0, 1.0);
        assert_close(&a.matmul(&b), &naive(&a, &b), 1e-3);
    }

    #[test]
    fn at_b_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(4);
        let a = rng.uniform_matrix(80, 66, -1.0, 1.0);
        let b = rng.uniform_matrix(80, 64, -1.0, 1.0);
        assert_close(&a.t_matmul(&b), &naive(&a.transpose(), &b), 1e-3);
    }

    #[test]
    fn a_bt_matches_naive_on_large_matrices() {
        let mut rng = SplitRng::new(5);
        let a = rng.uniform_matrix(72, 64, -1.0, 1.0);
        let b = rng.uniform_matrix(68, 64, -1.0, 1.0);
        assert_close(&a.matmul_t(&b), &naive(&a, &b.transpose()), 1e-3);
    }

    #[test]
    fn single_row_vector_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[6.0]]));
    }
}
