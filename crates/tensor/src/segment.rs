//! Segment table and segmented (per-graph) reduction kernels.
//!
//! A packed multi-graph batch stacks the node features of `g` graphs into
//! one tall matrix; the [`SegmentTable`] records where each graph's
//! contiguous node range lives. The reduction kernels here pool each
//! segment's rows into one output row (graph readout): mean, sum, or
//! column-wise max with an argmax record for the backward pass.
//!
//! Determinism contract: every kernel accumulates per output column in
//! **row order within the segment**, independently per column. Additions
//! per output element are therefore the same sequence whatever the vector
//! width, so the SIMD-dispatched paths are bit-identical to the scalar
//! reference — pinned by the `scalar_parity_*` tests below, and by the
//! `SKIPNODE_SIMD=off` CI leg.
//!
//! Empty segments (a zero-node graph in a batch) pool to a zero row; max
//! pooling records [`SEG_NO_ARGMAX`] for every column of that row and its
//! backward scatters nothing.

use crate::kstats::{self, Kernel};
use crate::matrix::Matrix;
use crate::simd;
use std::ops::Range;

/// Argmax sentinel for columns of an empty segment: no input row was
/// pooled, so the max-pool backward has nothing to scatter to.
pub const SEG_NO_ARGMAX: u32 = u32::MAX;

/// Per-graph node ranges of a packed batch.
///
/// Stored as `g + 1` monotone offsets with `offsets[0] == 0`; segment `s`
/// owns rows `offsets[s]..offsets[s + 1]`. Segments are contiguous and
/// ordered, which is what makes per-segment RNG draws in segment order
/// equal to one draw over all rows in row order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentTable {
    offsets: Vec<usize>,
}

impl SegmentTable {
    /// Build from explicit offsets (`offsets[0] == 0`, monotone
    /// non-decreasing; equal neighbors denote an empty segment).
    pub fn from_offsets(offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone non-decreasing"
        );
        Self { offsets }
    }

    /// Build from per-segment lengths.
    pub fn from_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &l in lens {
            acc += l;
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// The degenerate 1-segment table covering `n` rows — the shape every
    /// single-graph code path implicitly assumes.
    pub fn single(n: usize) -> Self {
        Self {
            offsets: vec![0, n],
        }
    }

    /// Number of segments (graphs).
    pub fn num_segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total rows covered (`offsets.last()`).
    pub fn total_rows(&self) -> usize {
        *self.offsets.last().expect("non-empty offsets")
    }

    /// Row range of segment `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.offsets[s]..self.offsets[s + 1]
    }

    /// Number of rows in segment `s`.
    pub fn len(&self, s: usize) -> usize {
        self.offsets[s + 1] - self.offsets[s]
    }

    /// The raw offset array (`num_segments() + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Pooling flavor of a graph readout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadoutKind {
    /// Per-column mean over the segment's rows (empty segment → zeros).
    Mean,
    /// Per-column sum over the segment's rows.
    Sum,
    /// Per-column max with argmax record (empty segment → zeros).
    Max,
}

impl ReadoutKind {
    /// Stable lowercase name (CLI flags, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            ReadoutKind::Mean => "mean",
            ReadoutKind::Sum => "sum",
            ReadoutKind::Max => "max",
        }
    }

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mean" => Some(ReadoutKind::Mean),
            "sum" => Some(ReadoutKind::Sum),
            "max" => Some(ReadoutKind::Max),
            _ => None,
        }
    }
}

fn check_shapes(x: &Matrix, seg: &SegmentTable, out: &Matrix) {
    assert_eq!(
        x.rows(),
        seg.total_rows(),
        "segment table covers input rows"
    );
    assert_eq!(out.rows(), seg.num_segments(), "one output row per segment");
    assert_eq!(out.cols(), x.cols(), "pooling preserves width");
}

/// `out[s] = Σ_{r ∈ seg s} x[r]`, accumulated in row order per segment.
pub fn segment_sum_into(x: &Matrix, seg: &SegmentTable, out: &mut Matrix) {
    check_shapes(x, seg, out);
    let isa = simd::active();
    kstats::record(Kernel::SegReduce, x.len());
    for s in 0..seg.num_segments() {
        let o = out.row_mut(s);
        o.fill(0.0);
        for r in seg.range(s) {
            simd::add_scaled(isa, o, x.row(r), 1.0);
        }
    }
}

/// `out[s] = mean_{r ∈ seg s} x[r]` (empty segment → zero row). The sum
/// runs exactly as [`segment_sum_into`], then one multiply by `1/len` —
/// same operation order at every vector width.
pub fn segment_mean_into(x: &Matrix, seg: &SegmentTable, out: &mut Matrix) {
    segment_sum_into(x, seg, out);
    for s in 0..seg.num_segments() {
        let n = seg.len(s);
        if n > 1 {
            let inv = 1.0 / n as f32;
            for v in out.row_mut(s) {
                *v *= inv;
            }
        }
    }
}

/// `out[s][c] = max_{r ∈ seg s} x[r][c]`, with `argmax[s*d + c]` the
/// **first** row attaining the max (strict `>` comparison in row order —
/// deterministic under ties). Empty segments produce a zero row and
/// [`SEG_NO_ARGMAX`] entries. `argmax` is resized to `g * d`.
pub fn segment_max_into(x: &Matrix, seg: &SegmentTable, out: &mut Matrix, argmax: &mut Vec<u32>) {
    check_shapes(x, seg, out);
    let d = x.cols();
    kstats::record(Kernel::SegReduce, x.len());
    argmax.clear();
    argmax.resize(seg.num_segments() * d, SEG_NO_ARGMAX);
    for s in 0..seg.num_segments() {
        let range = seg.range(s);
        let o = out.row_mut(s);
        if range.is_empty() {
            o.fill(0.0);
            continue;
        }
        let am = &mut argmax[s * d..(s + 1) * d];
        o.copy_from_slice(x.row(range.start));
        am.fill(range.start as u32);
        for r in range.start + 1..range.end {
            let xr = x.row(r);
            // Per-column compare+select: lane-parallel, no cross-column
            // dependence, so auto-vectorization cannot change the result.
            for c in 0..d {
                if xr[c] > o[c] {
                    o[c] = xr[c];
                    am[c] = r as u32;
                }
            }
        }
    }
}

/// Forward dispatch over [`ReadoutKind`]. `argmax` is filled only for
/// `Max` (cleared otherwise).
pub fn segment_reduce_into(
    x: &Matrix,
    seg: &SegmentTable,
    kind: ReadoutKind,
    out: &mut Matrix,
    argmax: &mut Vec<u32>,
) {
    match kind {
        ReadoutKind::Mean => {
            argmax.clear();
            segment_mean_into(x, seg, out);
        }
        ReadoutKind::Sum => {
            argmax.clear();
            segment_sum_into(x, seg, out);
        }
        ReadoutKind::Max => segment_max_into(x, seg, out, argmax),
    }
}

/// Backward of the segmented reduction: **accumulates** `∂L/∂x` into `dx`
/// given `∂L/∂out`. Mean scatters `dout[s]/len(s)` to every row of the
/// segment, sum scatters `dout[s]`, max routes `dout[s][c]` to the
/// recorded argmax row (sentinel entries scatter nothing).
pub fn segment_reduce_backward_into(
    dout: &Matrix,
    seg: &SegmentTable,
    kind: ReadoutKind,
    argmax: &[u32],
    dx: &mut Matrix,
) {
    assert_eq!(dout.rows(), seg.num_segments(), "one grad row per segment");
    assert_eq!(dx.rows(), seg.total_rows(), "segment table covers dx rows");
    assert_eq!(dx.cols(), dout.cols(), "pooling preserves width");
    let isa = simd::active();
    kstats::record(Kernel::SegReduce, dx.len());
    match kind {
        ReadoutKind::Mean | ReadoutKind::Sum => {
            for s in 0..seg.num_segments() {
                let n = seg.len(s);
                if n == 0 {
                    continue;
                }
                let alpha = match kind {
                    ReadoutKind::Mean => 1.0 / n as f32,
                    _ => 1.0,
                };
                let g = dout.row(s);
                for r in seg.range(s) {
                    simd::add_scaled(isa, dx.row_mut(r), g, alpha);
                }
            }
        }
        ReadoutKind::Max => {
            let d = dout.cols();
            assert_eq!(argmax.len(), seg.num_segments() * d, "argmax record");
            for s in 0..seg.num_segments() {
                let g = dout.row(s);
                let am = &argmax[s * d..(s + 1) * d];
                for c in 0..d {
                    if am[c] != SEG_NO_ARGMAX {
                        let r = am[c] as usize;
                        dx.row_mut(r)[c] += g[c];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;
    use crate::simd::{force, Isa};

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        SplitRng::new(seed).uniform_matrix(rows, cols, -2.0, 2.0)
    }

    /// Naive per-element reference, written without any shared kernels.
    fn reference(x: &Matrix, seg: &SegmentTable, kind: ReadoutKind) -> (Matrix, Vec<u32>) {
        let d = x.cols();
        let g = seg.num_segments();
        let mut out = Matrix::zeros(g, d);
        let mut argmax = vec![SEG_NO_ARGMAX; g * d];
        for s in 0..g {
            for c in 0..d {
                let mut acc = 0.0f32;
                let mut best = f32::NEG_INFINITY;
                let mut best_r = SEG_NO_ARGMAX;
                for r in seg.range(s) {
                    acc += x.get(r, c);
                    if x.get(r, c) > best {
                        best = x.get(r, c);
                        best_r = r as u32;
                    }
                }
                let v = match kind {
                    ReadoutKind::Sum => acc,
                    ReadoutKind::Mean => {
                        // Multiply by the reciprocal exactly as the kernel
                        // does, so the comparison can be bitwise.
                        if seg.len(s) == 0 {
                            0.0
                        } else {
                            acc * (1.0 / seg.len(s) as f32)
                        }
                    }
                    ReadoutKind::Max => {
                        if best_r == SEG_NO_ARGMAX {
                            0.0
                        } else {
                            best
                        }
                    }
                };
                out.set(s, c, v);
                argmax[s * d + c] = best_r;
            }
        }
        if kind != ReadoutKind::Max {
            argmax.clear();
        }
        (out, argmax)
    }

    #[test]
    fn matches_reference_including_empty_and_single_row_segments() {
        let seg = SegmentTable::from_lens(&[3, 0, 1, 5, 0, 2]);
        let x = sample(seg.total_rows(), 7, 11);
        for kind in [ReadoutKind::Mean, ReadoutKind::Sum, ReadoutKind::Max] {
            let (want, want_am) = reference(&x, &seg, kind);
            let mut out = Matrix::zeros(seg.num_segments(), 7);
            let mut am = Vec::new();
            segment_reduce_into(&x, &seg, kind, &mut out, &mut am);
            // Mean sums in row order then divides once, exactly as the
            // per-column reference accumulation — bitwise comparable.
            assert_eq!(out.as_slice(), want.as_slice(), "{kind:?} values");
            assert_eq!(am, want_am, "{kind:?} argmax");
        }
    }

    #[test]
    fn scalar_parity_is_bitwise() {
        let seg = SegmentTable::from_lens(&[9, 1, 0, 17, 30]);
        let x = sample(seg.total_rows(), 13, 23);
        for kind in [ReadoutKind::Mean, ReadoutKind::Sum, ReadoutKind::Max] {
            let mut out_v = Matrix::zeros(seg.num_segments(), 13);
            let mut am_v = Vec::new();
            segment_reduce_into(&x, &seg, kind, &mut out_v, &mut am_v);
            let prev = force(Isa::Scalar);
            let mut out_s = Matrix::zeros(seg.num_segments(), 13);
            let mut am_s = Vec::new();
            segment_reduce_into(&x, &seg, kind, &mut out_s, &mut am_s);
            force(prev);
            assert_eq!(out_v.as_slice(), out_s.as_slice(), "{kind:?} values");
            assert_eq!(am_v, am_s, "{kind:?} argmax");
        }
    }

    #[test]
    fn single_segment_mean_equals_column_mean() {
        let x = sample(20, 5, 3);
        let seg = SegmentTable::single(20);
        let mut out = Matrix::zeros(1, 5);
        let mut am = Vec::new();
        segment_reduce_into(&x, &seg, ReadoutKind::Mean, &mut out, &mut am);
        let want = x.col_mean();
        for c in 0..5 {
            assert!((out.get(0, c) - want.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_matches_finite_difference_structure() {
        // Gradient check by linearity: reduce is linear in x for sum/mean
        // and locally linear for max, so scatter(dout)·x' == dout·reduce(x')
        // for any perturbation direction x' respecting the argmax cells.
        let seg = SegmentTable::from_lens(&[4, 0, 2, 7]);
        let x = sample(seg.total_rows(), 6, 5);
        let dout = sample(seg.num_segments(), 6, 9);
        for kind in [ReadoutKind::Mean, ReadoutKind::Sum, ReadoutKind::Max] {
            let mut out = Matrix::zeros(seg.num_segments(), 6);
            let mut am = Vec::new();
            segment_reduce_into(&x, &seg, kind, &mut out, &mut am);
            let mut dx = Matrix::zeros(seg.total_rows(), 6);
            segment_reduce_backward_into(&dout, &seg, kind, &am, &mut dx);
            // <dx, x> must equal <dout, reduce(x)> for linear kinds; for
            // max it equals <dout, out> because only argmax cells carry.
            let lhs: f64 = dx
                .as_slice()
                .iter()
                .zip(x.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            let rhs: f64 = dout
                .as_slice()
                .iter()
                .zip(out.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            assert!((lhs - rhs).abs() < 1e-3, "{kind:?}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn empty_segment_backward_scatters_nothing() {
        let seg = SegmentTable::from_lens(&[0, 3, 0]);
        let x = sample(3, 4, 1);
        let dout = sample(3, 4, 2);
        for kind in [ReadoutKind::Mean, ReadoutKind::Sum, ReadoutKind::Max] {
            let mut out = Matrix::zeros(3, 4);
            let mut am = Vec::new();
            segment_reduce_into(&x, &seg, kind, &mut out, &mut am);
            assert_eq!(out.row(0), &[0.0; 4], "{kind:?} empty rows are zero");
            assert_eq!(out.row(2), &[0.0; 4]);
            let mut dx = Matrix::zeros(3, 4);
            segment_reduce_backward_into(&dout, &seg, kind, &am, &mut dx);
            assert!(dx.all_finite());
        }
    }

    #[test]
    fn offsets_round_trip_and_ranges() {
        let seg = SegmentTable::from_offsets(vec![0, 2, 2, 7]);
        assert_eq!(seg.num_segments(), 3);
        assert_eq!(seg.total_rows(), 7);
        assert_eq!(seg.range(1), 2..2);
        assert_eq!(seg.len(2), 5);
        assert_eq!(SegmentTable::from_lens(&[2, 0, 5]).offsets(), seg.offsets());
        assert_eq!(SegmentTable::single(7).offsets(), &[0, 7]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn decreasing_offsets_rejected() {
        let _ = SegmentTable::from_offsets(vec![0, 3, 1]);
    }
}
