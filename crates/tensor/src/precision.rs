//! Process-wide storage-precision mode for the dense-operand kernels.
//!
//! [`Storage::F32`] is the reference mode: every kernel reads and writes
//! full-precision `f32`, exactly as before this module existed.
//! [`Storage::Bf16`] stages the *streamed dense operand* of the
//! bandwidth-bound kernels — the `X` of the SpMM family and the `B` of the
//! forward GEMM — in packed bfloat16 (see [`crate::bf16`]) and widens on
//! load inside the inner loops. Accumulation stays `f32` everywhere, so
//! bf16 mode trades one round-to-nearest-even narrowing of the streamed
//! operand for half its memory traffic; gradients, parameters, optimizer
//! moments, and every reduction remain full `f32`.
//!
//! The mode is resolved once per process from `SKIPNODE_PRECISION`
//! (`f32`/empty keep the default, `bf16` enables packed staging) and can be
//! overridden by [`force`] — the hook `TrainConfig::precision` uses. Like
//! the SIMD dispatch in [`crate::simd`], the setting is process-global:
//! kernels deep in the stack cannot see per-run configuration, so a run
//! that overrides it does so for the whole process.

use std::sync::atomic::{AtomicU8, Ordering};

/// Storage precision of the streamed dense operand in the hot kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// Full-precision `f32` operands (the bitwise reference mode).
    F32,
    /// Streamed dense operands packed to bfloat16, widened on load;
    /// accumulation stays `f32`.
    Bf16,
}

impl Storage {
    /// Stable lowercase name used in bench metadata and tuner reports.
    pub fn name(self) -> &'static str {
        match self {
            Storage::F32 => "f32",
            Storage::Bf16 => "bf16",
        }
    }
}

/// 0 = unresolved (read env on first query), else discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn code(mode: Storage) -> u8 {
    match mode {
        Storage::F32 => 1,
        Storage::Bf16 => 2,
    }
}

fn resolve() -> Storage {
    match std::env::var("SKIPNODE_PRECISION") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "bf16" => Storage::Bf16,
            "" | "f32" | "off" | "full" => Storage::F32,
            other => {
                eprintln!("SKIPNODE_PRECISION={other:?} not recognized (f32|bf16); using f32");
                Storage::F32
            }
        },
        Err(_) => Storage::F32,
    }
}

/// The storage mode kernels currently honor. Resolved from
/// `SKIPNODE_PRECISION` on first call, then a relaxed atomic load.
#[inline]
pub fn active() -> Storage {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let mode = resolve();
            ACTIVE.store(code(mode), Ordering::Relaxed);
            mode
        }
        1 => Storage::F32,
        _ => Storage::Bf16,
    }
}

/// Install a storage mode for this process (the `TrainConfig::precision`
/// hook; benches and tests A/B-ing modes on one binary). Returns the mode
/// that was active before.
pub fn force(mode: Storage) -> Storage {
    let prev = active();
    ACTIVE.store(code(mode), Ordering::Relaxed);
    prev
}

/// Accuracy-delta tolerance the precision gates compare bf16 runs against
/// their f32 reference with: `SKIPNODE_PREC_TOL` when set (absolute
/// accuracy delta / relative loss delta), else `0.02`.
pub fn accuracy_tolerance() -> f64 {
    std::env::var("SKIPNODE_PREC_TOL")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: no unit test flips the mode here — unit tests share a process
    // with the kernel tests, and a transient Bf16 window would reroute a
    // concurrently running GEMM/SpMM assertion. Mode-flipping coverage
    // lives in `tensor/tests/bf16_quant.rs`, which owns its process.

    #[test]
    fn names_are_stable() {
        assert_eq!(Storage::F32.name(), "f32");
        assert_eq!(Storage::Bf16.name(), "bf16");
    }
}
