//! Row-major dense matrix type.

use crate::gemm;
use crate::kstats;
use crate::pool;
use crate::simd;
use crate::workspace;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Elementwise ops on fewer elements than this stay serial (memory-bound
/// work only benefits from the pool on large buffers).
const ELEMWISE_PAR_THRESHOLD: usize = 1 << 17;
/// Elements per parallel chunk for elementwise traversals. A fixed chunk
/// size (rather than one derived from the thread count) keeps chunk
/// boundaries — and therefore any per-chunk accumulation order — identical
/// for every `SKIPNODE_THREADS` value.
const ELEMWISE_CHUNK: usize = 1 << 15;

/// A dense, row-major `f32` matrix.
///
/// Rows correspond to graph nodes throughout this workspace. The type is
/// deliberately simple — a `Vec<f32>` plus a shape — so it is cheap to move
/// through the autodiff tape and easy to reason about.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from an owned buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Build from row slices (test/demo helper).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Column vector from a slice.
    pub fn column(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix product `self * rhs`, threaded for large shapes.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = workspace::take_scratch(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self * rhs` written into a caller-provided (possibly recycled)
    /// buffer; prior contents of `out` are ignored.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into out shape");
        gemm::gemm(self, rhs, out);
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = workspace::take_scratch(self.cols, rhs.cols);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// `selfᵀ * rhs` into a caller-provided buffer; prior contents ignored.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "t_matmul_into out shape"
        );
        gemm::gemm_at_b(self, rhs, out);
    }

    /// `self * rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = workspace::take_scratch(self.rows, rhs.rows);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// `self * rhsᵀ` into a caller-provided buffer; prior contents ignored.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_t_into out shape"
        );
        gemm::gemm_a_bt(self, rhs, out);
    }

    /// Materialized transpose (cache-blocked).
    pub fn transpose(&self) -> Matrix {
        const BLK: usize = 32;
        let mut out = workspace::take_scratch(self.cols, self.rows);
        for rb in (0..self.rows).step_by(BLK) {
            for cb in (0..self.cols).step_by(BLK) {
                let ce = (cb + BLK).min(self.cols);
                for r in rb..(rb + BLK).min(self.rows) {
                    let src = &self.row(r)[cb..ce];
                    for (c, &v) in src.iter().enumerate() {
                        out.data[(cb + c) * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// Elementwise map into a fresh (possibly recycled) matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = workspace::take_copy(self);
        out.map_in_place(f);
        out
    }

    /// Elementwise map in place, pooled for large buffers.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() < ELEMWISE_PAR_THRESHOLD {
            for x in &mut self.data {
                *x = f(*x);
            }
        } else {
            pool::par_chunks_mut(&mut self.data, ELEMWISE_CHUNK, |_, chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            });
        }
    }

    /// Elementwise combine with another matrix of the same shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        let mut out = workspace::take_copy(self);
        let rhs = other.as_slice();
        if out.data.len() < ELEMWISE_PAR_THRESHOLD {
            for (a, &b) in out.data.iter_mut().zip(rhs) {
                *a = f(*a, b);
            }
        } else {
            pool::par_chunks_mut(&mut out.data, ELEMWISE_CHUNK, |idx, chunk| {
                let off = idx * ELEMWISE_CHUNK;
                let len = chunk.len();
                for (a, &b) in chunk.iter_mut().zip(&rhs[off..off + len]) {
                    *a = f(*a, b);
                }
            });
        }
        out
    }

    /// `self += alpha * other`, pooled for large buffers. The SIMD lanes
    /// use separate mul/add, so every ISA produces the scalar loop's bits.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        kstats::record(kstats::Kernel::Elemwise, self.data.len());
        let isa = simd::active();
        let rhs = other.as_slice();
        if self.data.len() < ELEMWISE_PAR_THRESHOLD {
            simd::add_scaled(isa, &mut self.data, rhs, alpha);
        } else {
            pool::par_chunks_mut(&mut self.data, ELEMWISE_CHUNK, |idx, chunk| {
                let off = idx * ELEMWISE_CHUNK;
                let len = chunk.len();
                simd::add_scaled(isa, chunk, &rhs[off..off + len], alpha);
            });
        }
    }

    /// Multiply all elements by a scalar, in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        self.map_in_place(|x| x * alpha);
    }

    /// ReLU into a fresh matrix.
    pub fn relu(&self) -> Matrix {
        let mut out = workspace::take_copy(self);
        out.relu_in_place();
        out
    }

    /// In-place ReLU with a dedicated SIMD path (bit-identical to
    /// `map_in_place(|x| x.max(0.0))` except on `-0.0` inputs, which the
    /// stack never produces — see [`crate::simd::relu`]).
    pub fn relu_in_place(&mut self) {
        kstats::record(kstats::Kernel::Elemwise, self.data.len());
        let isa = simd::active();
        if self.data.len() < ELEMWISE_PAR_THRESHOLD {
            simd::relu(isa, &mut self.data);
        } else {
            pool::par_chunks_mut(&mut self.data, ELEMWISE_CHUNK, |_, chunk| {
                simd::relu(isa, chunk);
            });
        }
    }

    /// Sum of all elements (f64 accumulation).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Per-column mean as a `1 x cols` matrix.
    pub fn col_mean(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        let mut acc = vec![0.0f64; self.cols];
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                acc[c] += v as f64;
            }
        }
        for (c, a) in acc.iter().enumerate() {
            out.set(0, c, (*a / self.rows as f64) as f32);
        }
        out
    }

    /// Extract the listed rows into a fresh matrix (order preserved).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Horizontal concatenation of matrices with equal row counts.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "hcat row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            let dst = out.row_mut(r);
            for p in parts {
                dst[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f32) -> Matrix {
        self.map(|x| x * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5], &[-1.0]]);
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(direct, explicit);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        let direct = a.matmul_t(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(direct, explicit);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.5]]);
        assert_eq!(a.relu(), Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn select_rows_preserves_order() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn col_mean_averages_rows() {
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 0.0]]);
        let m = a.col_mean();
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 2.0]]));
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 0.0]]));
    }

    #[test]
    fn sum_and_mean() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn operators_work() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }
}
