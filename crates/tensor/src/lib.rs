#![warn(missing_docs)]

//! Dense f32 matrix library underpinning the SkipNode reproduction.
//!
//! The crate provides a row-major [`Matrix`] type with the operations a
//! graph-neural-network stack needs: threaded GEMM, elementwise maps,
//! row-wise reductions, Glorot/He initializers, and the power-iteration
//! routines the paper's theory requires (largest singular value of a weight
//! matrix).
//!
//! Everything is `f32` storage with `f64` accumulation in the reductions
//! where precision matters (norms, losses, power iteration).
//!
//! # Quick example
//!
//! ```
//! use skipnode_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod gemm;
mod init;
pub mod kstats;
mod linalg;
mod matrix;
pub mod pool;
mod reduce;
mod rng;
pub mod simd;
pub mod workspace;

pub use init::{glorot_uniform, he_normal, Init};
pub use linalg::{max_singular_value, power_iteration, PowerIterOptions};
pub use matrix::Matrix;
pub use reduce::{cosine_distance_rows, frobenius_norm, l2_norm_sq, row_softmax_in_place};
pub use rng::{normal_f32, uniform_f32, SplitRng};
