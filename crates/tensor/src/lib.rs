#![warn(missing_docs)]

//! Dense f32 matrix library underpinning the SkipNode reproduction.
//!
//! The crate provides a row-major [`Matrix`] type with the operations a
//! graph-neural-network stack needs: threaded GEMM, elementwise maps,
//! row-wise reductions, Glorot/He initializers, and the power-iteration
//! routines the paper's theory requires (largest singular value of a weight
//! matrix).
//!
//! Everything is `f32` storage with `f64` accumulation in the reductions
//! where precision matters (norms, losses, power iteration). Two
//! reduced-precision side channels exist: [`precision`] selects bf16
//! packed staging for the streamed operand of the hot kernels (f32
//! accumulation throughout, see [`bf16`]), and [`quant`] provides int8
//! symmetric post-training quantization for the no-grad inference path.
//!
//! # Quick example
//!
//! ```
//! use skipnode_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod bf16;
mod gemm;
mod init;
pub mod kstats;
mod linalg;
mod matrix;
pub mod pool;
pub mod precision;
pub mod quant;
mod reduce;
mod rng;
pub mod segment;
pub mod simd;
pub mod workspace;

pub use init::{glorot_uniform, he_normal, Init};
pub use linalg::{max_singular_value, power_iteration, PowerIterOptions};
pub use matrix::Matrix;
pub use reduce::{cosine_distance_rows, frobenius_norm, l2_norm_sq, row_softmax_in_place};
pub use rng::{normal_f32, uniform_f32, SplitRng};
pub use segment::{ReadoutKind, SegmentTable};
