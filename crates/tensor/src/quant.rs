//! Reduced-precision post-training quantization for the no-grad inference
//! path.
//!
//! Weights are quantized **per column** to symmetric 6-bit
//! (`scale_j = max|B[:,j]| / 63`, values rounded half-away-from-zero and
//! clamped to ±63, stored as `i8`) and stored column-major so each output
//! dot streams one contiguous `i8` column. Calibration also records each
//! column's quantized sum, which the affine activation correction below
//! needs. The ±63 range is what licenses the AVX2 kernel's 16-bit
//! dual-pair accumulation: two `maddubs` pair sums (each ≤ `127·63·2 =
//! 16002`) add exactly in `i16` (≤ 32004 < `i16::MAX`), so one `madd`
//! widening feeds the `i32` accumulator per 64 multiply-adds instead of
//! per 32.
//!
//! Activations are quantized **per row** on the fly to *affine 7-bit*:
//! `u = clamp(round_ne((v - min) · 127/(max - min)), 0, 127)`, so
//! `v ≈ min + u · scale` with `scale = (max - min)/127`. The
//! unsigned-by-construction left operand is what makes the kernel fast:
//! `maddubs` multiplies `u8 × i8` directly with no abs/sign fixups in the
//! inner loop, and saturation can never fire. The dot dequantizes as
//! `a·b ≈ scale_col · (min · colsum + scale · Σ u·b_q)`, with the exact
//! integer `Σ u·b_q` accumulated in `i32`. A constant row (`max == min`)
//! degenerates gracefully: `inv = scale = 0` quantizes everything to
//! `u = 0` and the `min · colsum` term carries the entire rank-one product.
//! For the post-ReLU activations that dominate deep SkipNode inference
//! (`min = 0`), the 7-bit affine grid covers the occupied range as finely
//! as symmetric int8 would — symmetric storage wastes its negative half.
//!
//! The AVX2 and scalar paths are **bit-identical**: row min/max are
//! order-insensitive exact reductions, quantization rounds to nearest even
//! on both paths (`cvtps2dq`'s mode) with the offset applied by an IEEE
//! fused multiply-add, the integer dots are exact, and the f32 epilogue is
//! the same scalar expression. The whole kernel is therefore bitwise
//! reproducible across ISAs and thread counts. Quantization error against
//! the f32 reference is bounded by the per-row/per-column scales; the
//! accuracy gate lives in `bench_pr8` and the integration tests, not here.
//!
//! Inputs are assumed finite (trained checkpoints).

use crate::kstats;
use crate::matrix::Matrix;
use crate::pool;
use crate::simd::{self, Isa};

/// Below this many multiply-adds, pool dispatch overhead dominates
/// (mirrors the dense GEMM threshold).
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// A weight matrix quantized to symmetric 6-bit (±63, stored as `i8`)
/// with per-column scales, stored column-major for contiguous dot
/// products. The ±63 bound is a kernel precondition — see the module
/// docs.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Rows of the source matrix (the contraction length `k`).
    k: usize,
    /// Columns of the source matrix.
    n: usize,
    /// Column-major quantized values: column `j` at `[j*k, (j+1)*k)`.
    data: Vec<i8>,
    /// Per-column dequantization scales (`max|col| / 63`).
    scales: Vec<f32>,
    /// Per-column sums of the quantized values (the affine activation
    /// correction term).
    colsums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantize `b` column-wise. This is the post-training calibration
    /// step: call it on checkpointed weights, then reuse for every
    /// inference pass.
    pub fn from_cols(b: &Matrix) -> Self {
        let (k, n) = b.shape();
        kstats::record(kstats::Kernel::QuantI8, k * n);
        let mut scales = vec![0.0f32; n];
        for r in 0..k {
            for (s, &v) in scales.iter_mut().zip(b.row(r)) {
                *s = s.max(v.abs());
            }
        }
        let inv: Vec<f32> = scales
            .iter()
            .map(|&amax| if amax > 0.0 { 63.0 / amax } else { 0.0 })
            .collect();
        for s in &mut scales {
            *s /= 63.0;
        }
        let mut data = vec![0i8; k * n];
        let mut colsums = vec![0i32; n];
        for r in 0..k {
            for (j, &v) in b.row(r).iter().enumerate() {
                let q = (v * inv[j]).round().clamp(-63.0, 63.0) as i8;
                data[j * k + r] = q;
                colsums[j] += q as i32;
            }
        }
        QuantizedMatrix {
            k,
            n,
            data,
            scales,
            colsums,
        }
    }

    /// Contraction length (rows of the source matrix).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (columns of the source matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-column dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// `out = a · dequant(qb)` with per-row affine activation quantization and
/// i32 accumulation. `out` must be pre-shaped `a.rows x qb.n`; prior
/// contents are ignored.
pub fn qgemm(a: &Matrix, qb: &QuantizedMatrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    assert_eq!(k, qb.k, "qgemm contraction mismatch");
    debug_assert_eq!(out.shape(), (m, qb.n));
    if qb.n == 0 {
        return;
    }
    kstats::record(kstats::Kernel::GemmI8, m);
    let isa = simd::active();
    if m * k * qb.n < PARALLEL_THRESHOLD || m == 1 {
        qgemm_rows(isa, a, qb, out.as_mut_slice(), 0, m);
        return;
    }
    let rows = m.div_ceil(pool::chunk_count(m));
    pool::par_chunks_mut(out.as_mut_slice(), rows * qb.n, |idx, block| {
        let begin = idx * rows;
        qgemm_rows(isa, a, qb, block, begin, (begin + rows).min(m));
    });
}

/// One activation row's affine quantization parameters:
/// `v ≈ min + u · scale` with `u = clamp(round_ne(fma(v, inv, nmi)), 0, 127)`.
#[derive(Clone, Copy)]
struct RowQuant {
    min: f32,
    scale: f32,
    inv: f32,
    /// `-min · inv`, the FMA addend of the quantization map.
    nmi: f32,
}

impl RowQuant {
    fn from_bounds(lo: f32, hi: f32) -> Self {
        let range = hi - lo;
        let (scale, inv) = if range > 0.0 {
            (range / 127.0, 127.0 / range)
        } else {
            // Constant row: u = 0 everywhere; `min · colsum` carries the
            // whole rank-one product (exactly zero output for a zero row).
            (0.0, 0.0)
        };
        RowQuant {
            min: lo,
            scale,
            inv,
            nmi: -lo * inv,
        }
    }
}

/// The dequantized dot epilogue, kept as one scalar expression so every
/// path computes bitwise-identical outputs.
#[inline]
fn dequant(rq: RowQuant, scale_col: f32, colsum: i32, acc: i32) -> f32 {
    scale_col * (rq.min * colsum as f32 + rq.scale * acc as f32)
}

/// One output row block. The AVX2 path quantizes four activation rows at
/// a time and streams each weight column once per row *block* — four
/// independent accumulator chains share every column load, which cuts the
/// L2 column traffic 4x, and the unsigned affine encoding needs no
/// abs/sign fixups (three vector ops per 32 multiply-adds). Bitwise
/// identical to the scalar reference for every ISA and row split.
fn qgemm_rows(
    isa: Isa,
    a: &Matrix,
    qb: &QuantizedMatrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: dispatch only selects Avx2 after detection.
        unsafe { qgemm_rows_avx2(a, qb, out, row_begin, row_end) };
        return;
    }
    let k = qb.k;
    let n = qb.n;
    let mut aq = vec![0u8; k];
    for (local, r) in (row_begin..row_end).enumerate() {
        let a_row = a.row(r);
        let out_row = &mut out[local * n..(local + 1) * n];
        let rq = row_quant(isa, a_row);
        quantize_row(isa, a_row, rq, &mut aq);
        for (j, o) in out_row.iter_mut().enumerate() {
            let col = &qb.data[j * k..(j + 1) * k];
            let acc = udot(isa, &aq, col);
            *o = dequant(rq, qb.scales[j], qb.colsums[j], acc);
        }
    }
}

/// Row min/max → quantization parameters. Vector and scalar paths are
/// bitwise identical: min/max over finite floats are associative and
/// commutative.
fn row_quant(isa: Isa, row: &[f32]) -> RowQuant {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: dispatch only selects Avx2 after detection.
        let (lo, hi) = unsafe { min_max_avx2(row) };
        return RowQuant::from_bounds(lo, hi);
    }
    let _ = isa;
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    RowQuant::from_bounds(lo, hi)
}

/// Affine row quantization `u = clamp(round_ne(fma(v, inv, nmi)), 0, 127)`.
/// Both paths round to nearest even (`cvtps2dq`'s mode) and apply the
/// offset with an IEEE fused multiply-add, so they agree bitwise.
fn quantize_row(isa: Isa, row: &[f32], rq: RowQuant, out: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: dispatch only selects Avx2 after detection.
        unsafe { quantize_row_avx2(row, rq, out) };
        return;
    }
    let _ = isa;
    for (q, &v) in out.iter_mut().zip(row) {
        *q = v
            .mul_add(rq.inv, rq.nmi)
            .round_ties_even()
            .clamp(0.0, 127.0) as u8;
    }
}

/// Exact i32 dot of a `u8` activation row against an `i8` weight column.
/// The AVX2 path is bit-identical to the scalar loop: integer arithmetic,
/// and `u ≤ 127` keeps every `maddubs` pair sum at most 32258, below
/// saturation.
fn udot(isa: Isa, a: &[u8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: dispatch only selects Avx2 after `is_x86_feature_detected!`.
        return unsafe { udot_avx2(a, b) };
    }
    let _ = isa;
    udot_scalar(a, b)
}

/// Scalar reference integer dot.
pub(crate) fn udot_scalar(a: &[u8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum::<i32>()
}

/// Rows per register block in the AVX2 kernel: 8 accumulator chains
/// plus the shared column vector fit the 16 ymm registers, and every
/// column load is amortized over 8 rows.
#[cfg(target_arch = "x86_64")]
const ROW_BLOCK: usize = 8;

/// Pieces each activation row's min/max and quantize passes are split
/// into when they run pipelined inside the column loop (see below).
#[cfg(target_arch = "x86_64")]
const PREP_CHUNKS: usize = 4;

/// Software-pipelined quantization of the *next* row panel. The column
/// loop of the current panel is ALU-bound; quantizing the next panel is
/// RAM-bound. Run back to back they serialize, so the next panel's
/// min/max and quantize work is chopped into chunks and a few chunks are
/// advanced per column iteration — fine-grained enough that the
/// out-of-order core overlaps the memory stalls with dot arithmetic.
/// Chunking is bitwise-neutral: min/max are associative and commutative
/// over finite floats, and quantization is elementwise.
#[cfg(target_arch = "x86_64")]
struct PanelPrep {
    /// First source row of the panel being prepared.
    row: usize,
    /// Rows in the panel (0 when the current panel is the last).
    rows: usize,
    /// Pipeline progress in chunk items. Items are row-interleaved — each
    /// row's `PREP_CHUNKS` min/max chunks immediately followed by its
    /// quantize chunks — so the quantize re-read hits the row while it is
    /// still L1-resident and the RAM demand (min/max only) spreads evenly
    /// over the whole column loop instead of front-loading.
    done: usize,
    /// Running per-row (lo, hi) bounds while the min/max items run.
    bounds: [(f32, f32); ROW_BLOCK],
    rqs: [RowQuant; ROW_BLOCK],
    /// Prefetch cursor, bytes into the (contiguous, row-major) panel.
    pf: usize,
    /// Bytes consumed by completed min/max chunks — the prefetch cursor
    /// chases this plus a fixed lookahead.
    mm_bytes: usize,
}

/// How far the panel prefetch cursor runs ahead of the min/max reads.
#[cfg(target_arch = "x86_64")]
const PF_LOOKAHEAD: usize = 12288;

/// Cache lines prefetched per pipeline item, at most. Issuing a whole
/// chunk's worth in one burst overflows the line-fill buffers and the
/// excess prefetches are dropped; a capped steady rate is what actually
/// arrives early.
#[cfg(target_arch = "x86_64")]
const PF_MAX_LINES: usize = 16;

#[cfg(target_arch = "x86_64")]
impl PanelPrep {
    fn new(row: usize, rows: usize) -> Self {
        PanelPrep {
            row,
            rows,
            done: 0,
            bounds: [(f32::INFINITY, f32::NEG_INFINITY); ROW_BLOCK],
            rqs: [RowQuant::from_bounds(0.0, 0.0); ROW_BLOCK],
            pf: 0,
            mm_bytes: 0,
        }
    }

    fn total(&self) -> usize {
        self.rows * PREP_CHUNKS * 2
    }

    /// Run pipeline items until `target` of them have completed.
    #[target_feature(enable = "avx2")]
    unsafe fn advance(&mut self, target: usize, a: &Matrix, k: usize, aq: &mut [u8]) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let items_per_row = 2 * PREP_CHUNKS;
        let span = |c: usize| (c * k / PREP_CHUNKS, (c + 1) * k / PREP_CHUNKS);
        let panel_bytes = self.rows * k * 4;
        let base = if self.rows > 0 {
            a.row(self.row).as_ptr() as *const i8
        } else {
            std::ptr::null()
        };
        while self.done < target.min(self.total()) {
            let t = self.done / items_per_row;
            let w = self.done % items_per_row;
            let c = w % PREP_CHUNKS;
            let (lo, hi) = span(c);
            if self.pf < panel_bytes {
                let tgt = (self.mm_bytes + PF_LOOKAHEAD).min(panel_bytes);
                let mut lines = 0;
                while self.pf < tgt && lines < PF_MAX_LINES {
                    _mm_prefetch::<_MM_HINT_T0>(base.add(self.pf));
                    self.pf += 64;
                    lines += 1;
                }
            }
            let chunk = &a.row(self.row + t)[lo..hi];
            if w < PREP_CHUNKS {
                let (clo, chi) = min_max_avx2(chunk);
                let b = &mut self.bounds[t];
                b.0 = b.0.min(clo);
                b.1 = b.1.max(chi);
                self.mm_bytes += (hi - lo) * 4;
                if c + 1 == PREP_CHUNKS {
                    self.rqs[t] = RowQuant::from_bounds(b.0, b.1);
                }
            } else {
                quantize_row_avx2(chunk, self.rqs[t], &mut aq[t * k + lo..t * k + hi]);
            }
            self.done += 1;
        }
    }
}

/// Contraction lengths below this skip the software-pipelined prep: the
/// whole row range's quantized activations fit cache comfortably, and at
/// small `k` the per-column pipeline bookkeeping costs more than the
/// memory stalls it exists to hide.
#[cfg(target_arch = "x86_64")]
const PIPELINE_MIN_K: usize = 512;

/// Small-contraction driver: quantize every activation row upfront into
/// one buffer (padded to a whole panel so the dot kernel never sees a
/// short slice), then run the column loop back-to-back. Same quantization
/// and dequant expressions as the pipelined path, so still bit-identical
/// to the scalar reference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_rows_avx2_smallk(
    a: &Matrix,
    qb: &QuantizedMatrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    let k = qb.k;
    let n = qb.n;
    let rows_total = row_end - row_begin;
    let padded = rows_total.next_multiple_of(ROW_BLOCK);
    let mut aq = vec![0u8; padded * k];
    let mut rqs = vec![RowQuant::from_bounds(0.0, 0.0); rows_total];
    for (local, r) in (row_begin..row_end).enumerate() {
        let row = a.row(r);
        let (lo, hi) = min_max_avx2(row);
        let rq = RowQuant::from_bounds(lo, hi);
        rqs[local] = rq;
        quantize_row_avx2(row, rq, &mut aq[local * k..(local + 1) * k]);
    }
    let mut stage = vec![0i32; ROW_BLOCK * n];
    let colsf: Vec<f32> = qb.colsums.iter().map(|&c| c as f32).collect();
    let mut local = 0usize;
    while local < rows_total {
        let rows = (rows_total - local).min(ROW_BLOCK);
        let panel = &aq[local * k..(local + ROW_BLOCK) * k];
        for j in 0..n {
            let col = &qb.data[j * k..(j + 1) * k];
            let accs = dot_block_avx2(panel, k, col);
            for (t, &acc) in accs.iter().enumerate() {
                *stage.get_unchecked_mut(t * n + j) = acc;
            }
        }
        for t in 0..rows {
            let o = (local + t) * n;
            dequant_row_avx2(
                rqs[local + t],
                &stage[t * n..(t + 1) * n],
                &qb.scales,
                &colsf,
                &qb.colsums,
                &mut out[o..o + n],
            );
        }
        local += ROW_BLOCK;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_rows_avx2(
    a: &Matrix,
    qb: &QuantizedMatrix,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    let k = qb.k;
    let n = qb.n;
    if k < PIPELINE_MIN_K {
        return qgemm_rows_avx2_smallk(a, qb, out, row_begin, row_end);
    }
    // Double-buffered quantized panels: dots read `cur` while the
    // pipelined prep writes `next`. A short final panel leaves stale rows
    // in place and simply discards their accumulators (cheaper than a
    // variable-width inner loop).
    let mut aq = [vec![0u8; ROW_BLOCK * k], vec![0u8; ROW_BLOCK * k]];
    // Integer dots land here column-by-column; the dequant epilogue then
    // sweeps each row contiguously with vector loads instead of scattered
    // scalar stores.
    let mut stage = vec![0i32; ROW_BLOCK * n];
    let colsf: Vec<f32> = qb.colsums.iter().map(|&c| c as f32).collect();
    let mut cur = 0usize;
    let mut r = row_begin;
    // Prologue: quantize the first panel synchronously.
    let mut prep = PanelPrep::new(r, (row_end - r).min(ROW_BLOCK));
    prep.advance(usize::MAX, a, k, &mut aq[cur]);
    let mut rqs = prep.rqs;
    while r < row_end {
        let rows = (row_end - r).min(ROW_BLOCK);
        let next_r = r + rows;
        let mut prep = PanelPrep::new(next_r, (row_end - next_r).min(ROW_BLOCK));
        let items = prep.total();
        let base = (r - row_begin) * n;
        // Columns go two at a time: each pair pass reads the panel once
        // for both columns, halving the L2 re-read traffic, and the
        // four-row sub-panels it walks stay L1-resident at first-layer
        // widths. An odd final column falls back to the single-column
        // kernel.
        let mut j = 0;
        while j < n {
            let pair = j + 1 < n;
            let cols_done = j + if pair { 2 } else { 1 };
            prep.advance(items * cols_done / n, a, k, &mut aq[1 - cur]);
            if pair {
                let c0 = &qb.data[j * k..(j + 1) * k];
                let c1 = &qb.data[(j + 1) * k..(j + 2) * k];
                for half in 0..2 {
                    let accs = dot_pair_avx2(&aq[cur], k, half * 4, c0, c1);
                    for t in 0..4 {
                        let row = half * 4 + t;
                        *stage.get_unchecked_mut(row * n + j) = accs[t * 2];
                        *stage.get_unchecked_mut(row * n + j + 1) = accs[t * 2 + 1];
                    }
                }
            } else {
                let col = &qb.data[j * k..(j + 1) * k];
                let accs = dot_block_avx2(&aq[cur], k, col);
                for (t, &acc) in accs.iter().enumerate() {
                    *stage.get_unchecked_mut(t * n + j) = acc;
                }
            }
            j = cols_done;
        }
        prep.advance(usize::MAX, a, k, &mut aq[1 - cur]);
        for t in 0..rows {
            let o = base + t * n;
            dequant_row_avx2(
                rqs[t],
                &stage[t * n..(t + 1) * n],
                &qb.scales,
                &colsf,
                &qb.colsums,
                &mut out[o..o + n],
            );
        }
        rqs = prep.rqs;
        cur = 1 - cur;
        r = next_r;
    }
}

/// One output row of the dequant epilogue,
/// `out[j] = scales[j] · (min · colsum[j] + scale · acc[j])`, vectorized
/// over contiguous columns. Operation order matches the scalar
/// [`dequant`] expression term for term (mul, mul, add, mul — no
/// contraction), and `cvtdq2ps`/`as f32` both round to nearest even, so
/// the paths agree bitwise.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequant_row_avx2(
    rq: RowQuant,
    acc: &[i32],
    scales: &[f32],
    colsf: &[f32],
    colsums: &[i32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let vmin = _mm256_set1_ps(rq.min);
    let vscale = _mm256_set1_ps(rq.scale);
    let mut j = 0;
    while j + 8 <= n {
        let af = _mm256_cvtepi32_ps(_mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i));
        let t1 = _mm256_mul_ps(vmin, _mm256_loadu_ps(colsf.as_ptr().add(j)));
        let t2 = _mm256_mul_ps(vscale, af);
        let r = _mm256_mul_ps(
            _mm256_loadu_ps(scales.as_ptr().add(j)),
            _mm256_add_ps(t1, t2),
        );
        _mm256_storeu_ps(out.as_mut_ptr().add(j), r);
        j += 8;
    }
    while j < n {
        *out.get_unchecked_mut(j) = dequant(
            rq,
            *scales.get_unchecked(j),
            *colsums.get_unchecked(j),
            *acc.get_unchecked(j),
        );
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_max_avx2(row: &[f32]) -> (f32, f32) {
    use std::arch::x86_64::*;
    let mut vlo = _mm256_set1_ps(f32::INFINITY);
    let mut vhi = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut i = 0;
    while i + 8 <= row.len() {
        let v = _mm256_loadu_ps(row.as_ptr().add(i));
        vlo = _mm256_min_ps(vlo, v);
        vhi = _mm256_max_ps(vhi, v);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vlo);
    let mut lo = lanes.iter().fold(f32::INFINITY, |m, &v| m.min(v));
    _mm256_storeu_ps(lanes.as_mut_ptr(), vhi);
    let mut hi = lanes.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    while i < row.len() {
        let v = *row.get_unchecked(i);
        lo = lo.min(v);
        hi = hi.max(v);
        i += 1;
    }
    (lo, hi)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_avx2(row: &[f32], rq: RowQuant, out: &mut [u8]) {
    use std::arch::x86_64::*;
    let n = row.len().min(out.len());
    let vinv = _mm256_set1_ps(rq.inv);
    let vnmi = _mm256_set1_ps(rq.nmi);
    let lo = _mm256_setzero_si256();
    let hi = _mm256_set1_epi32(127);
    // After the two saturating packs the bytes sit in dword groups ordered
    // [q0 q2 q4 q6 | q1 q3 q5 q7]; this permutation restores them.
    let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    let mut i = 0;
    while i + 32 <= n {
        let q = |off: usize| {
            let v = _mm256_loadu_ps(row.as_ptr().add(i + off));
            // cvtps2dq rounds to nearest even — the shared rounding mode.
            let d = _mm256_cvtps_epi32(_mm256_fmadd_ps(v, vinv, vnmi));
            _mm256_min_epi32(_mm256_max_epi32(d, lo), hi)
        };
        let p01 = _mm256_packs_epi32(q(0), q(8));
        let p23 = _mm256_packs_epi32(q(16), q(24));
        let packed = _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), fix);
        _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, packed);
        i += 32;
    }
    while i < n {
        let v = *row.get_unchecked(i);
        *out.get_unchecked_mut(i) = v
            .mul_add(rq.inv, rq.nmi)
            .round_ties_even()
            .clamp(0.0, 127.0) as u8;
        i += 1;
    }
}

/// ROW_BLOCK integer dots against one weight column: the column vectors
/// are loaded once per iteration and feed one independent accumulator
/// chain per row. The main loop covers 64 elements: two `maddubs` pair
/// sums (each ≤ 16002 thanks to the ±63 weight range) add exactly in
/// `i16` before one widening `madd` — three port-bound ops per 64
/// multiply-adds. Exact i32 whatever the grouping, so the result is
/// bit-identical to [`udot_scalar`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_block_avx2(aq: &[u8], k: usize, col: &[i8]) -> [i32; ROW_BLOCK] {
    use std::arch::x86_64::*;
    debug_assert!(aq.len() >= ROW_BLOCK * k && col.len() >= k);
    let ones = _mm256_set1_epi16(1);
    let mut acc = [_mm256_setzero_si256(); ROW_BLOCK];
    let mut i = 0;
    while i + 64 <= k {
        let bv0 = _mm256_loadu_si256(col.as_ptr().add(i) as *const __m256i);
        let bv1 = _mm256_loadu_si256(col.as_ptr().add(i + 32) as *const __m256i);
        for (t, acc) in acc.iter_mut().enumerate() {
            let av0 = _mm256_loadu_si256(aq.as_ptr().add(t * k + i) as *const __m256i);
            let av1 = _mm256_loadu_si256(aq.as_ptr().add(t * k + i + 32) as *const __m256i);
            let pairs = _mm256_add_epi16(
                _mm256_maddubs_epi16(av0, bv0),
                _mm256_maddubs_epi16(av1, bv1),
            );
            *acc = _mm256_add_epi32(*acc, _mm256_madd_epi16(pairs, ones));
        }
        i += 64;
    }
    while i + 32 <= k {
        let bv = _mm256_loadu_si256(col.as_ptr().add(i) as *const __m256i);
        for (t, acc) in acc.iter_mut().enumerate() {
            let av = _mm256_loadu_si256(aq.as_ptr().add(t * k + i) as *const __m256i);
            let pairs = _mm256_maddubs_epi16(av, bv);
            *acc = _mm256_add_epi32(*acc, _mm256_madd_epi16(pairs, ones));
        }
        i += 32;
    }
    let mut totals = reduce8_avx2(&acc);
    for (t, total) in totals.iter_mut().enumerate() {
        let mut j = i;
        while j < k {
            *total += *aq.get_unchecked(t * k + j) as i32 * *col.get_unchecked(j) as i32;
            j += 1;
        }
    }
    totals
}

/// Four panel rows against two weight columns in one pass over the rows.
/// Compared to [`dot_block_avx2`] this halves how often the panel is
/// re-read (each activation load feeds both columns) and walks a
/// four-row sub-panel small enough to stay L1-resident even at k ≈ 1433.
/// The per-(row, column) accumulation order — 64-element dual-pair main
/// loop, 32-element loop, scalar tail — matches the single-column kernel
/// exactly, so results remain bit-identical to [`udot_scalar`].
///
/// Accumulators are laid out `[row][column]` (`acc[t * 2 + c]`) so
/// [`reduce8_avx2`] finishes all eight dots at once.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_pair_avx2(
    aq: &[u8],
    k: usize,
    row0: usize,
    c0: &[i8],
    c1: &[i8],
) -> [i32; ROW_BLOCK] {
    use std::arch::x86_64::*;
    debug_assert!(aq.len() >= (row0 + 4) * k && c0.len() >= k && c1.len() >= k);
    let ones = _mm256_set1_epi16(1);
    let mut acc = [_mm256_setzero_si256(); ROW_BLOCK];
    let mut i = 0;
    while i + 64 <= k {
        let b00 = _mm256_loadu_si256(c0.as_ptr().add(i) as *const __m256i);
        let b01 = _mm256_loadu_si256(c0.as_ptr().add(i + 32) as *const __m256i);
        let b10 = _mm256_loadu_si256(c1.as_ptr().add(i) as *const __m256i);
        let b11 = _mm256_loadu_si256(c1.as_ptr().add(i + 32) as *const __m256i);
        for t in 0..4 {
            let row = (row0 + t) * k + i;
            let av0 = _mm256_loadu_si256(aq.as_ptr().add(row) as *const __m256i);
            let av1 = _mm256_loadu_si256(aq.as_ptr().add(row + 32) as *const __m256i);
            let p0 = _mm256_add_epi16(
                _mm256_maddubs_epi16(av0, b00),
                _mm256_maddubs_epi16(av1, b01),
            );
            acc[t * 2] = _mm256_add_epi32(acc[t * 2], _mm256_madd_epi16(p0, ones));
            let p1 = _mm256_add_epi16(
                _mm256_maddubs_epi16(av0, b10),
                _mm256_maddubs_epi16(av1, b11),
            );
            acc[t * 2 + 1] = _mm256_add_epi32(acc[t * 2 + 1], _mm256_madd_epi16(p1, ones));
        }
        i += 64;
    }
    while i + 32 <= k {
        let b0 = _mm256_loadu_si256(c0.as_ptr().add(i) as *const __m256i);
        let b1 = _mm256_loadu_si256(c1.as_ptr().add(i) as *const __m256i);
        for t in 0..4 {
            let av = _mm256_loadu_si256(aq.as_ptr().add((row0 + t) * k + i) as *const __m256i);
            let p0 = _mm256_maddubs_epi16(av, b0);
            acc[t * 2] = _mm256_add_epi32(acc[t * 2], _mm256_madd_epi16(p0, ones));
            let p1 = _mm256_maddubs_epi16(av, b1);
            acc[t * 2 + 1] = _mm256_add_epi32(acc[t * 2 + 1], _mm256_madd_epi16(p1, ones));
        }
        i += 32;
    }
    let mut totals = reduce8_avx2(&acc);
    for t in 0..4 {
        for (c, col) in [c0, c1].iter().enumerate() {
            let total = &mut totals[t * 2 + c];
            let mut j = i;
            while j < k {
                *total +=
                    *aq.get_unchecked((row0 + t) * k + j) as i32 * *col.get_unchecked(j) as i32;
                j += 1;
            }
        }
    }
    totals
}

/// Lane sums of eight i32 accumulators via pairwise `hadd` transposes —
/// a dozen vector ops instead of eight scalar eight-way sums. Integer
/// addition is exact in any association, so the result is bit-identical
/// to summing each register's lanes left to right.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn reduce8_avx2(acc: &[std::arch::x86_64::__m256i; ROW_BLOCK]) -> [i32; ROW_BLOCK] {
    use std::arch::x86_64::*;
    let mut out = [0i32; ROW_BLOCK];
    for half in 0..2 {
        // hadd twice folds four registers to one vector whose low 128 bits
        // hold each register's low-half sum and the high 128 the high-half
        // sums; one cross-lane add finishes all four rows at once.
        let t0 = _mm256_hadd_epi32(acc[half * 4], acc[half * 4 + 1]);
        let t1 = _mm256_hadd_epi32(acc[half * 4 + 2], acc[half * 4 + 3]);
        let t2 = _mm256_hadd_epi32(t0, t1);
        let s = _mm_add_epi32(_mm256_castsi256_si128(t2), _mm256_extracti128_si256(t2, 1));
        _mm_storeu_si128(out.as_mut_ptr().add(half * 4) as *mut __m128i, s);
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn udot_avx2(a: &[u8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 32 <= n {
        let av = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let bv = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let pairs = _mm256_maddubs_epi16(av, bv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
        i += 32;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut total: i32 = lanes.iter().sum();
    while i < n {
        total += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitRng;

    /// Dev probe, not a correctness test: decomposes qgemm cost on the
    /// Cora first-layer shape so kernel work iterates without rebuilding
    /// the bench crate. Run with
    /// `cargo test --release -p skipnode-tensor --lib probe_qgemm -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn probe_qgemm_throughput() {
        let mut rng = SplitRng::new(3);
        // The bench_pr8 checkpoint layer mix: Cora depth-4 GCN at m=2708.
        let shapes = [
            (2708usize, 1433usize, 64usize),
            (2708, 64, 64),
            (2708, 64, 64),
            (2708, 64, 7),
        ];
        let mut f32_total = 0.0;
        let mut i8_total = 0.0;
        for &(m, k, n) in &shapes {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -0.3, 0.3);
            let qb = QuantizedMatrix::from_cols(&b);
            let mut out = Matrix::zeros(m, n);
            let time = |label: &str, mut f: Box<dyn FnMut() + '_>| -> f64 {
                for _ in 0..3 {
                    f();
                }
                let t0 = std::time::Instant::now();
                let iters = 20;
                for _ in 0..iters {
                    f();
                }
                let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
                let gmacs = (m * k * n) as f64 / ns;
                println!(
                    "({m},{k},{n}) {label}: {:.3} ms ({gmacs:.1} GMAC/s)",
                    ns / 1e6
                );
                ns
            };
            f32_total += time(
                "f32 matmul",
                Box::new(|| {
                    let r = a.matmul(&b);
                    crate::workspace::give(r);
                }),
            );
            i8_total += time("qgemm     ", Box::new(|| qgemm(&a, &qb, &mut out)));
        }
        println!(
            "checkpoint total: f32 {:.3} ms, int8 {:.3} ms, speedup {:.2}x",
            f32_total / 1e6,
            i8_total / 1e6,
            f32_total / i8_total
        );
    }

    #[test]
    fn quantized_product_tracks_f32_reference() {
        let mut rng = SplitRng::new(11);
        let a = rng.uniform_matrix(17, 33, -2.0, 2.0);
        let b = rng.uniform_matrix(33, 9, -1.0, 1.0);
        let qb = QuantizedMatrix::from_cols(&b);
        let mut out = Matrix::full(17, 9, f32::NAN);
        qgemm(&a, &qb, &mut out);
        let reference = a.matmul(&b);
        for (q, f) in out.as_slice().iter().zip(reference.as_slice()) {
            // 7-bit affine activations x 6-bit weights: ~0.8% relative
            // error per factor, summed over k=33 terms of magnitude <= 2.
            assert!((q - f).abs() <= 0.45, "{q} vs {f}");
        }
    }

    #[test]
    fn zero_rows_and_columns_quantize_exactly() {
        let mut b = Matrix::zeros(8, 3);
        b.set(2, 1, 0.5);
        let qb = QuantizedMatrix::from_cols(&b);
        assert_eq!(qb.scales()[0], 0.0);
        assert!(qb.scales()[1] > 0.0);
        let a = Matrix::zeros(4, 8);
        let mut out = Matrix::full(4, 3, f32::NAN);
        qgemm(&a, &qb, &mut out);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_rows_are_exact_through_the_affine_correction() {
        // A constant activation row quantizes to u = 0 everywhere; the
        // `min * colsum` term must reproduce the rank-one product to
        // within the weight quantization error alone.
        let mut rng = SplitRng::new(19);
        let b = rng.uniform_matrix(24, 5, -1.0, 1.0);
        let qb = QuantizedMatrix::from_cols(&b);
        let a = Matrix::full(3, 24, -0.75);
        let mut out = Matrix::full(3, 5, f32::NAN);
        qgemm(&a, &qb, &mut out);
        let reference = a.matmul(&b);
        for (q, f) in out.as_slice().iter().zip(reference.as_slice()) {
            assert!((q - f).abs() <= 0.1, "{q} vs {f}");
        }
    }

    #[test]
    fn blocked_path_matches_scalar_bitwise() {
        // Shapes straddle every remainder (n % 4, k % 32, zero rows) and
        // both AVX2 drivers: k < PIPELINE_MIN_K takes the upfront small-k
        // path, k >= 512 the software-pipelined one.
        let mut rng = SplitRng::new(17);
        for (m, k, n) in [
            (3, 33, 9),
            (5, 64, 6),
            (2, 100, 5),
            (4, 31, 4),
            (11, 512, 7),
            (9, 583, 6),
        ] {
            let mut a = rng.uniform_matrix(m, k, -3.0, 3.0);
            for c in 0..k {
                a.set(m - 1, c, 0.0);
            }
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            let qb = QuantizedMatrix::from_cols(&b);
            let mut fast = Matrix::full(m, n, f32::NAN);
            qgemm_rows(simd::active(), &a, &qb, fast.as_mut_slice(), 0, m);
            let mut slow = Matrix::full(m, n, f32::NAN);
            qgemm_rows(Isa::Scalar, &a, &qb, slow.as_mut_slice(), 0, m);
            assert_eq!(fast.as_slice(), slow.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn integer_dot_matches_scalar_reference_on_active_isa() {
        let mut rng = SplitRng::new(13);
        for len in [1usize, 31, 32, 33, 64, 100] {
            let a: Vec<u8> = (0..len)
                .map(|_| (rng.uniform(0.0, 128.0) as i32).clamp(0, 127) as u8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|_| (rng.uniform(-127.0, 128.0) as i32).clamp(-127, 127) as i8)
                .collect();
            assert_eq!(udot(simd::active(), &a, &b), udot_scalar(&a, &b));
        }
    }

    #[test]
    fn saturation_cannot_fire_at_extremes() {
        // All-127 x all-(-63) maximizes every pair sum magnitude the
        // calibrated ±63 weight range can produce; 160 elements also
        // exercise the 64-wide dual-pair loop, its 32-wide remainder, and
        // the scalar tail of the blocked kernel.
        let a = vec![127u8; 160];
        let b = vec![-63i8; 160];
        assert_eq!(udot(simd::active(), &a, &b), -127 * 63 * 160);
        #[cfg(target_arch = "x86_64")]
        if simd::active() == Isa::Avx2 {
            let blocked = vec![127u8; ROW_BLOCK * 160];
            let accs = unsafe { dot_block_avx2(&blocked, 160, &b) };
            assert!(accs.iter().all(|&v| v == -127 * 63 * 160));
        }
    }
}
