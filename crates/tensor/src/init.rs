//! Weight initializers.
//!
//! The paper's theory leans on the maximum singular value `s` of weight
//! matrices staying below 1 early in training ("weight matrices are often
//! initialized with small values"); Glorot-uniform init gives exactly that
//! regime for the layer widths used in the experiments.

use crate::matrix::Matrix;
use crate::rng::SplitRng;

/// Initialization schemes for dense weight matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot / Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    GlorotUniform,
    /// He normal: `N(0, 2 / fan_in)`.
    HeNormal,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Materialize a `fan_in x fan_out` matrix.
    pub fn build(self, fan_in: usize, fan_out: usize, rng: &mut SplitRng) -> Matrix {
        match self {
            Init::GlorotUniform => glorot_uniform(fan_in, fan_out, rng),
            Init::HeNormal => he_normal(fan_in, fan_out, rng),
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
        }
    }
}

/// Glorot/Xavier uniform initializer.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut SplitRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, -a, a)
}

/// He normal initializer (suits ReLU stacks).
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut SplitRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    rng.normal_matrix(fan_in, fan_out, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::max_singular_value;

    #[test]
    fn glorot_bounds_hold() {
        let mut rng = SplitRng::new(11);
        let w = glorot_uniform(64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn glorot_max_singular_value_is_moderate_at_init() {
        // Marchenko–Pastur: for an n x n matrix of i.i.d. entries with
        // std sigma, the top singular value is ~ 2*sigma*sqrt(n). For
        // Glorot-64 that is ~1.9; weight decay then pulls s below 1 during
        // training (the Remark 2 regime, s ≈ 0.2).
        let mut rng = SplitRng::new(12);
        let w = glorot_uniform(64, 64, &mut rng);
        let s = max_singular_value(&w, 200);
        assert!(s > 1.0 && s < 3.0, "s = {s}");
    }

    #[test]
    fn zeros_init_is_zero() {
        let mut rng = SplitRng::new(13);
        let w = Init::Zeros.build(3, 5, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn he_normal_scale_tracks_fan_in() {
        let mut rng = SplitRng::new(14);
        let w = he_normal(512, 64, &mut rng);
        let var: f64 = w
            .as_slice()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / w.len() as f64;
        let expect = 2.0 / 512.0;
        assert!((var - expect).abs() < expect * 0.3, "var {var} vs {expect}");
    }
}
