//! bfloat16 storage: conversion kernels and fused widen-on-load compute.
//!
//! bf16 is the top 16 bits of an IEEE-754 `f32` (1 sign, 8 exponent,
//! 7 mantissa bits), so widening is exact (`bits << 16`) and narrowing is
//! one round-to-nearest-even on the raw bits — uniform across normals,
//! subnormals and infinities, with NaNs quieted so the narrowed payload
//! can never collapse to an infinity pattern. Both directions are pure
//! integer bit manipulation, which makes the vector paths **bit-identical**
//! to the scalar reference on every ISA (unlike the FMA-class arithmetic
//! kernels, which are tolerance-class); the property tests in
//! `tensor/tests/bf16_quant.rs` pin this.
//!
//! Compute never happens in bf16. The fused kernels here
//! ([`axpy_bf16`], [`gemm_rows_bf16`]) widen packed operands in-register
//! and accumulate in `f32`, mirroring the accumulation order and
//! zero-skip structure of their f32 twins in [`crate::simd`] and
//! [`crate::gemm`] exactly: scalar bf16 paths use plain mul-add, AVX2
//! paths use FMA, and vectorization is across output elements only. The
//! packed elementwise kernels ([`relu_bf16`], [`add_scaled_bf16`]) widen,
//! compute in f32, and narrow on store.
//!
//! Whether the GEMM/SpMM drivers stage operands through this module is
//! decided by [`crate::precision::active`]; this module itself is
//! mode-oblivious.

use crate::kstats;
use crate::matrix::Matrix;
use crate::simd::{GemmTile, Isa};
use std::sync::Mutex;

/// Round one `f32` to bf16 (round-to-nearest-even on the raw bits).
/// NaNs are quieted (mantissa MSB forced on) so the payload truncation
/// cannot produce an infinity; subnormals and infinities round like any
/// other bit pattern because bf16 is a prefix of the f32 format.
#[inline]
pub fn narrow(x: f32) -> u16 {
    let bits = x.to_bits();
    if (bits & 0x7fff_ffff) > 0x7f80_0000 {
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7fff + ((bits >> 16) & 1);
    (bits.wrapping_add(round) >> 16) as u16
}

/// Widen one bf16 value back to `f32` — exact by construction.
#[inline]
pub fn widen(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Narrow `src` into `dst` (`min(len)` elements). Bit-identical across
/// ISAs; records a `pack_bf16` kstats entry (work = elements).
pub fn narrow_slice(isa: Isa, src: &[f32], dst: &mut [u16]) {
    let n = src.len().min(dst.len());
    kstats::record(kstats::Kernel::PackBf16, n);
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: dispatch only selects Avx2 after `is_x86_feature_detected!`.
        unsafe { narrow_slice_avx2(&src[..n], &mut dst[..n]) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { narrow_slice_neon(&src[..n], &mut dst[..n]) };
        return;
    }
    let _ = isa;
    for (d, &s) in dst[..n].iter_mut().zip(src) {
        *d = narrow(s);
    }
}

/// Widen `src` into `dst` (`min(len)` elements). Bit-identical across
/// ISAs; records a `widen_bf16` kstats entry (work = elements).
pub fn widen_slice(isa: Isa, src: &[u16], dst: &mut [f32]) {
    let n = src.len().min(dst.len());
    kstats::record(kstats::Kernel::WidenBf16, n);
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `narrow_slice`.
        unsafe { widen_slice_avx2(&src[..n], &mut dst[..n]) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { widen_slice_neon(&src[..n], &mut dst[..n]) };
        return;
    }
    let _ = isa;
    for (d, &s) in dst[..n].iter_mut().zip(src) {
        *d = widen(s);
    }
}

/// `y += alpha * widen(x)` — the bf16 twin of [`crate::simd::axpy`], and
/// the inner kernel of the bf16 SpMM family. Scalar path is plain
/// mul-add (the bitwise reference), AVX2 widens 8 lanes in-register and
/// FMAs, mirroring the f32 kernel's tolerance class.
pub fn axpy_bf16(isa: Isa, alpha: f32, x: &[u16], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `narrow_slice`.
        unsafe { axpy_bf16_avx2(alpha, x, y) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { axpy_bf16_neon(alpha, x, y) };
        return;
    }
    let _ = isa;
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * widen(xv);
    }
}

/// In-place ReLU on packed bf16: strictly negative values become `+0.0`
/// (the packed bits alone decide; NaNs and `-0.0` pass through, matching
/// the scalar f32 `max(0.0)` caveats documented in [`crate::simd`]).
pub fn relu_bf16(y: &mut [u16]) {
    kstats::record(kstats::Kernel::Elemwise, y.len());
    for v in y {
        if widen(*v) < 0.0 {
            *v = 0;
        }
    }
}

/// `y = narrow(widen(y) + alpha * widen(x))` — widen, f32 mul-add,
/// narrow-on-store. The elementwise pattern for bf16-resident buffers.
pub fn add_scaled_bf16(y: &mut [u16], x: &[u16], alpha: f32) {
    kstats::record(kstats::Kernel::Elemwise, y.len().min(x.len()));
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = narrow(widen(*yv) + alpha * widen(xv));
    }
}

/// Register-tiled GEMM rows over a packed-bf16 `B` (row-major `k x n` in
/// `bq`): the bf16 twin of the [`crate::simd::gemm_rows`] dispatch.
/// Honors the auto-tuned register tile on AVX2; every other ISA runs the
/// scalar reference (plain mul-add, byte-identical everywhere).
/// The signature mirrors `simd::gemm_rows` plus the packed operand — the
/// twins must stay call-compatible for the dispatch layer.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows_bf16(
    isa: Isa,
    tile: GemmTile,
    a: &Matrix,
    bq: &[u16],
    n: usize,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if isa == Isa::Avx2 {
        // SAFETY: see `narrow_slice`.
        unsafe {
            match tile {
                GemmTile::T4x8 => gemm_rows_bf16_avx2::<4, 1>(a, bq, n, out, row_begin, row_end),
                GemmTile::T4x16 => gemm_rows_bf16_avx2::<4, 2>(a, bq, n, out, row_begin, row_end),
                GemmTile::T8x8 => gemm_rows_bf16_avx2::<8, 1>(a, bq, n, out, row_begin, row_end),
                GemmTile::T6x16 => gemm_rows_bf16_avx2::<6, 2>(a, bq, n, out, row_begin, row_end),
            }
        }
        return;
    }
    let _ = (isa, tile);
    gemm_rows_bf16_scalar(a, bq, n, out, row_begin, row_end);
}

/// Scalar bf16 GEMM rows — same 4×8 tiling, zero-skip, and plain mul-add
/// accumulation order as the f32 scalar reference in `gemm.rs`, with `B`
/// widened on load.
pub(crate) fn gemm_rows_bf16_scalar(
    a: &Matrix,
    bq: &[u16],
    n: usize,
    out: &mut [f32],
    row_begin: usize,
    row_end: usize,
) {
    const MR: usize = 4;
    const NR: usize = 8;
    let k = a.cols();
    let rows = row_end - row_begin;
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let r0 = row_begin + i;
        let mut jt = 0;
        while jt < n {
            let nr = NR.min(n - jt);
            if mr == MR && nr == NR {
                let a_rows: [&[f32]; MR] = [a.row(r0), a.row(r0 + 1), a.row(r0 + 2), a.row(r0 + 3)];
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let av = [a_rows[0][p], a_rows[1][p], a_rows[2][p], a_rows[3][p]];
                    if av == [0.0; MR] {
                        continue;
                    }
                    let bp = &bq[p * n + jt..p * n + jt + NR];
                    for (accr, &ar) in acc.iter_mut().zip(&av) {
                        for (o, &bv) in accr.iter_mut().zip(bp) {
                            *o += ar * widen(bv);
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    out[(i + r) * n + jt..(i + r) * n + jt + NR].copy_from_slice(accr);
                }
            } else {
                for r in 0..mr {
                    let a_row = a.row(r0 + r);
                    let mut acc = [0.0f32; NR];
                    for (p, &ap) in a_row.iter().enumerate() {
                        if ap == 0.0 {
                            continue;
                        }
                        let bp = &bq[p * n + jt..p * n + jt + nr];
                        for (o, &bv) in acc[..nr].iter_mut().zip(bp) {
                            *o += ap * widen(bv);
                        }
                    }
                    out[(i + r) * n + jt..(i + r) * n + jt + nr].copy_from_slice(&acc[..nr]);
                }
            }
            jt += nr;
        }
        i += mr;
    }
}

// ---------------------------------------------------------------------------
// u16 staging scratch
// ---------------------------------------------------------------------------

/// Retained staging buffers (the GEMM/SpMM drivers stage one dense operand
/// per call, so a handful of slots suffices).
const MAX_SCRATCH_BUFFERS: usize = 8;

fn scratch_pool() -> &'static Mutex<Vec<Vec<u16>>> {
    static POOL: std::sync::OnceLock<Mutex<Vec<Vec<u16>>>> = std::sync::OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Borrow a `len`-element u16 staging buffer (contents unspecified).
pub fn take_scratch_u16(len: usize) -> Vec<u16> {
    let mut pool = scratch_pool().lock().expect("bf16 scratch lock");
    let pos = pool.iter().position(|b| b.capacity() >= len);
    let mut buf = pos.map(|p| pool.swap_remove(p)).unwrap_or_default();
    buf.resize(len, 0);
    buf
}

/// Return a staging buffer to the pool (dropped when the pool is full).
pub fn give_scratch_u16(buf: Vec<u16>) {
    let mut pool = scratch_pool().lock().expect("bf16 scratch lock");
    if pool.len() < MAX_SCRATCH_BUFFERS {
        pool.push(buf);
    }
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Matrix;
    use std::arch::x86_64::*;

    /// Widen 8 packed bf16 values at `ptr` into an f32 vector (exact).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn widen8(ptr: *const u16) -> __m256 {
        let h = _mm_loadu_si128(ptr as *const __m128i);
        _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn narrow_slice_avx2(src: &[f32], dst: &mut [u16]) {
        let n = src.len().min(dst.len());
        let abs_mask = _mm256_set1_epi32(0x7fff_ffff);
        let exp_all = _mm256_set1_epi32(0x7f80_0000);
        let bias = _mm256_set1_epi32(0x7fff);
        let one = _mm256_set1_epi32(1);
        let quiet = _mm256_set1_epi32(0x40);
        let lo16 = _mm256_set1_epi32(0xffff);
        let mut i = 0;
        while i + 8 <= n {
            // Same integer arithmetic as the scalar `narrow`, 8 lanes wide:
            // signed compare is safe because |bits| ≤ 0x7fffffff, and the
            // rounding add wraps exactly like `wrapping_add`.
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let nan = _mm256_cmpgt_epi32(_mm256_and_si256(v, abs_mask), exp_all);
            let lsb = _mm256_and_si256(_mm256_srli_epi32(v, 16), one);
            let rounded = _mm256_srli_epi32(_mm256_add_epi32(_mm256_add_epi32(v, bias), lsb), 16);
            let nanv = _mm256_or_si256(_mm256_srli_epi32(v, 16), quiet);
            let res = _mm256_and_si256(_mm256_blendv_epi8(rounded, nanv, nan), lo16);
            let packed = _mm256_packus_epi32(res, res);
            let perm = _mm256_permute4x64_epi64(packed, 0b00_00_10_00);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(i) as *mut __m128i,
                _mm256_castsi256_si128(perm),
            );
            i += 8;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::narrow(*src.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_slice_avx2(src: &[u16], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), widen8(src.as_ptr().add(i)));
            i += 8;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::widen(*src.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_bf16_avx2(alpha: f32, x: &[u16], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let av = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let xv = widen8(x.as_ptr().add(i));
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(av, xv, yv));
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) =
                alpha.mul_add(super::widen(*x.get_unchecked(i)), *y.get_unchecked(i));
            i += 1;
        }
    }

    /// bf16 twin of `simd::gemm_rows_avx2`: identical tiling, zero-skip,
    /// and per-element accumulation order, with `B` widened in-register.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_rows_bf16_avx2<const MR: usize, const NU: usize>(
        a: &Matrix,
        bq: &[u16],
        n: usize,
        out: &mut [f32],
        row_begin: usize,
        row_end: usize,
    ) {
        let k = a.cols();
        let nr = NU * 8;
        let rows = row_end - row_begin;
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let r0 = row_begin + i;
            let mut jt = 0;
            while jt < n {
                let w = nr.min(n - jt);
                if mr == MR && w == nr {
                    let a_ptrs: [*const f32; MR] = std::array::from_fn(|r| a.row(r0 + r).as_ptr());
                    let mut acc = [[_mm256_setzero_ps(); NU]; MR];
                    for p in 0..k {
                        let avals: [f32; MR] = std::array::from_fn(|r| *a_ptrs[r].add(p));
                        if avals == [0.0; MR] {
                            continue;
                        }
                        let bp = bq.as_ptr().add(p * n + jt);
                        let bv: [__m256; NU] = std::array::from_fn(|u| widen8(bp.add(u * 8)));
                        for (accr, &ar) in acc.iter_mut().zip(&avals) {
                            let av = _mm256_set1_ps(ar);
                            for (o, &bvu) in accr.iter_mut().zip(&bv) {
                                *o = _mm256_fmadd_ps(av, bvu, *o);
                            }
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let optr = out.as_mut_ptr().add((i + r) * n + jt);
                        for (u, &o) in accr.iter().enumerate() {
                            _mm256_storeu_ps(optr.add(u * 8), o);
                        }
                    }
                } else {
                    let mut acc = [0.0f32; 16];
                    for r in 0..mr {
                        let a_row = a.row(r0 + r);
                        acc[..w].fill(0.0);
                        for (p, &ap) in a_row.iter().enumerate() {
                            if ap == 0.0 {
                                continue;
                            }
                            let bp = &bq[p * n + jt..p * n + jt + w];
                            for (o, &bv) in acc[..w].iter_mut().zip(bp) {
                                *o = ap.mul_add(super::widen(bv), *o);
                            }
                        }
                        out[(i + r) * n + jt..(i + r) * n + jt + w].copy_from_slice(&acc[..w]);
                    }
                }
                jt += w;
            }
            i += mr;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{axpy_bf16_avx2, gemm_rows_bf16_avx2, narrow_slice_avx2, widen_slice_avx2};

// ---------------------------------------------------------------------------
// NEON implementations (conversion + axpy; GEMM uses the scalar reference)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn narrow_slice_neon(src: &[f32], dst: &mut [u16]) {
        let n = src.len().min(dst.len());
        let abs_mask = vdupq_n_u32(0x7fff_ffff);
        let exp_all = vdupq_n_u32(0x7f80_0000);
        let bias = vdupq_n_u32(0x7fff);
        let one = vdupq_n_u32(1);
        let quiet = vdupq_n_u32(0x40);
        let mut i = 0;
        while i + 4 <= n {
            let v = vreinterpretq_u32_f32(vld1q_f32(src.as_ptr().add(i)));
            let nan = vcgtq_u32(vandq_u32(v, abs_mask), exp_all);
            let lsb = vandq_u32(vshrq_n_u32(v, 16), one);
            let rounded = vshrq_n_u32(vaddq_u32(vaddq_u32(v, bias), lsb), 16);
            let nanv = vorrq_u32(vshrq_n_u32(v, 16), quiet);
            let res = vbslq_u32(nan, nanv, rounded);
            vst1_u16(dst.as_mut_ptr().add(i), vmovn_u32(res));
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::narrow(*src.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn widen_slice_neon(src: &[u16], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        let mut i = 0;
        while i + 4 <= n {
            let h = vld1_u16(src.as_ptr().add(i));
            let w = vreinterpretq_f32_u32(vshll_n_u16(h, 16));
            vst1q_f32(dst.as_mut_ptr().add(i), w);
            i += 4;
        }
        while i < n {
            *dst.get_unchecked_mut(i) = super::widen(*src.get_unchecked(i));
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy_bf16_neon(alpha: f32, x: &[u16], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let mut i = 0;
        while i + 4 <= n {
            let h = vld1_u16(x.as_ptr().add(i));
            let xv = vreinterpretq_f32_u32(vshll_n_u16(h, 16));
            let yv = vld1q_f32(y.as_ptr().add(i));
            vst1q_f32(y.as_mut_ptr().add(i), vfmaq_n_f32(yv, xv, alpha));
            i += 4;
        }
        while i < n {
            *y.get_unchecked_mut(i) =
                alpha.mul_add(super::widen(*x.get_unchecked(i)), *y.get_unchecked(i));
            i += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
use neon::{axpy_bf16_neon, narrow_slice_neon, widen_slice_neon};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // value up; RNE picks the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(narrow(halfway), 0x3f80);
        // One ulp above halfway rounds up.
        assert_eq!(narrow(f32::from_bits(0x3f80_8001)), 0x3f81);
        // Odd mantissa at exact halfway rounds up to even.
        assert_eq!(narrow(f32::from_bits(0x3f81_8000)), 0x3f82);
    }

    #[test]
    fn specials_survive_narrowing() {
        assert_eq!(narrow(f32::INFINITY), 0x7f80);
        assert_eq!(narrow(f32::NEG_INFINITY), 0xff80);
        assert_eq!(narrow(0.0), 0x0000);
        assert_eq!(narrow(-0.0), 0x8000);
        assert!(widen(narrow(f32::NAN)).is_nan());
        // A NaN whose payload lives only in the truncated bits must stay
        // a NaN after narrowing.
        let sneaky = f32::from_bits(0x7f80_0001);
        assert!(widen(narrow(sneaky)).is_nan());
    }

    #[test]
    fn widen_is_exact_for_all_bf16_values() {
        for b in 0..=u16::MAX {
            let w = widen(b);
            if w.is_nan() {
                assert!(widen(narrow(w)).is_nan());
            } else {
                assert_eq!(narrow(w), b, "bf16 {b:#06x} must round-trip");
            }
        }
    }

    #[test]
    fn relu_and_add_scaled_operate_on_packed_values() {
        let mut y = [narrow(-2.0), narrow(3.0), narrow(-0.0), narrow(0.5)];
        relu_bf16(&mut y);
        assert_eq!(widen(y[0]), 0.0);
        assert_eq!(widen(y[1]), 3.0);
        assert_eq!(y[2], 0x8000, "-0.0 passes through like the f32 scalar relu");
        let x = [narrow(1.0), narrow(1.0), narrow(1.0), narrow(1.0)];
        add_scaled_bf16(&mut y, &x, 2.0);
        assert_eq!(widen(y[0]), 2.0);
        assert_eq!(widen(y[1]), 5.0);
    }

    #[test]
    fn scratch_buffers_are_reused() {
        let a = take_scratch_u16(64);
        let ptr = a.as_ptr();
        give_scratch_u16(a);
        let b = take_scratch_u16(32);
        assert_eq!(b.len(), 32);
        assert_eq!(b.as_ptr(), ptr, "pooled buffer should be recycled");
        give_scratch_u16(b);
    }
}
