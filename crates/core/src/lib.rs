#![warn(missing_docs)]

//! SkipNode: the paper's primary contribution.
//!
//! SkipNode is a plug-and-play module for deep GCN training. In each middle
//! layer it samples a set of nodes that *skip* the layer's convolution
//! entirely (Eq. 4 of the paper):
//!
//! ```text
//! X^(l) = (I − P^(l)) σ(Ã X^(l−1) W^(l)) + P^(l) X^(l−1)
//! ```
//!
//! where `P^(l)` is a diagonal 0/1 mask resampled every layer, every epoch,
//! during training only. Two samplers are provided ([`Sampling`]):
//! uniform (`P_ii ~ Bernoulli(ρ)`) and biased (`ρN` nodes, probability
//! proportional to degree — high-degree nodes smooth fastest).
//!
//! The [`theory`] module carries the paper's analysis instruments: the
//! `(sλ)^L` machinery, the Theorem 2 / Theorem 3 bounds, and the drivers
//! for the Figure 4 experiments.
//!
//! ```
//! use skipnode_core::{SkipNodeConfig, Sampling};
//! use skipnode_tensor::SplitRng;
//!
//! let cfg = SkipNodeConfig::new(0.5, Sampling::Uniform);
//! let degrees = vec![3, 1, 4, 1, 5];
//! let mut rng = SplitRng::new(7);
//! let mask = cfg.sample_mask(&degrees, &mut rng);
//! assert_eq!(mask.len(), 5);
//! ```

mod sampler;
pub mod theory;

pub use sampler::{Sampling, SkipNodeConfig};
