//! The SkipNode mask samplers.

use skipnode_tensor::SplitRng;

/// Node-sampling strategy for the skip mask `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// `P_ii ~ Bernoulli(ρ)` independently per node (SkipNode-U).
    Uniform,
    /// Exactly `⌊ρN⌋` nodes sampled without replacement with probability
    /// proportional to node degree (SkipNode-B) — GCNII observes that
    /// high-degree nodes are the first to over-smooth.
    Biased,
    /// Ablation: probability proportional to 1/(degree+1) — prefers
    /// low-degree nodes, the *opposite* of the paper's intuition.
    InverseBiased,
    /// Ablation: deterministically the `⌊ρN⌋` highest-degree nodes.
    TopDegree,
}

impl Sampling {
    /// CLI form.
    pub fn as_str(self) -> &'static str {
        match self {
            Sampling::Uniform => "uniform",
            Sampling::Biased => "biased",
            Sampling::InverseBiased => "inverse-biased",
            Sampling::TopDegree => "top-degree",
        }
    }

    /// Parse from the CLI form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(Sampling::Uniform),
            "biased" => Some(Sampling::Biased),
            "inverse-biased" => Some(Sampling::InverseBiased),
            "top-degree" => Some(Sampling::TopDegree),
            _ => None,
        }
    }
}

/// SkipNode configuration: sampling rate `ρ` plus strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipNodeConfig {
    rate: f64,
    sampling: Sampling,
}

impl SkipNodeConfig {
    /// New configuration.
    ///
    /// # Panics
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(rate: f64, sampling: Sampling) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "SkipNode rate must be in [0, 1), got {rate}"
        );
        Self { rate, sampling }
    }

    /// The sampling rate `ρ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The sampling strategy.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// Sample the diagonal of `P^(l)`: `mask[i] == true` means node `i`
    /// skips this layer's convolution. Resample per layer, per epoch.
    pub fn sample_mask(&self, degrees: &[usize], rng: &mut SplitRng) -> Vec<bool> {
        let n = degrees.len();
        let mut mask = vec![false; n];
        if self.rate == 0.0 || n == 0 {
            return mask;
        }
        match self.sampling {
            Sampling::Uniform => {
                for m in &mut mask {
                    *m = rng.bernoulli(self.rate);
                }
            }
            Sampling::Biased => {
                let k = ((self.rate * n as f64).floor() as usize).min(n);
                let weights: Vec<f64> = degrees.iter().map(|&d| (d + 1) as f64).collect();
                for i in rng.weighted_sample_indices(&weights, k) {
                    mask[i] = true;
                }
            }
            Sampling::InverseBiased => {
                let k = ((self.rate * n as f64).floor() as usize).min(n);
                let weights: Vec<f64> = degrees.iter().map(|&d| 1.0 / (d + 1) as f64).collect();
                for i in rng.weighted_sample_indices(&weights, k) {
                    mask[i] = true;
                }
            }
            Sampling::TopDegree => {
                let k = ((self.rate * n as f64).floor() as usize).min(n);
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(degrees[i]));
                for &i in order.iter().take(k) {
                    mask[i] = true;
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_skips_nothing() {
        let cfg = SkipNodeConfig::new(0.0, Sampling::Uniform);
        let mask = cfg.sample_mask(&[1; 100], &mut SplitRng::new(1));
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn rate_one_rejected() {
        let _ = SkipNodeConfig::new(1.0, Sampling::Uniform);
    }

    #[test]
    fn uniform_rate_is_respected_in_expectation() {
        let cfg = SkipNodeConfig::new(0.3, Sampling::Uniform);
        let mut rng = SplitRng::new(2);
        let n = 20_000;
        let mask = cfg.sample_mask(&vec![1; n], &mut rng);
        let frac = mask.iter().filter(|&&m| m).count() as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn biased_selects_exactly_rho_n_nodes() {
        let cfg = SkipNodeConfig::new(0.5, Sampling::Biased);
        let degrees: Vec<usize> = (0..101).collect();
        let mask = cfg.sample_mask(&degrees, &mut SplitRng::new(3));
        assert_eq!(mask.iter().filter(|&&m| m).count(), 50);
    }

    #[test]
    fn biased_prefers_high_degree_nodes() {
        let cfg = SkipNodeConfig::new(0.2, Sampling::Biased);
        // Half the nodes have degree 50, half degree 1.
        let mut degrees = vec![50usize; 200];
        degrees.extend(vec![1usize; 200]);
        let mut rng = SplitRng::new(4);
        let mut high = 0usize;
        let mut low = 0usize;
        for _ in 0..50 {
            let mask = cfg.sample_mask(&degrees, &mut rng);
            high += mask[..200].iter().filter(|&&m| m).count();
            low += mask[200..].iter().filter(|&&m| m).count();
        }
        assert!(high > low * 5, "high {high}, low {low}");
    }

    #[test]
    fn inverse_biased_prefers_low_degree_nodes() {
        let cfg = SkipNodeConfig::new(0.2, Sampling::InverseBiased);
        let mut degrees = vec![50usize; 200];
        degrees.extend(vec![0usize; 200]);
        let mut rng = SplitRng::new(5);
        let mut high = 0usize;
        let mut low = 0usize;
        for _ in 0..50 {
            let mask = cfg.sample_mask(&degrees, &mut rng);
            high += mask[..200].iter().filter(|&&m| m).count();
            low += mask[200..].iter().filter(|&&m| m).count();
        }
        assert!(low > high * 5, "high {high}, low {low}");
    }

    #[test]
    fn top_degree_is_deterministic() {
        let cfg = SkipNodeConfig::new(0.4, Sampling::TopDegree);
        let degrees = vec![5, 1, 9, 3, 7];
        let m1 = cfg.sample_mask(&degrees, &mut SplitRng::new(1));
        let m2 = cfg.sample_mask(&degrees, &mut SplitRng::new(99));
        assert_eq!(m1, m2);
        // 0.4 * 5 = 2 nodes: degrees 9 and 7 → indices 2 and 4.
        assert_eq!(m1, vec![false, false, true, false, true]);
    }

    #[test]
    fn sampling_round_trip_parse() {
        for s in [
            Sampling::Uniform,
            Sampling::Biased,
            Sampling::InverseBiased,
            Sampling::TopDegree,
        ] {
            assert_eq!(Sampling::parse(s.as_str()), Some(s));
        }
        assert_eq!(Sampling::parse("bogus"), None);
    }
}
