//! The paper's over-smoothing theory, executable.
//!
//! Implements the `(sλ)^L` machinery from Section 5.2: controlled-spectrum
//! weight sampling, the vanilla and SkipNode layer maps, the Theorem 2 /
//! Theorem 3 bounds, and the series drivers behind Figure 4.

use crate::sampler::{Sampling, SkipNodeConfig};
use skipnode_graph::erdos_renyi;
use skipnode_sparse::{
    gcn_adjacency, second_largest_eigen_magnitude, CsrMatrix, SmoothingSubspace,
};
use skipnode_tensor::{glorot_uniform, max_singular_value, Matrix, SplitRng};

/// A graph instrumented for the theory experiments: normalized adjacency,
/// the over-smoothing subspace `M`, degrees, and `λ`.
pub struct TheoryGraph {
    adj: CsrMatrix,
    subspace: SmoothingSubspace,
    degrees: Vec<usize>,
    lambda: f64,
}

impl TheoryGraph {
    /// Instrument an arbitrary undirected edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let adj = gcn_adjacency(n, edges);
        let subspace = SmoothingSubspace::from_edges(n, edges);
        let lambda = second_largest_eigen_magnitude(&adj, &subspace, 500);
        let mut degrees = vec![0usize; n];
        for &(u, v) in edges {
            if u != v {
                degrees[u] += 1;
                degrees[v] += 1;
            }
        }
        Self {
            adj,
            subspace,
            degrees,
            lambda,
        }
    }

    /// The Figure 4 graph: Erdős–Rényi `G(n, p)`.
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut SplitRng) -> Self {
        let edges = erdos_renyi(n, p, rng);
        Self::from_edges(n, &edges)
    }

    /// `λ`, the second-largest eigenvalue magnitude of `Ã`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Node degrees.
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// `d_M(X)` on this graph's smoothing subspace.
    pub fn distance(&self, x: &Matrix) -> f64 {
        self.subspace.distance(x)
    }

    /// The normalized adjacency.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }
}

/// Glorot-initialized `d×d` weight rescaled so its maximum singular value
/// is exactly `s` — the controlled knob of the Figure 4 sweeps.
pub fn random_weight_with_singular_value(d: usize, s: f64, rng: &mut SplitRng) -> Matrix {
    assert!(s > 0.0, "target singular value must be positive");
    let mut w = glorot_uniform(d, d, rng);
    let cur = max_singular_value(&w, 300);
    assert!(cur > 0.0, "degenerate random weight");
    w.scale_in_place((s / cur) as f32);
    w
}

/// One vanilla GCN layer: `X₁ = ReLU(Ã X W)`.
pub fn vanilla_layer(g: &TheoryGraph, x: &Matrix, w: &Matrix) -> Matrix {
    g.adj.spmm(x).matmul(w).relu()
}

/// One SkipNode layer: `X₂ = (I − P) ReLU(Ã X W) + P X` for the given mask.
pub fn skipnode_layer(g: &TheoryGraph, x: &Matrix, w: &Matrix, mask: &[bool]) -> Matrix {
    let mut x2 = vanilla_layer(g, x, w);
    for (r, &skip) in mask.iter().enumerate() {
        if skip {
            let src = x.row(r).to_vec();
            x2.row_mut(r).copy_from_slice(&src);
        }
    }
    x2
}

/// Theorem 2 coefficient: the one-layer upper bound on
/// `d_M(E[X₂]) / d_M(X)` is `sλ + ρ(1 − sλ)` (vs `sλ` for vanilla GCN).
pub fn theorem2_coefficient(s_lambda: f64, rho: f64) -> f64 {
    s_lambda + rho * (1.0 - s_lambda)
}

/// Theorem 3 lower bound on `d_M(E[X₂]) / d_M(X₁)`: `ρ(1/(sλ) + 1) − 1`
/// (meaningful when positive).
pub fn theorem3_lower_bound(s_lambda: f64, rho: f64) -> f64 {
    rho * (1.0 / s_lambda + 1.0) - 1.0
}

/// The smallest `ρ` for which Theorem 3 guarantees
/// `d_M(E[X₂]) ≥ d_M(X₁)`, i.e. `ρ(1/(sλ)+1) > 2`.
pub fn theorem3_min_rho(s_lambda: f64) -> f64 {
    2.0 / (1.0 / s_lambda + 1.0)
}

/// Figure 4(a): per-layer `log(d_M(X^(l)) / d_M(X^(0)))` for an `L`-layer
/// forward pass with fresh weights of singular value `s` per layer and the
/// given SkipNode rate (`ρ = 0` reproduces vanilla GCN). One run; average
/// over seeds at the call site.
pub fn depth_log_ratio_series(
    g: &TheoryGraph,
    x0: &Matrix,
    s: f64,
    rho: f64,
    layers: usize,
    rng: &mut SplitRng,
) -> Vec<f64> {
    let d0 = g.distance(x0).max(1e-300);
    let cfg = (rho > 0.0).then(|| SkipNodeConfig::new(rho, Sampling::Uniform));
    let mut x = x0.clone();
    let mut out = Vec::with_capacity(layers);
    for _ in 0..layers {
        let w = random_weight_with_singular_value(x0.cols(), s, rng);
        x = match &cfg {
            Some(cfg) => {
                let mask = cfg.sample_mask(g.degrees(), rng);
                skipnode_layer(g, &x, &w, &mask)
            }
            None => vanilla_layer(g, &x, &w),
        };
        out.push((g.distance(&x).max(1e-300) / d0).ln());
    }
    out
}

/// Figure 4(b): one-layer `log(d_M(X₂) / d_M(X₁))` for a single draw of
/// weights and mask.
pub fn one_layer_log_ratio(
    g: &TheoryGraph,
    x0: &Matrix,
    s: f64,
    rho: f64,
    rng: &mut SplitRng,
) -> f64 {
    let w = random_weight_with_singular_value(x0.cols(), s, rng);
    let x1 = vanilla_layer(g, x0, &w);
    let cfg = SkipNodeConfig::new(rho, Sampling::Uniform);
    let mask = cfg.sample_mask(g.degrees(), rng);
    let x2 = skipnode_layer(g, x0, &w, &mask);
    (g.distance(&x2).max(1e-300) / g.distance(&x1).max(1e-300)).ln()
}

/// Expected number of convolutions a node actually undergoes in an
/// `layers`-deep SkipNode model: each middle layer is skipped independently
/// with probability `rho`, so the effective exponent of `(sλ)^L` shrinks to
/// `L(1−ρ)` in expectation.
pub fn effective_depth(layers: usize, rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho in [0,1)");
    layers as f64 * (1.0 - rho)
}

/// The expected log over-smoothing coefficient after `layers` SkipNode
/// layers, combining both effects from Theorem 2: the shrunken exponent and
/// the loosened per-layer base `sλ + ρ(1−sλ)`.
pub fn expected_log_coefficient(layers: usize, s_lambda: f64, rho: f64) -> f64 {
    layers as f64 * theorem2_coefficient(s_lambda, rho).ln()
}

/// Non-negative random feature matrix (stand-in for a previous ReLU
/// layer's output, as the theory assumes `X ≥ 0`).
pub fn random_nonneg_features(n: usize, d: usize, rng: &mut SplitRng) -> Matrix {
    rng.uniform_matrix(n, d, 0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn er_graph(seed: u64) -> TheoryGraph {
        let mut rng = SplitRng::new(seed);
        TheoryGraph::erdos_renyi(60, 0.3, &mut rng)
    }

    #[test]
    fn lambda_is_in_unit_interval() {
        let g = er_graph(1);
        assert!(g.lambda() > 0.0 && g.lambda() < 1.0, "λ = {}", g.lambda());
    }

    #[test]
    fn controlled_weight_hits_target_singular_value() {
        let mut rng = SplitRng::new(2);
        for &s in &[0.2f64, 0.5, 1.0, 2.0] {
            let w = random_weight_with_singular_value(16, s, &mut rng);
            let got = max_singular_value(&w, 400);
            assert!((got - s).abs() < 1e-3, "target {s}, got {got}");
        }
    }

    #[test]
    fn vanilla_layer_contracts_distance_by_s_lambda() {
        // Theorem 1 of Oono & Suzuki: d_M(X₁) ≤ sλ d_M(X).
        let g = er_graph(3);
        let mut rng = SplitRng::new(4);
        let x = random_nonneg_features(g.nodes(), 8, &mut rng);
        for &s in &[0.3f64, 0.8] {
            let w = random_weight_with_singular_value(8, s, &mut rng);
            let x1 = vanilla_layer(&g, &x, &w);
            let bound = s * g.lambda() * g.distance(&x);
            assert!(
                g.distance(&x1) <= bound * (1.0 + 1e-4),
                "d(X1) = {} > bound {}",
                g.distance(&x1),
                bound
            );
        }
    }

    #[test]
    fn theorem2_expected_output_respects_upper_bound() {
        let g = er_graph(5);
        let mut rng = SplitRng::new(6);
        let x = random_nonneg_features(g.nodes(), 8, &mut rng);
        let s = 0.4;
        let rho = 0.5;
        let w = random_weight_with_singular_value(8, s, &mut rng);
        let x1 = vanilla_layer(&g, &x, &w);
        // E[X₂] = (1−ρ)X₁ + ρX.
        let ex2 = x1.zip(&x, |a, b| (1.0 - rho as f32) * a + rho as f32 * b);
        let coef = theorem2_coefficient(s * g.lambda(), rho);
        assert!(
            g.distance(&ex2) <= coef * g.distance(&x) * (1.0 + 1e-4),
            "d(E[X2]) = {} > {}",
            g.distance(&ex2),
            coef * g.distance(&x)
        );
        // And the SkipNode coefficient is strictly larger than vanilla's.
        assert!(coef > s * g.lambda());
    }

    #[test]
    fn theorem3_expected_output_respects_lower_bound() {
        let g = er_graph(7);
        let mut rng = SplitRng::new(8);
        let x = random_nonneg_features(g.nodes(), 8, &mut rng);
        let s = 0.2; // sλ small → condition easy to satisfy
        let rho = 0.6;
        let sl = s * g.lambda();
        assert!(
            rho * (1.0 / sl + 1.0) > 2.0,
            "test setup violates condition"
        );
        let w = random_weight_with_singular_value(8, s, &mut rng);
        let x1 = vanilla_layer(&g, &x, &w);
        let ex2 = x1.zip(&x, |a, b| (1.0 - rho as f32) * a + rho as f32 * b);
        let lower = theorem3_lower_bound(sl, rho) * g.distance(&x1);
        assert!(
            g.distance(&ex2) >= lower * (1.0 - 1e-4),
            "d(E[X2]) = {} < lower bound {}",
            g.distance(&ex2),
            lower
        );
        // When ρ(1/sλ+1) > 2 the SkipNode output is farther from M than X₁.
        assert!(g.distance(&ex2) > g.distance(&x1));
    }

    #[test]
    fn theorem3_min_rho_matches_remark_2_example() {
        // Remark 2: sλ ≈ 0.199 → ρ > 0.34 suffices (paper computes ≈0.332).
        let min_rho = theorem3_min_rho(0.199);
        assert!((min_rho - 0.332).abs() < 0.01, "min ρ = {min_rho}");
    }

    #[test]
    fn depth_series_vanilla_decays_and_skipnode_decays_slower() {
        let g = er_graph(9);
        let mut rng = SplitRng::new(10);
        let x0 = random_nonneg_features(g.nodes(), 8, &mut rng);
        let layers = 8;
        let runs = 10;
        let avg = |rho: f64, rng: &mut SplitRng| -> Vec<f64> {
            let mut acc = vec![0.0f64; layers];
            for _ in 0..runs {
                let series = depth_log_ratio_series(&g, &x0, 0.9, rho, layers, rng);
                for (a, v) in acc.iter_mut().zip(series) {
                    *a += v;
                }
            }
            acc.into_iter().map(|v| v / runs as f64).collect()
        };
        let vanilla = avg(0.0, &mut rng);
        let skip = avg(0.5, &mut rng);
        // Vanilla decays monotonically-ish and ends far below SkipNode.
        assert!(vanilla[layers - 1] < vanilla[0], "{vanilla:?}");
        assert!(
            skip[layers - 1] > vanilla[layers - 1] + 1.0,
            "skip {skip:?} vanilla {vanilla:?}"
        );
    }

    #[test]
    fn effective_depth_shrinks_linearly() {
        assert_eq!(effective_depth(10, 0.0), 10.0);
        assert_eq!(effective_depth(10, 0.5), 5.0);
        assert!((effective_depth(64, 0.9) - 6.4).abs() < 1e-12);
    }

    #[test]
    fn expected_log_coefficient_is_less_negative_with_skipnode() {
        let vanilla = expected_log_coefficient(16, 0.2, 0.0);
        let skip = expected_log_coefficient(16, 0.2, 0.5);
        assert!(vanilla < skip, "{vanilla} vs {skip}");
        assert!(skip < 0.0, "still contracts: {skip}");
    }

    #[test]
    fn one_layer_ratio_is_positive_and_grows_with_rho() {
        let g = er_graph(11);
        let mut rng = SplitRng::new(12);
        let x0 = random_nonneg_features(g.nodes(), 8, &mut rng);
        let mean_ratio = |rho: f64, rng: &mut SplitRng| -> f64 {
            (0..20)
                .map(|_| one_layer_log_ratio(&g, &x0, 0.5, rho, rng))
                .sum::<f64>()
                / 20.0
        };
        let low = mean_ratio(0.25, &mut rng);
        let high = mean_ratio(0.75, &mut rng);
        assert!(low > 0.0, "low {low}");
        assert!(high > low, "high {high} low {low}");
    }
}
