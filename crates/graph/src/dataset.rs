//! The dataset registry: nine synthetic stand-ins matched to Table 2 of the
//! paper.
//!
//! Every dataset is generated deterministically from `(name, seed)`. Two
//! scales are provided:
//! - [`Scale::Paper`] — node/edge/feature counts exactly as published;
//! - [`Scale::Bench`] — large graphs reduced (Pubmed, ogbn-arxiv, ogbl-ppa)
//!   and very wide feature matrices trimmed so the full experiment grid
//!   trains on a CPU in minutes. Reductions are documented per-spec and
//!   printed by the `table2` binary.

use crate::generators::{
    barabasi_albert_with_classes, class_feature_matrix, planted_partition, FeatureStyle,
    PartitionConfig,
};
use crate::graph::Graph;
use skipnode_tensor::SplitRng;

/// Identifier for one of the paper's nine datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Cora citation graph (homophilic).
    Cora,
    /// Citeseer citation graph (homophilic).
    Citeseer,
    /// Pubmed citation graph (homophilic).
    Pubmed,
    /// Chameleon Wikipedia graph (heterophilic, hubby).
    Chameleon,
    /// Cornell WebKB graph (tiny, heterophilic).
    Cornell,
    /// Texas WebKB graph (tiny, heterophilic).
    Texas,
    /// Wisconsin WebKB graph (tiny, heterophilic).
    Wisconsin,
    /// ogbn-arxiv large citation graph.
    OgbnArxiv,
    /// ogbl-ppa protein association graph (link prediction).
    OgblPpa,
}

/// All nine datasets in Table 2 order.
pub const ALL_DATASETS: [DatasetName; 9] = [
    DatasetName::Cora,
    DatasetName::Citeseer,
    DatasetName::Pubmed,
    DatasetName::Chameleon,
    DatasetName::Cornell,
    DatasetName::Texas,
    DatasetName::Wisconsin,
    DatasetName::OgbnArxiv,
    DatasetName::OgblPpa,
];

impl DatasetName {
    /// Lowercase canonical name (CLI argument form).
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetName::Cora => "cora",
            DatasetName::Citeseer => "citeseer",
            DatasetName::Pubmed => "pubmed",
            DatasetName::Chameleon => "chameleon",
            DatasetName::Cornell => "cornell",
            DatasetName::Texas => "texas",
            DatasetName::Wisconsin => "wisconsin",
            DatasetName::OgbnArxiv => "ogbn-arxiv",
            DatasetName::OgblPpa => "ogbl-ppa",
        }
    }

    /// Parse from the CLI form.
    pub fn parse(s: &str) -> Option<Self> {
        ALL_DATASETS.iter().copied().find(|d| d.as_str() == s)
    }
}

/// Generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Statistics exactly as published in Table 2.
    Paper,
    /// CPU-budget scale: large graphs shrunk, wide features trimmed.
    Bench,
}

/// Topology family for a spec.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Topology {
    /// Degree-corrected planted partition with the given degree power.
    Partition { power: f64 },
    /// Class-biased preferential attachment with the given per-node degree.
    /// Kept as an alternative large-graph topology (hub-heavy, expander
    /// spectrum); the shipped arxiv substitute uses `Ring` for spectral
    /// fidelity instead.
    #[allow(dead_code)]
    Preferential { attach: usize },
    /// Small-world ring of class blocks (citation graphs): slow mixing,
    /// `λ ≈ 0.999` like real Planetoid graphs. Homophily is set by the
    /// block length.
    Ring { block: usize, window: usize },
}

/// Full recipe for generating one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which paper dataset this substitutes.
    pub name: DatasetName,
    /// Node count.
    pub nodes: usize,
    /// Target undirected edge count.
    pub edges: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Class count.
    pub classes: usize,
    /// Target edge homophily.
    pub homophily: f64,
    feature_style: FeatureStyle,
    topology: Topology,
}

impl DatasetSpec {
    /// The generation recipe for `(name, scale)`.
    pub fn of(name: DatasetName, scale: Scale) -> DatasetSpec {
        use DatasetName::*;
        let bow = |active: usize, confusion: f64| FeatureStyle::BinaryBagOfWords {
            active,
            fidelity: 0.85,
            confusion,
        };
        let paper = match name {
            Cora => DatasetSpec {
                name,
                nodes: 2708,
                edges: 5429,
                features: 1433,
                classes: 7,
                homophily: 0.81,
                feature_style: bow(18, 0.20),
                topology: Topology::Ring {
                    block: 15,
                    window: 12,
                },
            },
            Citeseer => DatasetSpec {
                name,
                nodes: 3327,
                edges: 4732,
                features: 3703,
                classes: 6,
                homophily: 0.74,
                feature_style: bow(22, 0.30),
                topology: Topology::Ring {
                    block: 9,
                    window: 10,
                },
            },
            Pubmed => DatasetSpec {
                name,
                nodes: 19717,
                edges: 44338,
                features: 500,
                classes: 3,
                homophily: 0.80,
                feature_style: FeatureStyle::TfidfGaussian { separation: 0.036 },
                topology: Topology::Ring {
                    block: 14,
                    window: 12,
                },
            },
            Chameleon => DatasetSpec {
                name,
                nodes: 2277,
                edges: 36101,
                features: 2325,
                classes: 5,
                homophily: 0.23,
                feature_style: bow(20, 0.45),
                topology: Topology::Partition { power: 0.8 },
            },
            Cornell => DatasetSpec {
                name,
                nodes: 183,
                edges: 295,
                features: 1703,
                classes: 5,
                homophily: 0.13,
                feature_style: bow(30, 0.20),
                topology: Topology::Partition { power: 0.2 },
            },
            Texas => DatasetSpec {
                name,
                nodes: 183,
                edges: 309,
                features: 1703,
                classes: 5,
                homophily: 0.11,
                feature_style: bow(30, 0.20),
                topology: Topology::Partition { power: 0.2 },
            },
            Wisconsin => DatasetSpec {
                name,
                nodes: 251,
                edges: 499,
                features: 1703,
                classes: 5,
                homophily: 0.20,
                feature_style: bow(30, 0.20),
                topology: Topology::Partition { power: 0.2 },
            },
            OgbnArxiv => DatasetSpec {
                name,
                nodes: 169_343,
                edges: 1_166_243,
                features: 128,
                classes: 40,
                homophily: 0.65,
                feature_style: FeatureStyle::TfidfGaussian { separation: 0.3 },
                // Ring-of-blocks rather than preferential attachment: like
                // the citation graphs, real ogbn-arxiv mixes slowly
                // (λ ≈ 1); a BA expander substitute collapses deep GCNs at
                // chance level regardless of strategy. Hub-heaviness is
                // sacrificed for spectral fidelity (the BA generator
                // remains available in `generators`).
                topology: Topology::Ring {
                    block: 11,
                    window: 12,
                },
            },
            OgblPpa => DatasetSpec {
                name,
                nodes: 576_289,
                edges: 30_326_273,
                features: 58,
                classes: 58,
                homophily: 0.55,
                feature_style: FeatureStyle::OneHotGroup,
                topology: Topology::Partition { power: 0.5 },
            },
        };
        match scale {
            Scale::Paper => paper,
            Scale::Bench => paper.bench_scaled(),
        }
    }

    /// CPU-budget reductions (documented; printed by the `table2` binary).
    fn bench_scaled(mut self) -> DatasetSpec {
        use DatasetName::*;
        match self.name {
            Pubmed => {
                self.nodes = 6000;
                self.edges = 13_500;
            }
            OgbnArxiv => {
                self.nodes = 12_000;
                self.edges = 80_000;
            }
            OgblPpa => {
                self.nodes = 6000;
                self.edges = 90_000;
            }
            Chameleon => {
                self.features = 800;
            }
            Citeseer => {
                self.features = 1200;
            }
            _ => {}
        }
        // Feature width dominates the first-layer GEMM; cap it everywhere.
        self.features = self.features.min(1500);
        self
    }

    /// Generate the graph deterministically from this spec and a seed.
    pub fn generate(&self, seed: u64) -> Graph {
        let mut rng = SplitRng::new(seed ^ fxhash(self.name.as_str()));
        let mut topo_rng = rng.split();
        let mut feat_rng = rng.split();
        let (edges, labels) = match self.topology {
            Topology::Ring { block, window } => {
                let cfg = crate::generators::RingConfig {
                    n: self.nodes,
                    m: self.edges,
                    classes: self.classes,
                    block,
                    rewire: 0.2,
                    window,
                };
                crate::generators::ring_of_blocks(&cfg, &mut topo_rng)
            }
            Topology::Partition { power } => {
                let cfg = PartitionConfig {
                    n: self.nodes,
                    m: self.edges,
                    classes: self.classes,
                    homophily: self.homophily,
                    power,
                };
                planted_partition(&cfg, &mut topo_rng)
            }
            Topology::Preferential { attach } => barabasi_albert_with_classes(
                self.nodes,
                attach,
                self.classes,
                self.homophily,
                &mut topo_rng,
            ),
        };
        let features = class_feature_matrix(
            &labels,
            self.classes,
            self.features,
            self.feature_style,
            &mut feat_rng,
        );
        Graph::new(self.nodes, edges, features, labels, self.classes)
    }
}

/// Load a dataset by name at the given scale, deterministically from `seed`.
pub fn load(name: DatasetName, scale: Scale, seed: u64) -> Graph {
    DatasetSpec::of(name, scale).generate(seed)
}

/// Tiny stable string hash so each dataset gets a distinct RNG stream from
/// the same user seed.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_matches_published_statistics() {
        let g = load(DatasetName::Cora, Scale::Paper, 7);
        assert_eq!(g.num_nodes(), 2708);
        assert_eq!(g.feature_dim(), 1433);
        assert_eq!(g.num_classes(), 7);
        let m = g.num_edges() as f64;
        // The ring generator retries rewiring collisions, so the realized
        // count tracks the 5429-edge budget closely.
        assert!((m - 5429.0).abs() < 5429.0 * 0.02, "edges {m}");
        let h = g.edge_homophily();
        assert!((h - 0.81).abs() < 0.06, "homophily {h}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load(DatasetName::Cornell, Scale::Paper, 3);
        let b = load(DatasetName::Cornell, Scale::Paper, 3);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = load(DatasetName::Cornell, Scale::Paper, 3);
        let b = load(DatasetName::Cornell, Scale::Paper, 4);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn heterophilic_graphs_have_low_homophily() {
        for name in [
            DatasetName::Cornell,
            DatasetName::Texas,
            DatasetName::Wisconsin,
        ] {
            let g = load(name, Scale::Paper, 1);
            assert!(
                g.edge_homophily() < 0.35,
                "{name:?}: {}",
                g.edge_homophily()
            );
        }
    }

    #[test]
    fn bench_scale_reduces_large_graphs() {
        let p = DatasetSpec::of(DatasetName::OgbnArxiv, Scale::Paper);
        let b = DatasetSpec::of(DatasetName::OgbnArxiv, Scale::Bench);
        assert!(b.nodes < p.nodes / 4);
        let g = b.generate(7);
        assert_eq!(g.num_nodes(), 12_000);
        assert_eq!(g.num_classes(), 40);
        // The substitute trades BA hubs for citation-like slow mixing;
        // check the homophily dial instead of the degree tail.
        let h = g.edge_homophily();
        assert!((h - 0.65).abs() < 0.08, "homophily {h}");
    }

    #[test]
    fn name_parse_round_trips() {
        for d in ALL_DATASETS {
            assert_eq!(DatasetName::parse(d.as_str()), Some(d));
        }
        assert_eq!(DatasetName::parse("nope"), None);
    }

    #[test]
    fn all_bench_datasets_generate_quickly_and_validly() {
        for name in ALL_DATASETS {
            let g = load(name, Scale::Bench, 2);
            assert!(g.num_nodes() > 0);
            assert!(g.num_edges() > 0);
            assert!(g.features().all_finite());
        }
    }
}
