//! Train/validation/test splits matching the paper's protocols.

use crate::graph::Graph;
use skipnode_tensor::SplitRng;

/// A node-classification split.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Split {
    /// Training node indices.
    pub train: Vec<usize>,
    /// Validation node indices.
    pub val: Vec<usize>,
    /// Test node indices.
    pub test: Vec<usize>,
}

impl Split {
    /// Sanity-check that the split partitions disjoint subsets of `[0, n)`.
    pub fn validate(&self, n: usize) {
        let mut seen = vec![false; n];
        for set in [&self.train, &self.val, &self.test] {
            for &i in set {
                assert!(i < n, "split index {i} out of range");
                assert!(!seen[i], "split index {i} appears twice");
                seen[i] = true;
            }
        }
        assert!(!self.train.is_empty(), "empty training set");
    }
}

/// The Planetoid "public split" protocol [53]: 20 labeled nodes per class
/// for training, the next 500 nodes for validation, the next 1000 for
/// testing (clamped for small graphs).
pub fn semi_supervised_split(g: &Graph, rng: &mut SplitRng) -> Split {
    let n = g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let per_class = 20usize;
    let mut counts = vec![0usize; g.num_classes()];
    let mut train = Vec::with_capacity(per_class * g.num_classes());
    let mut rest = Vec::with_capacity(n);
    for &i in &order {
        let c = g.labels()[i];
        if counts[c] < per_class {
            counts[c] += 1;
            train.push(i);
        } else {
            rest.push(i);
        }
    }
    let val_n = 500.min(rest.len() / 2);
    let test_n = 1000.min(rest.len() - val_n);
    let val = rest[..val_n].to_vec();
    let test = rest[val_n..val_n + test_n].to_vec();
    Split { train, val, test }
}

/// The full-supervised protocol: random 60% / 20% / 20% split.
pub fn full_supervised_split(g: &Graph, rng: &mut SplitRng) -> Split {
    let n = g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let train_n = n * 60 / 100;
    let val_n = n * 20 / 100;
    Split {
        train: order[..train_n].to_vec(),
        val: order[train_n..train_n + val_n].to_vec(),
        test: order[train_n + val_n..].to_vec(),
    }
}

/// A link-prediction split over the graph's edges plus sampled negatives.
#[derive(Debug, Clone)]
pub struct LinkSplit {
    /// Edges visible to the encoder (message passing) — the training graph.
    pub message_edges: Vec<(usize, usize)>,
    /// Positive training edges (supervision; equals `message_edges` here,
    /// following common OGB practice for GCN baselines).
    pub train_pos: Vec<(usize, usize)>,
    /// Held-out positive validation edges.
    pub val_pos: Vec<(usize, usize)>,
    /// Held-out positive test edges.
    pub test_pos: Vec<(usize, usize)>,
    /// Shared negative edges for ranking evaluation (Hits@K protocol).
    pub eval_neg: Vec<(usize, usize)>,
}

/// Split edges 80/10/10 into message/val/test and sample `neg_count`
/// negatives (non-edges) for Hits@K evaluation.
pub fn link_split(g: &Graph, neg_count: usize, rng: &mut SplitRng) -> LinkSplit {
    let mut edges = g.edges().to_vec();
    rng.shuffle(&mut edges);
    let m = edges.len();
    let test_n = m / 10;
    let val_n = m / 10;
    let test_pos = edges[..test_n].to_vec();
    let val_pos = edges[test_n..test_n + val_n].to_vec();
    let message_edges = edges[test_n + val_n..].to_vec();

    let existing: std::collections::HashSet<(usize, usize)> = g.edges().iter().copied().collect();
    let n = g.num_nodes();
    let mut eval_neg = Vec::with_capacity(neg_count);
    let mut guard = 0;
    while eval_neg.len() < neg_count && guard < neg_count * 100 {
        guard += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !existing.contains(&key) {
            eval_neg.push(key);
        }
    }
    LinkSplit {
        train_pos: message_edges.clone(),
        message_edges,
        val_pos,
        test_pos,
        eval_neg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{load, DatasetName, Scale};

    fn cora() -> Graph {
        load(DatasetName::Cora, Scale::Bench, 7)
    }

    #[test]
    fn semi_split_has_twenty_per_class() {
        let g = cora();
        let mut rng = SplitRng::new(1);
        let s = semi_supervised_split(&g, &mut rng);
        s.validate(g.num_nodes());
        let mut counts = vec![0usize; g.num_classes()];
        for &i in &s.train {
            counts[g.labels()[i]] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
        assert_eq!(s.val.len(), 500);
        assert_eq!(s.test.len(), 1000);
    }

    #[test]
    fn full_split_proportions() {
        let g = cora();
        let mut rng = SplitRng::new(2);
        let s = full_supervised_split(&g, &mut rng);
        s.validate(g.num_nodes());
        let n = g.num_nodes();
        assert_eq!(s.train.len(), n * 60 / 100);
        assert_eq!(s.val.len(), n * 20 / 100);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), n);
    }

    #[test]
    fn splits_differ_across_seeds() {
        let g = cora();
        let s1 = full_supervised_split(&g, &mut SplitRng::new(1));
        let s2 = full_supervised_split(&g, &mut SplitRng::new(2));
        assert_ne!(s1.train, s2.train);
    }

    #[test]
    fn link_split_partitions_edges() {
        let g = cora();
        let mut rng = SplitRng::new(3);
        let ls = link_split(&g, 2000, &mut rng);
        let m = g.num_edges();
        assert_eq!(
            ls.message_edges.len() + ls.val_pos.len() + ls.test_pos.len(),
            m
        );
        assert_eq!(ls.eval_neg.len(), 2000);
        let edge_set: std::collections::HashSet<_> = g.edges().iter().copied().collect();
        assert!(ls.eval_neg.iter().all(|e| !edge_set.contains(e)));
        assert!(ls.test_pos.iter().all(|e| edge_set.contains(e)));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn validate_catches_overlap() {
        let s = Split {
            train: vec![0, 1],
            val: vec![1],
            test: vec![],
        };
        s.validate(3);
    }
}
