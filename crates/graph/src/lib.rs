#![warn(missing_docs)]

//! Graph data substrate: datatypes, synthetic dataset generators matched to
//! the SkipNode paper's benchmarks (Table 2), and train/val/test splits.
//!
//! The paper evaluates on Planetoid citation graphs (Cora, Citeseer,
//! Pubmed), heterophilic web graphs (Chameleon, Cornell, Texas, Wisconsin),
//! and OGB graphs (ogbn-arxiv, ogbl-ppa). Those are external downloads, so
//! this crate substitutes **seeded synthetic generators matched to the
//! published statistics** — node/edge counts, feature dimensionality, class
//! count, and homophily level — which preserve the over-smoothing dynamics
//! the paper studies (`λ` close to 1, class structure recoverable from
//! features + topology). See DESIGN.md §3 for the substitution table.

mod batch;
mod centrality;
mod dataset;
mod generators;
mod graph;
mod large;
mod partition;
mod preprocess;
mod splits;
mod stream;
mod update;

pub use batch::{
    graph_classification_dataset, graph_level_split, GraphBatch, GraphClassConfig, GraphClassSet,
};
pub use centrality::pagerank;
pub use dataset::{load, DatasetName, DatasetSpec, Scale, ALL_DATASETS};
pub use generators::{
    barabasi_albert_with_classes, class_feature_matrix, class_feature_matrix_from, erdos_renyi,
    partition_graph, planted_partition, ring_of_blocks, FeatureStyle, PartitionConfig, RingConfig,
};
pub use graph::Graph;
pub use large::LargeGraph;
pub use partition::{partition_nodes, ShardSet, SubgraphShard};
pub use preprocess::{reorder_graph, row_normalize, standardize, GraphReorder, Reordering};
pub use splits::{full_supervised_split, link_split, semi_supervised_split, LinkSplit, Split};
pub use stream::{
    assemble_large_graph, streamed_ba_graph, streamed_partition_graph, streamed_ring_graph,
    BaStream, PlantedPartitionStream, RingOfBlocksStream, StreamedGraphStats,
};
pub use update::{GraphUpdate, UpdateStream};
