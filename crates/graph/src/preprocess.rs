//! Feature preprocessing, mirroring the Planetoid pipeline conventions.

use skipnode_tensor::Matrix;

/// Row-normalize features to unit L1 norm (the standard Planetoid
/// preprocessing for bag-of-words features). All-zero rows are left as-is.
pub fn row_normalize(features: &Matrix) -> Matrix {
    let mut out = features.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let sum: f64 = row.iter().map(|&x| x.abs() as f64).sum();
        if sum > 0.0 {
            let inv = (1.0 / sum) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
    out
}

/// Standardize each feature column to zero mean / unit variance
/// (constant columns become zero).
pub fn standardize(features: &Matrix) -> Matrix {
    let (n, d) = features.shape();
    let mut out = features.clone();
    if n == 0 {
        return out;
    }
    for c in 0..d {
        let mut mean = 0.0f64;
        for r in 0..n {
            mean += features.get(r, c) as f64;
        }
        mean /= n as f64;
        let mut var = 0.0f64;
        for r in 0..n {
            var += (features.get(r, c) as f64 - mean).powi(2);
        }
        var /= n as f64;
        let std = var.sqrt();
        for r in 0..n {
            let v = if std > 1e-12 {
                ((features.get(r, c) as f64 - mean) / std) as f32
            } else {
                0.0
            };
            out.set(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_normalize_gives_unit_l1_rows() {
        let x = Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 0.0], &[-2.0, 2.0]]);
        let n = row_normalize(&x);
        assert_eq!(n.row(0), &[0.25, 0.75]);
        assert_eq!(n.row(1), &[0.0, 0.0]); // zero rows untouched
        let l1: f32 = n.row(2).iter().map(|v| v.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn standardize_columns() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 5.0]]);
        let s = standardize(&x);
        // Column 0: mean 2, std 1 → [-1, 1]; column 1 constant → zeros.
        assert!((s.get(0, 0) + 1.0).abs() < 1e-6);
        assert!((s.get(1, 0) - 1.0).abs() < 1e-6);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 1), 0.0);
    }

    #[test]
    fn standardize_is_idempotent_up_to_float_noise() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.0, 4.0]]);
        let once = standardize(&x);
        let twice = standardize(&once);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
