//! Feature preprocessing, mirroring the Planetoid pipeline conventions,
//! plus the cache-locality node-reordering pass.
//!
//! # Cache-locality reordering
//!
//! SpMM row accumulation gathers `x.row(c)` for every neighbor `c`; when
//! neighbor ids are scattered, each gather is a cache miss. Renumbering
//! nodes so neighbors sit close together (reverse Cuthill–McKee) or so
//! hot hub rows share cache lines (degree sort) makes the same product
//! walk memory mostly forward. [`reorder_graph`] applies a permutation to
//! the whole dataset — edges, features, labels — and returns the
//! [`Reordering`] needed to map splits in and un-permute outputs.
//!
//! The permuted graph remembers its [`Reordering`] (see
//! [`Graph::node_order`]), which strategy samplers use to draw per-node
//! masks in *logical* (original-id) order: a reordered training run then
//! consumes the identical RNG stream and makes the identical per-node
//! decisions as the unreordered run, so loss curves match up to the float
//! reassociation of the permuted accumulations.

use crate::graph::Graph;
use crate::splits::Split;
use skipnode_tensor::Matrix;

/// Row-normalize features to unit L1 norm (the standard Planetoid
/// preprocessing for bag-of-words features). All-zero rows are left as-is.
pub fn row_normalize(features: &Matrix) -> Matrix {
    let mut out = features.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let sum: f64 = row.iter().map(|&x| x.abs() as f64).sum();
        if sum > 0.0 {
            let inv = (1.0 / sum) as f32;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
    out
}

/// Standardize each feature column to zero mean / unit variance
/// (constant columns become zero).
pub fn standardize(features: &Matrix) -> Matrix {
    let (n, d) = features.shape();
    let mut out = features.clone();
    if n == 0 {
        return out;
    }
    for c in 0..d {
        let mut mean = 0.0f64;
        for r in 0..n {
            mean += features.get(r, c) as f64;
        }
        mean /= n as f64;
        let mut var = 0.0f64;
        for r in 0..n {
            var += (features.get(r, c) as f64 - mean).powi(2);
        }
        var /= n as f64;
        let std = var.sqrt();
        for r in 0..n {
            let v = if std > 1e-12 {
                ((features.get(r, c) as f64 - mean) / std) as f32
            } else {
                0.0
            };
            out.set(r, c, v);
        }
    }
    out
}

/// Which cache-locality reordering [`reorder_graph`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphReorder {
    /// Keep the original node numbering (identity permutation).
    #[default]
    None,
    /// Renumber by descending degree (stable): hub rows — touched by most
    /// products — become contiguous at the top of every operand.
    DegreeSort,
    /// Reverse Cuthill–McKee: per-component BFS from a minimum-degree
    /// seed, neighbors visited in ascending-degree order, whole order
    /// reversed. Minimizes adjacency bandwidth, so a row's neighbor
    /// gathers land near each other.
    Rcm,
}

impl GraphReorder {
    /// Stable label for configs and bench metadata.
    pub fn name(&self) -> &'static str {
        match self {
            GraphReorder::None => "none",
            GraphReorder::DegreeSort => "degree_sort",
            GraphReorder::Rcm => "rcm",
        }
    }
}

/// A node renumbering: `perm[new] = old` and `inv[old] = new`.
///
/// Produced by [`reorder_graph`] and carried by the permuted
/// [`Graph`] so samplers can stay order-covariant; also the handle for
/// mapping splits into the permuted id space and un-permuting row-indexed
/// outputs back out of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    /// `perm[new] = old`: the original id living at each new position.
    pub perm: Vec<usize>,
    /// `inv[old] = new`: where each original id went.
    pub inv: Vec<usize>,
}

impl Reordering {
    /// The identity reordering on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Self {
            inv: perm.clone(),
            perm,
        }
    }

    /// Build from a `perm[new] = old` permutation.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn from_perm(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && inv[old] == usize::MAX, "not a permutation");
            inv[old] = new;
        }
        Self { perm, inv }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the reordering is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Map original node ids into the permuted space (order preserved, so
    /// anything iterating the result visits the same logical nodes in the
    /// same sequence as before).
    pub fn map_nodes(&self, nodes: &[usize]) -> Vec<usize> {
        nodes.iter().map(|&o| self.inv[o]).collect()
    }

    /// Map a train/val/test split into the permuted space.
    pub fn map_split(&self, split: &Split) -> Split {
        Split {
            train: self.map_nodes(&split.train),
            val: self.map_nodes(&split.val),
            test: self.map_nodes(&split.test),
        }
    }

    /// Un-permute a row-per-node matrix (logits, embeddings) back to the
    /// original node order: row `j` of the permuted output becomes row
    /// `perm[j]` of the result.
    pub fn restore_rows(&self, permuted: &Matrix) -> Matrix {
        assert_eq!(permuted.rows(), self.perm.len(), "row count != node count");
        let mut out = Matrix::zeros(permuted.rows(), permuted.cols());
        for (j, &old) in self.perm.iter().enumerate() {
            out.row_mut(old).copy_from_slice(permuted.row(j));
        }
        out
    }
}

fn degree_sort_perm(g: &Graph) -> Vec<usize> {
    let deg = g.degrees();
    let mut order: Vec<usize> = (0..g.num_nodes()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(deg[v]));
    order
}

fn rcm_perm(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let deg = g.degrees();
    let mut adj = g.adjacency_list();
    for nbrs in &mut adj {
        nbrs.sort_by_key(|&v| (deg[v], v));
    }
    // Component seeds: minimum degree first (classic CM heuristic).
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| (deg[v], v));
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for seed in seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Renumber `g`'s nodes for cache locality: permute the edge list,
/// feature rows, and labels, and remember the [`Reordering`] on the
/// returned graph so masks stay order-covariant (see the module docs).
///
/// Splits must be mapped with [`Reordering::map_split`]; row-indexed
/// outputs come back to the original order via
/// [`Reordering::restore_rows`]. [`GraphReorder::None`] returns an
/// unpermuted copy with an identity reordering (and no `node_order`
/// attached — sampling then takes the plain path).
pub fn reorder_graph(g: &Graph, mode: GraphReorder) -> (Graph, Reordering) {
    let n = g.num_nodes();
    if mode == GraphReorder::None {
        return (g.clone(), Reordering::identity(n));
    }
    let perm = match mode {
        GraphReorder::None => unreachable!(),
        GraphReorder::DegreeSort => degree_sort_perm(g),
        GraphReorder::Rcm => rcm_perm(g),
    };
    let ord = Reordering::from_perm(perm);
    let edges: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .map(|&(u, v)| (ord.inv[u], ord.inv[v]))
        .collect();
    let features = g.features().select_rows(&ord.perm);
    let labels: Vec<usize> = ord.perm.iter().map(|&o| g.labels()[o]).collect();
    let graph =
        Graph::new(n, edges, features, labels, g.num_classes()).with_node_order(ord.clone());
    (graph, ord)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_normalize_gives_unit_l1_rows() {
        let x = Matrix::from_rows(&[&[1.0, 3.0], &[0.0, 0.0], &[-2.0, 2.0]]);
        let n = row_normalize(&x);
        assert_eq!(n.row(0), &[0.25, 0.75]);
        assert_eq!(n.row(1), &[0.0, 0.0]); // zero rows untouched
        let l1: f32 = n.row(2).iter().map(|v| v.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn standardize_columns() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 5.0]]);
        let s = standardize(&x);
        // Column 0: mean 2, std 1 → [-1, 1]; column 1 constant → zeros.
        assert!((s.get(0, 0) + 1.0).abs() < 1e-6);
        assert!((s.get(1, 0) - 1.0).abs() < 1e-6);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 1), 0.0);
    }

    #[test]
    fn standardize_is_idempotent_up_to_float_noise() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.0, 4.0]]);
        let once = standardize(&x);
        let twice = standardize(&once);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    /// Path + a pendant: degrees [1, 2, 2, 2, 1, 1] give RCM and degree
    /// sort something to chew on.
    fn sample_graph() -> Graph {
        let features = Matrix::from_rows(&[
            &[0.0, 10.0],
            &[1.0, 11.0],
            &[2.0, 12.0],
            &[3.0, 13.0],
            &[4.0, 14.0],
            &[5.0, 15.0],
        ]);
        Graph::new(
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)],
            features,
            vec![0, 1, 0, 1, 0, 1],
            2,
        )
    }

    fn check_isomorphic(g: &Graph, rg: &Graph, ord: &Reordering) {
        assert_eq!(rg.num_nodes(), g.num_nodes());
        assert_eq!(rg.num_edges(), g.num_edges());
        // Edge sets correspond under the permutation.
        let mut mapped: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (ord.inv[u], ord.inv[v]);
                (a.min(b), a.max(b))
            })
            .collect();
        mapped.sort_unstable();
        let mut got: Vec<(usize, usize)> = rg.edges().to_vec();
        got.sort_unstable();
        assert_eq!(mapped, got);
        // Features and labels moved with their nodes.
        for new in 0..rg.num_nodes() {
            let old = ord.perm[new];
            assert_eq!(rg.features().row(new), g.features().row(old));
            assert_eq!(rg.labels()[new], g.labels()[old]);
        }
    }

    #[test]
    fn reorderings_are_isomorphic_relabelings() {
        let g = sample_graph();
        for mode in [GraphReorder::DegreeSort, GraphReorder::Rcm] {
            let (rg, ord) = reorder_graph(&g, mode);
            check_isomorphic(&g, &rg, &ord);
            assert_eq!(
                rg.node_order().expect("reordered graph keeps its order"),
                &ord
            );
        }
    }

    #[test]
    fn none_mode_is_identity_without_node_order() {
        let g = sample_graph();
        let (rg, ord) = reorder_graph(&g, GraphReorder::None);
        assert_eq!(ord, Reordering::identity(6));
        assert_eq!(rg.edges(), g.edges());
        assert!(rg.node_order().is_none());
    }

    #[test]
    fn degree_sort_is_monotone_in_degree() {
        let g = sample_graph();
        let (rg, _) = reorder_graph(&g, GraphReorder::DegreeSort);
        let deg = rg.degrees();
        assert!(deg.windows(2).all(|w| w[0] >= w[1]), "{deg:?}");
    }

    #[test]
    fn rcm_shrinks_bandwidth_on_a_shuffled_path() {
        // A path graph numbered adversarially: bandwidth n-1 before,
        // should be ~1 after RCM.
        let n = 64;
        let shuffled: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
        let edges: Vec<(usize, usize)> =
            (0..n - 1).map(|i| (shuffled[i], shuffled[i + 1])).collect();
        let g = Graph::new(n, edges, Matrix::zeros(n, 1), vec![0; n], 1);
        let bandwidth = |g: &Graph| g.edges().iter().map(|&(u, v)| u.abs_diff(v)).max().unwrap();
        let before = bandwidth(&g);
        let (rg, _) = reorder_graph(&g, GraphReorder::Rcm);
        let after = bandwidth(&rg);
        assert!(after < before / 4, "bandwidth {before} -> {after}");
        assert_eq!(after, 1, "a path renumbers to its natural order");
    }

    #[test]
    fn split_mapping_and_row_restoration_round_trip() {
        let g = sample_graph();
        let (rg, ord) = reorder_graph(&g, GraphReorder::Rcm);
        let split = Split {
            train: vec![0, 2, 4],
            val: vec![1],
            test: vec![3, 5],
        };
        let mapped = ord.map_split(&split);
        for (orig, new) in split.train.iter().zip(&mapped.train) {
            assert_eq!(ord.perm[*new], *orig);
            // Same logical node: labels agree across the two id spaces.
            assert_eq!(rg.labels()[*new], g.labels()[*orig]);
        }
        // Outputs computed in permuted space restore to original order.
        let permuted_out = rg.features().clone();
        let restored = ord.restore_rows(&permuted_out);
        for r in 0..g.num_nodes() {
            assert_eq!(restored.row(r), g.features().row(r));
        }
    }
}
