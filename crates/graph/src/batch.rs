//! Packed multi-graph batches for graph classification.
//!
//! A [`GraphBatch`] is the block-diagonal union of several [`Graph`]s: node
//! features and labels are concatenated row-wise, edges are offset-shifted
//! into a single index space, and a [`SegmentTable`] records which row
//! range belongs to which graph. Because GCN normalization is local to a
//! connected component, the normalized adjacency of the union is exactly
//! the block-diagonal of the per-graph normalized adjacencies — so one
//! SpMM over the packed matrix computes every graph's convolution at once
//! without ever mixing rows across graphs.
//!
//! The packed adjacency is built through the PR 7 streamed constructor
//! ([`stream_adjacency`]), feeding offset-shifted edge chunks graph by
//! graph; a 1-graph pack therefore produces a byte-identical `CsrMatrix`
//! to [`Graph::gcn_adjacency`] (the streamed and COO paths are pinned
//! bitwise against each other in the sparse crate).

use crate::generators::erdos_renyi;
use crate::graph::Graph;
use crate::splits::Split;
use skipnode_sparse::{gcn_adjacency_from_structure, stream_adjacency, CsrMatrix, EdgeChunkSource};
use skipnode_tensor::{Matrix, SegmentTable, SplitRng};
use std::sync::{Arc, OnceLock};

/// Undirected edges per chunk fed to the streamed adjacency builder.
const PACK_CHUNK_EDGES: usize = 1 << 14;

/// Block-diagonal union of several graphs plus per-graph labels.
pub struct GraphBatch {
    seg: Arc<SegmentTable>,
    /// Offset-shifted canonical undirected edges of the union.
    edges: Vec<(usize, usize)>,
    features: Arc<Matrix>,
    node_labels: Vec<usize>,
    node_classes: usize,
    graph_labels: Vec<usize>,
    graph_classes: usize,
    degrees: Vec<usize>,
    gcn_adj: OnceLock<Arc<CsrMatrix>>,
}

/// Feeds a packed batch's shifted edge list to [`stream_adjacency`] in
/// bounded chunks.
struct PackedEdgeSource<'a> {
    n: usize,
    edges: &'a [(usize, usize)],
    pos: usize,
}

impl EdgeChunkSource for PackedEdgeSource<'_> {
    fn nodes(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn next_chunk(&mut self, out: &mut Vec<(u32, u32)>) -> bool {
        out.clear();
        if self.pos >= self.edges.len() {
            return false;
        }
        let hi = (self.pos + PACK_CHUNK_EDGES).min(self.edges.len());
        out.extend(
            self.edges[self.pos..hi]
                .iter()
                .map(|&(u, v)| (u as u32, v as u32)),
        );
        self.pos = hi;
        true
    }

    fn state_bytes(&self) -> usize {
        0
    }
}

impl GraphBatch {
    /// Pack `graphs` into one block-diagonal batch. `graph_labels[i]` is
    /// the class of `graphs[i]`; all graphs must share feature dimension
    /// and node-label space. Empty and single-node graphs are allowed.
    pub fn pack(graphs: &[&Graph], graph_labels: &[usize], graph_classes: usize) -> Self {
        assert!(!graphs.is_empty(), "cannot pack an empty batch");
        assert_eq!(graphs.len(), graph_labels.len(), "one label per graph");
        for &l in graph_labels {
            assert!(l < graph_classes, "graph label {l} >= {graph_classes}");
        }
        let dim = graphs[0].feature_dim();
        let node_classes = graphs[0].num_classes();
        let lens: Vec<usize> = graphs.iter().map(|g| g.num_nodes()).collect();
        let seg = Arc::new(SegmentTable::from_lens(&lens));
        let total = seg.total_rows();

        let mut features = Matrix::zeros(total, dim);
        let mut node_labels = Vec::with_capacity(total);
        let mut degrees = Vec::with_capacity(total);
        let mut edges = Vec::new();
        for (gi, g) in graphs.iter().enumerate() {
            assert_eq!(g.feature_dim(), dim, "feature dim mismatch in batch");
            assert_eq!(g.num_classes(), node_classes, "node-class mismatch");
            let off = seg.range(gi).start;
            for r in 0..g.num_nodes() {
                features
                    .row_mut(off + r)
                    .copy_from_slice(g.features().row(r));
            }
            node_labels.extend_from_slice(g.labels());
            degrees.extend_from_slice(&g.degrees());
            // Graph canonicalizes edges on construction (u < v, sorted,
            // deduped); a uniform shift preserves that ordering, so the
            // union list is canonical per block and globally sorted.
            edges.extend(g.edges().iter().map(|&(u, v)| (u + off, v + off)));
        }

        Self {
            seg,
            edges,
            features: Arc::new(features),
            node_labels,
            node_classes,
            graph_labels: graph_labels.to_vec(),
            graph_classes,
            degrees,
            gcn_adj: OnceLock::new(),
        }
    }

    /// Pack a single graph (the identity-path special case).
    pub fn pack_one(g: &Graph, label: usize, graph_classes: usize) -> Self {
        Self::pack(&[g], &[label], graph_classes)
    }

    /// Segment table mapping rows to graphs.
    pub fn segments(&self) -> &Arc<SegmentTable> {
        &self.seg
    }

    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.seg.num_segments()
    }

    /// Total packed node count.
    pub fn num_nodes(&self) -> usize {
        self.seg.total_rows()
    }

    /// Shared packed feature matrix.
    pub fn features_arc(&self) -> Arc<Matrix> {
        Arc::clone(&self.features)
    }

    /// Concatenated per-node labels (graph order).
    pub fn node_labels(&self) -> &[usize] {
        &self.node_labels
    }

    /// Node-label space size (shared by all packed graphs).
    pub fn node_classes(&self) -> usize {
        self.node_classes
    }

    /// Per-graph class labels.
    pub fn graph_labels(&self) -> &[usize] {
        &self.graph_labels
    }

    /// Graph-label space size.
    pub fn graph_classes(&self) -> usize {
        self.graph_classes
    }

    /// Offset-shifted canonical undirected edge list of the union.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Concatenated per-node degrees (self-loops excluded, as in
    /// [`Graph::degrees`]).
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Symmetric GCN-normalized adjacency of the union, built lazily via
    /// the streamed constructor and cached. Block-diagonal by
    /// construction; for a 1-graph batch it is byte-identical to
    /// [`Graph::gcn_adjacency`].
    pub fn gcn_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::clone(self.gcn_adj.get_or_init(|| {
            let mut src = PackedEdgeSource {
                n: self.num_nodes(),
                edges: &self.edges,
                pos: 0,
            };
            let (structure, _stats) = stream_adjacency(&mut src, PACK_CHUNK_EDGES);
            Arc::new(gcn_adjacency_from_structure(&structure))
        }))
    }
}

/// Configuration for the synthetic graph-classification dataset.
#[derive(Debug, Clone)]
pub struct GraphClassConfig {
    /// Number of graphs to generate.
    pub graphs: usize,
    /// Number of graph classes.
    pub classes: usize,
    /// Smallest graph size (nodes).
    pub nodes_min: usize,
    /// Largest graph size (nodes, inclusive).
    pub nodes_max: usize,
    /// Node feature dimensionality.
    pub feature_dim: usize,
    /// Baseline expected degree; class `c` scales it by `1 + c/2`, so
    /// topology alone carries class signal.
    pub mean_degree: f64,
    /// Class separation of the Gaussian feature mixture.
    pub feature_separation: f32,
}

impl Default for GraphClassConfig {
    fn default() -> Self {
        Self {
            graphs: 128,
            classes: 3,
            nodes_min: 8,
            nodes_max: 24,
            feature_dim: 16,
            mean_degree: 3.0,
            feature_separation: 0.8,
        }
    }
}

/// A generated multi-graph classification dataset.
pub struct GraphClassSet {
    /// The graphs, in generation order.
    pub graphs: Vec<Graph>,
    /// One class label per graph.
    pub labels: Vec<usize>,
    /// Number of graph classes.
    pub num_classes: usize,
}

/// Generate a seeded synthetic graph-classification dataset: each graph is
/// Erdős–Rényi with class-dependent density, and its node features are a
/// class-conditioned Gaussian mixture (every node inherits its graph's
/// class as node label), so both topology and features carry the signal.
pub fn graph_classification_dataset(cfg: &GraphClassConfig, rng: &mut SplitRng) -> GraphClassSet {
    assert!(cfg.classes >= 2, "need at least two graph classes");
    assert!(cfg.nodes_min >= 1 && cfg.nodes_min <= cfg.nodes_max);
    // Class centroids are drawn ONCE for the whole dataset. Per-graph
    // centroids (what `class_feature_matrix` with a shared stream would
    // give) carry no cross-graph signal: a classifier can memorize the
    // training graphs but tests at chance.
    let means: Vec<Vec<f32>> = (0..cfg.classes)
        .map(|_| {
            (0..cfg.feature_dim)
                .map(|_| rng.normal() * cfg.feature_separation)
                .collect()
        })
        .collect();
    let mut graphs = Vec::with_capacity(cfg.graphs);
    let mut labels = Vec::with_capacity(cfg.graphs);
    for _ in 0..cfg.graphs {
        let c = rng.below(cfg.classes);
        let n = cfg.nodes_min + rng.below(cfg.nodes_max - cfg.nodes_min + 1);
        let degree = cfg.mean_degree * (1.0 + c as f64 * 0.5);
        let p = (degree / (n.max(2) as f64 - 1.0)).min(1.0);
        let edges = erdos_renyi(n, p, rng);
        let node_labels = vec![c; n];
        // Clipped Gaussian around the dataset-level class mean, matching
        // the noise model of `FeatureStyle::TfidfGaussian`.
        let mut features = Matrix::zeros(n, cfg.feature_dim);
        for i in 0..n {
            let row = features.row_mut(i);
            for (j, r) in row.iter_mut().enumerate() {
                *r = (means[c][j] + rng.normal() * 0.5).max(0.0);
            }
        }
        graphs.push(Graph::new(n, edges, features, node_labels, cfg.classes));
        labels.push(c);
    }
    GraphClassSet {
        graphs,
        labels,
        num_classes: cfg.classes,
    }
}

/// Shuffled 60/20/20 split over *graph* indices (same proportions as
/// [`crate::full_supervised_split`], which splits node indices).
pub fn graph_level_split(num_graphs: usize, rng: &mut SplitRng) -> Split {
    let mut order: Vec<usize> = (0..num_graphs).collect();
    rng.shuffle(&mut order);
    let train_end = (num_graphs as f64 * 0.6).round() as usize;
    let val_end = (num_graphs as f64 * 0.8).round() as usize;
    let split = Split {
        train: order[..train_end].to_vec(),
        val: order[train_end..val_end].to_vec(),
        test: order[val_end..].to_vec(),
    };
    split.validate(num_graphs);
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{class_feature_matrix, partition_graph, FeatureStyle, PartitionConfig};

    fn small_graph(seed: u64, n: usize) -> Graph {
        let mut rng = SplitRng::new(seed);
        let edges = erdos_renyi(n, 0.4, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let features = class_feature_matrix(
            &labels,
            2,
            5,
            FeatureStyle::TfidfGaussian { separation: 1.0 },
            &mut rng,
        );
        Graph::new(n, edges, features, labels, 2)
    }

    #[test]
    fn one_graph_pack_is_byte_identical_to_single_graph_path() {
        let mut rng = SplitRng::new(7);
        let cfg = PartitionConfig {
            n: 40,
            m: 90,
            classes: 2,
            homophily: 0.8,
            power: 0.3,
        };
        let g = partition_graph(&cfg, 8, FeatureStyle::OneHotGroup, &mut rng);
        let batch = GraphBatch::pack_one(&g, 0, 2);
        let packed = batch.gcn_adjacency();
        let single = g.gcn_adjacency();
        assert_eq!(packed.rows(), single.rows());
        for r in 0..single.rows() {
            let (pc, pv) = packed.row(r);
            let (sc, sv) = single.row(r);
            assert_eq!(pc, sc, "row {r} structure");
            let pv_bits: Vec<u32> = pv.iter().map(|v| v.to_bits()).collect();
            let sv_bits: Vec<u32> = sv.iter().map(|v| v.to_bits()).collect();
            assert_eq!(pv_bits, sv_bits, "row {r} values");
        }
        assert_eq!(batch.features_arc().as_slice(), g.features().as_slice());
        assert_eq!(batch.node_labels(), g.labels());
        assert_eq!(batch.degrees(), &g.degrees()[..]);
    }

    #[test]
    fn packed_adjacency_is_block_diagonal_of_per_graph_adjacencies() {
        let graphs: Vec<Graph> = (0..4)
            .map(|i| small_graph(100 + i, 5 + i as usize))
            .collect();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let batch = GraphBatch::pack(&refs, &[0, 1, 0, 1], 2);
        let packed = batch.gcn_adjacency();
        assert!(packed.is_block_diagonal(batch.segments().offsets()));
        // Each diagonal block equals that graph's own normalized adjacency.
        for (gi, g) in graphs.iter().enumerate() {
            let own = g.gcn_adjacency();
            let off = batch.segments().range(gi).start;
            for r in 0..g.num_nodes() {
                let (pc, pv) = packed.row(off + r);
                let (sc, sv) = own.row(r);
                let shifted: Vec<u32> = sc.iter().map(|&c| c + off as u32).collect();
                assert_eq!(pc, &shifted[..], "graph {gi} row {r}");
                let pv_bits: Vec<u32> = pv.iter().map(|v| v.to_bits()).collect();
                let sv_bits: Vec<u32> = sv.iter().map(|v| v.to_bits()).collect();
                assert_eq!(pv_bits, sv_bits, "graph {gi} row {r} values");
            }
        }
    }

    #[test]
    fn empty_and_single_node_graphs_pack_cleanly() {
        let empty = Graph::new(0, vec![], Matrix::zeros(0, 5), vec![], 2);
        let lone = Graph::new(1, vec![], Matrix::zeros(1, 5), vec![1], 2);
        let normal = small_graph(9, 6);
        let batch = GraphBatch::pack(&[&empty, &lone, &normal], &[0, 1, 0], 2);
        assert_eq!(batch.num_graphs(), 3);
        assert_eq!(batch.num_nodes(), 7);
        assert_eq!(batch.segments().len(0), 0);
        assert_eq!(batch.segments().len(1), 1);
        let adj = batch.gcn_adjacency();
        assert_eq!(adj.rows(), 7);
        // The lone node gets a unit self-loop (degree 0 → 1/sqrt(1)).
        let (cols, vals) = adj.row(0);
        assert_eq!(cols, &[0]);
        assert_eq!(vals[0].to_bits(), 1.0f32.to_bits());
        assert!(adj.is_block_diagonal(batch.segments().offsets()));
    }

    #[test]
    fn generator_produces_consistent_dataset_and_split() {
        let cfg = GraphClassConfig {
            graphs: 30,
            ..GraphClassConfig::default()
        };
        let mut rng = SplitRng::new(11);
        let set = graph_classification_dataset(&cfg, &mut rng);
        assert_eq!(set.graphs.len(), 30);
        assert_eq!(set.labels.len(), 30);
        let mut seen = vec![false; set.num_classes];
        for (g, &l) in set.graphs.iter().zip(&set.labels) {
            assert!(l < set.num_classes);
            seen[l] = true;
            assert!(g.num_nodes() >= cfg.nodes_min && g.num_nodes() <= cfg.nodes_max);
            assert_eq!(g.feature_dim(), cfg.feature_dim);
            assert!(g.labels().iter().all(|&nl| nl == l));
        }
        assert!(seen.iter().all(|&s| s), "every class represented");
        let split = graph_level_split(30, &mut rng);
        assert_eq!(split.train.len() + split.val.len() + split.test.len(), 30);
        assert_eq!(split.train.len(), 18);
    }

    #[test]
    fn pack_determinism() {
        let set = graph_classification_dataset(
            &GraphClassConfig {
                graphs: 8,
                ..GraphClassConfig::default()
            },
            &mut SplitRng::new(3),
        );
        let refs: Vec<&Graph> = set.graphs.iter().collect();
        let a = GraphBatch::pack(&refs, &set.labels, set.num_classes);
        let b = GraphBatch::pack(&refs, &set.labels, set.num_classes);
        assert_eq!(a.gcn_adjacency().as_ref(), b.gcn_adjacency().as_ref());
        assert_eq!(a.features_arc().as_slice(), b.features_arc().as_slice());
    }
}
