//! Random-graph and feature generators.
//!
//! Three topology generators cover the paper's dataset families:
//! - [`erdos_renyi`] — the G(n, p) graph of the Figure 4 theory experiment;
//! - [`planted_partition`] — degree-corrected SBM with a homophily dial,
//!   standing in for the citation (homophilic) and web (heterophilic)
//!   graphs;
//! - [`barabasi_albert_with_classes`] — preferential attachment with
//!   class-biased wiring, standing in for the hub-heavy ogbn-arxiv.

use crate::graph::Graph;
use skipnode_tensor::{Matrix, SplitRng};
use std::collections::HashSet;

/// Erdős–Rényi G(n, p): every pair independently connected with
/// probability `p`. Used by the Figure 4 experiment (n=500, p=0.5).
pub fn erdos_renyi(n: usize, p: f64, rng: &mut SplitRng) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.unit() < p {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Configuration for the degree-corrected planted-partition generator.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target number of undirected edges.
    pub m: usize,
    /// Number of classes (= blocks).
    pub classes: usize,
    /// Probability that a generated edge is intra-class (edge homophily dial).
    pub homophily: f64,
    /// Pareto-ish degree-propensity exponent; higher → heavier hubs.
    /// 0 gives near-uniform degrees.
    pub power: f64,
}

/// Degree-corrected planted partition / SBM.
///
/// Labels are assigned round-robin (balanced classes). Each of the `m`
/// edges picks intra- vs inter-class by `homophily`, then endpoints within
/// the chosen blocks proportional to per-node propensities
/// `θ_i = u_i^{-power}` (heavy-tailed for `power > 0`). Duplicate edges are
/// retried, so the realized edge count matches `m` (up to a retry cap).
pub fn planted_partition(
    cfg: &PartitionConfig,
    rng: &mut SplitRng,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    assert!(cfg.classes >= 1, "need at least one class");
    assert!(cfg.n >= 2, "need at least two nodes");
    let labels: Vec<usize> = (0..cfg.n).map(|i| i % cfg.classes).collect();
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); cfg.classes];
    for (i, &c) in labels.iter().enumerate() {
        by_class[c].push(i);
    }
    // Per-node propensity; alias-free sampling via cumulative weights.
    let theta: Vec<f64> = (0..cfg.n)
        .map(|_| {
            if cfg.power <= 0.0 {
                1.0
            } else {
                rng.unit().max(1e-9).powf(-cfg.power).min(1e4)
            }
        })
        .collect();
    let cum_per_class: Vec<Vec<f64>> = by_class
        .iter()
        .map(|nodes| {
            let mut acc = 0.0;
            nodes
                .iter()
                .map(|&i| {
                    acc += theta[i];
                    acc
                })
                .collect()
        })
        .collect();

    let pick_in_class = |class: usize, rng: &mut SplitRng| -> usize {
        let cum = &cum_per_class[class];
        let total = *cum.last().expect("non-empty class");
        let x = rng.unit() * total;
        let idx = cum.partition_point(|&c| c < x).min(cum.len() - 1);
        by_class[class][idx]
    };

    let mut set: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.m * 2);
    let mut edges = Vec::with_capacity(cfg.m);
    let max_attempts = cfg.m * 50 + 1000;
    let mut attempts = 0;
    while edges.len() < cfg.m && attempts < max_attempts {
        attempts += 1;
        let c1 = rng.below(cfg.classes);
        let c2 = if rng.unit() < cfg.homophily || cfg.classes == 1 {
            c1
        } else {
            // pick a different class uniformly
            let mut c = rng.below(cfg.classes - 1);
            if c >= c1 {
                c += 1;
            }
            c
        };
        let u = pick_in_class(c1, rng);
        let v = pick_in_class(c2, rng);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if set.insert(key) {
            edges.push(key);
        }
    }
    (edges, labels)
}

/// Configuration for the ring-of-blocks citation-graph generator.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target number of undirected edges (sets the mean degree).
    pub m: usize,
    /// Number of classes.
    pub classes: usize,
    /// Class-block length along the ring: labels cycle through classes in
    /// contiguous blocks of this many nodes. Smaller blocks ⇒ more
    /// boundary-crossing edges ⇒ lower homophily.
    pub block: usize,
    /// Fraction of lattice edges rewired to a random nearby node.
    pub rewire: f64,
    /// Rewiring window (max ring distance of a rewired edge).
    pub window: usize,
}

/// Ring-of-blocks generator: a small-world ring lattice whose labels cycle
/// through classes in contiguous blocks.
///
/// This is the **citation-graph substitute**: unlike a planted partition
/// (an expander with `λ ≈ 0.9`), the ring's slow mixing gives
/// `λ ≈ 0.999` — matching real Planetoid graphs (`λ ≈ 0.996` on Cora) and
/// therefore the paper's depth-versus-degradation dynamics. Homophily is
/// set geometrically by `block`: an edge of ring distance `d` crosses a
/// class boundary with probability `≈ d/block`.
pub fn ring_of_blocks(cfg: &RingConfig, rng: &mut SplitRng) -> (Vec<(usize, usize)>, Vec<usize>) {
    assert!(cfg.n >= 4, "ring too small");
    assert!(cfg.block >= 1, "block must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.rewire),
        "rewire fraction in [0,1]"
    );
    let labels: Vec<usize> = (0..cfg.n).map(|i| (i / cfg.block) % cfg.classes).collect();
    let mean_degree = 2.0 * cfg.m as f64 / cfg.n as f64;
    let k = (mean_degree / 2.0).floor() as usize; // full lattice distances
    let frac = mean_degree / 2.0 - k as f64; // partial distance k+1
    let window = cfg.window.max(1).min(cfg.n / 2 - 1);
    let mut edges = Vec::with_capacity(cfg.m + cfg.n);
    let mut set: HashSet<(usize, usize)> = HashSet::with_capacity(cfg.m * 2);
    let mut place = |u: usize, v: usize, edges: &mut Vec<(usize, usize)>| -> bool {
        if u == v {
            return false;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if set.insert(key) {
            edges.push(key);
            true
        } else {
            false
        }
    };
    for u in 0..cfg.n {
        for d in 1..=(k + 1) {
            if d == k + 1 && rng.unit() >= frac {
                continue;
            }
            if rng.unit() < cfg.rewire {
                // Retry colliding rewires with a fresh window offset instead
                // of dropping the edge, so the realized count tracks `m`
                // instead of silently losing a few percent to duplicates.
                let mut placed = false;
                for _ in 0..20 {
                    let off = 1 + rng.below(window);
                    let v = if rng.bernoulli(0.5) {
                        (u + off) % cfg.n
                    } else {
                        (u + cfg.n - off) % cfg.n
                    };
                    if place(u, v, &mut edges) {
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // Dense neighborhood: fall back to the lattice edge.
                    place(u, (u + d) % cfg.n, &mut edges);
                }
            } else {
                place(u, (u + d) % cfg.n, &mut edges);
            }
        }
    }
    (edges, labels)
}

/// Preferential attachment with class-biased wiring (ogbn-arxiv stand-in).
///
/// Node `t` joins with `m_attach` edges; each edge endpoint is chosen
/// preferentially by degree among earlier nodes, restricted to `t`'s own
/// class with probability `homophily`. Produces a hub-heavy, homophilic
/// graph like large citation networks.
pub fn barabasi_albert_with_classes(
    n: usize,
    m_attach: usize,
    classes: usize,
    homophily: f64,
    rng: &mut SplitRng,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    assert!(
        n > m_attach + classes,
        "graph too small for attachment count"
    );
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * m_attach);
    let mut degree = vec![0usize; n];
    // Repeated-node list for preferential sampling, per class and global.
    let mut pool_global: Vec<usize> = Vec::new();
    let mut pool_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    let seed_count = (m_attach + 1).max(classes);
    // Seed clique over the first seed_count nodes.
    for u in 0..seed_count {
        for v in (u + 1)..seed_count {
            edges.push((u, v));
            degree[u] += 1;
            degree[v] += 1;
        }
    }
    for u in 0..seed_count {
        for _ in 0..degree[u].max(1) {
            pool_global.push(u);
            pool_class[labels[u]].push(u);
        }
    }
    for t in seed_count..n {
        let mut targets: HashSet<usize> = HashSet::with_capacity(m_attach);
        let mut guard = 0;
        while targets.len() < m_attach && guard < m_attach * 60 {
            guard += 1;
            let same_class = rng.unit() < homophily;
            let pool = if same_class && !pool_class[labels[t]].is_empty() {
                &pool_class[labels[t]]
            } else {
                &pool_global
            };
            let cand = pool[rng.below(pool.len())];
            if cand != t {
                targets.insert(cand);
            }
        }
        for &v in &targets {
            edges.push((t, v));
            degree[t] += 1;
            degree[v] += 1;
            pool_global.push(v);
            pool_class[labels[v]].push(v);
        }
        pool_global.push(t);
        pool_class[labels[t]].push(t);
    }
    (edges, labels)
}

/// Feature synthesis style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureStyle {
    /// 0/1 bag-of-words: each class owns a block of "topic words"; a node
    /// activates `active` words drawn mostly from its class block plus
    /// uniform noise words (Cora/Citeseer-like). With probability
    /// `confusion` a node's topic block is swapped for a random *other*
    /// class's block — these nodes are unclassifiable from features alone
    /// and set the dataset's accuracy ceiling (a homophilic graph can
    /// recover them through neighbors, exactly as on real citation data).
    BinaryBagOfWords {
        /// Number of word activations per node.
        active: usize,
        /// Probability an activation is an in-class topic word.
        fidelity: f64,
        /// Fraction of nodes whose features mimic a different class.
        confusion: f64,
    },
    /// Dense TF-IDF-like features: class-mean Gaussian mixture, values
    /// clipped at zero (Pubmed-like).
    TfidfGaussian {
        /// Class separation (mean offset scale).
        separation: f32,
    },
    /// One-hot group id (ogbl-ppa's 58 species-like groups).
    OneHotGroup,
}

/// Build an `n x dim` feature matrix conditioned on class labels.
pub fn class_feature_matrix(
    labels: &[usize],
    num_classes: usize,
    dim: usize,
    style: FeatureStyle,
    rng: &mut SplitRng,
) -> Matrix {
    class_feature_matrix_from(
        labels.iter().copied(),
        labels.len(),
        num_classes,
        dim,
        style,
        rng,
    )
}

/// [`class_feature_matrix`] over a label *iterator* of known length, so
/// streamed million-node builders can synthesize features from formulaic
/// labels (`i % classes`) without materializing a `Vec<usize>`. Draws the
/// identical RNG stream as the slice version.
pub fn class_feature_matrix_from(
    labels: impl Iterator<Item = usize>,
    n: usize,
    num_classes: usize,
    dim: usize,
    style: FeatureStyle,
    rng: &mut SplitRng,
) -> Matrix {
    let mut x = Matrix::zeros(n, dim);
    match style {
        FeatureStyle::BinaryBagOfWords {
            active,
            fidelity,
            confusion,
        } => {
            // Concentrate class signal in a compact topic block: real
            // bag-of-words corpora have a few dozen highly indicative terms
            // per class, and capping the block keeps small training sets
            // able to generalize across it.
            let block = (dim / num_classes).clamp(1, 64);
            for (i, c) in labels.enumerate() {
                let topic = if num_classes > 1 && rng.unit() < confusion {
                    // Confused node: features mimic a different class.
                    let mut o = rng.below(num_classes - 1);
                    if o >= c {
                        o += 1;
                    }
                    o
                } else {
                    c
                };
                let lo = (topic * block).min(dim.saturating_sub(1));
                let hi = (lo + block).min(dim);
                let row = x.row_mut(i);
                for _ in 0..active {
                    let j = if rng.unit() < fidelity && hi > lo {
                        lo + rng.below(hi - lo)
                    } else {
                        rng.below(dim)
                    };
                    row[j] = 1.0;
                }
            }
        }
        FeatureStyle::TfidfGaussian { separation } => {
            // Random unit-ish class means.
            let mut means = Vec::with_capacity(num_classes);
            for _ in 0..num_classes {
                let m: Vec<f32> = (0..dim).map(|_| rng.normal() * separation).collect();
                means.push(m);
            }
            for (i, c) in labels.enumerate() {
                let row = x.row_mut(i);
                for (j, r) in row.iter_mut().enumerate() {
                    *r = (means[c][j] + rng.normal() * 0.5).max(0.0);
                }
            }
        }
        FeatureStyle::OneHotGroup => {
            for i in 0..n {
                let g = rng.below(dim);
                x.set(i, g, 1.0);
            }
        }
    }
    x
}

/// Convenience: build a full [`Graph`] from a planted partition + features.
pub fn partition_graph(
    cfg: &PartitionConfig,
    dim: usize,
    style: FeatureStyle,
    rng: &mut SplitRng,
) -> Graph {
    let (edges, labels) = planted_partition(cfg, rng);
    let features = class_feature_matrix(&labels, cfg.classes, dim, style, rng);
    Graph::new(cfg.n, edges, features, labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_edge_count_matches_expectation() {
        let mut rng = SplitRng::new(1);
        let n = 200;
        let p = 0.1;
        let edges = erdos_renyi(n, p, &mut rng);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = edges.len() as f64;
        assert!((got - expect).abs() < expect * 0.15, "{got} vs {expect}");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SplitRng::new(2);
        assert!(erdos_renyi(20, 0.0, &mut rng).is_empty());
        assert_eq!(erdos_renyi(20, 1.0, &mut rng).len(), 190);
    }

    #[test]
    fn planted_partition_hits_edge_and_homophily_targets() {
        let mut rng = SplitRng::new(3);
        let cfg = PartitionConfig {
            n: 1000,
            m: 4000,
            classes: 5,
            homophily: 0.8,
            power: 0.3,
        };
        let (edges, labels) = planted_partition(&cfg, &mut rng);
        assert!(edges.len() as f64 >= cfg.m as f64 * 0.98, "{}", edges.len());
        let same = edges
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count() as f64;
        let h = same / edges.len() as f64;
        assert!((h - 0.8).abs() < 0.05, "homophily {h}");
    }

    #[test]
    fn planted_partition_heterophilic_regime() {
        let mut rng = SplitRng::new(4);
        let cfg = PartitionConfig {
            n: 500,
            m: 2000,
            classes: 5,
            homophily: 0.2,
            power: 0.0,
        };
        let (edges, labels) = planted_partition(&cfg, &mut rng);
        let same = edges
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count() as f64;
        let h = same / edges.len() as f64;
        assert!(h < 0.3, "homophily {h}");
    }

    #[test]
    fn degree_correction_creates_hubs() {
        let mut rng = SplitRng::new(5);
        let mk = |power: f64, rng: &mut SplitRng| {
            let cfg = PartitionConfig {
                n: 800,
                m: 4000,
                classes: 4,
                homophily: 0.7,
                power,
            };
            let (edges, _) = planted_partition(&cfg, rng);
            let mut deg = vec![0usize; 800];
            for (u, v) in edges {
                deg[u] += 1;
                deg[v] += 1;
            }
            *deg.iter().max().unwrap()
        };
        let max_flat = mk(0.0, &mut rng);
        let max_heavy = mk(0.8, &mut rng);
        assert!(
            max_heavy > max_flat * 2,
            "heavy {max_heavy} vs flat {max_flat}"
        );
    }

    #[test]
    fn ba_graph_is_connected_and_hubby() {
        let mut rng = SplitRng::new(6);
        let (edges, labels) = barabasi_albert_with_classes(2000, 5, 10, 0.7, &mut rng);
        assert_eq!(labels.len(), 2000);
        let (_, count) = skipnode_sparse::connected_components(2000, &edges);
        assert_eq!(count, 1, "BA graph must be connected");
        let mut deg = vec![0usize; 2000];
        for &(u, v) in &edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / 2000.0;
        assert!(max as f64 > mean * 5.0, "max {max}, mean {mean}");
    }

    #[test]
    fn ba_homophily_tracks_dial() {
        let mut rng = SplitRng::new(7);
        let (edges, labels) = barabasi_albert_with_classes(3000, 5, 10, 0.8, &mut rng);
        let canon = skipnode_sparse::dedup_undirected_edges(&edges);
        let same = canon
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count() as f64;
        let h = same / canon.len() as f64;
        assert!(h > 0.55, "homophily {h}");
    }

    #[test]
    fn ring_of_blocks_hits_edge_target_and_block_homophily() {
        let mut rng = SplitRng::new(11);
        let cfg = RingConfig {
            n: 2708,
            m: 5429,
            classes: 7,
            block: 15,
            rewire: 0.2,
            window: 12,
        };
        let (edges, labels) = ring_of_blocks(&cfg, &mut rng);
        let canon = skipnode_sparse::dedup_undirected_edges(&edges);
        let m = canon.len() as f64;
        assert!((m - 5429.0).abs() < 5429.0 * 0.02, "edges {m}");
        let same = canon
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count() as f64;
        let h = same / m;
        assert!((h - 0.81).abs() < 0.05, "homophily {h}");
    }

    #[test]
    fn ring_of_blocks_is_slow_mixing() {
        // The whole point of the ring substitute: λ must be close to 1,
        // like real citation graphs, not an expander's ~0.9.
        let mut rng = SplitRng::new(12);
        let cfg = RingConfig {
            n: 800,
            m: 1600,
            classes: 7,
            block: 8,
            rewire: 0.2,
            window: 40,
        };
        let (edges, _) = ring_of_blocks(&cfg, &mut rng);
        let canon = skipnode_sparse::dedup_undirected_edges(&edges);
        let adj = skipnode_sparse::gcn_adjacency(800, &canon);
        let sub = skipnode_sparse::SmoothingSubspace::from_edges(800, &canon);
        let lambda = skipnode_sparse::second_largest_eigen_magnitude(&adj, &sub, 800);
        assert!(lambda > 0.99, "lambda {lambda}");
    }

    #[test]
    fn bag_of_words_features_are_binary_and_class_informative() {
        let mut rng = SplitRng::new(8);
        let labels: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let x = class_feature_matrix(
            &labels,
            4,
            100,
            FeatureStyle::BinaryBagOfWords {
                active: 15,
                fidelity: 0.8,
                confusion: 0.0,
            },
            &mut rng,
        );
        assert!(x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Class-0 nodes should activate block [0, 25) far more than block [25, 50).
        let mut own = 0.0;
        let mut other = 0.0;
        for (i, &c) in labels.iter().enumerate() {
            if c != 0 {
                continue;
            }
            let row = x.row(i);
            own += row[0..25].iter().sum::<f32>();
            other += row[25..50].iter().sum::<f32>();
        }
        assert!(own > other * 2.0, "own {own} vs other {other}");
    }

    #[test]
    fn tfidf_features_are_nonnegative() {
        let mut rng = SplitRng::new(9);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let x = class_feature_matrix(
            &labels,
            3,
            20,
            FeatureStyle::TfidfGaussian { separation: 1.0 },
            &mut rng,
        );
        assert!(x.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn one_hot_features_have_single_active_entry() {
        let mut rng = SplitRng::new(10);
        let labels = vec![0; 50];
        let x = class_feature_matrix(&labels, 1, 58, FeatureStyle::OneHotGroup, &mut rng);
        for r in 0..50 {
            let s: f32 = x.row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }
}
