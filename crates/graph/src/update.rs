//! Live-graph update streams for the online serving runtime.
//!
//! A deployed model sees its graph move underneath it: users join (new
//! nodes) and interact (new edges). [`GraphUpdate`] is the wire-level
//! event the serving layer consumes, and [`UpdateStream`] synthesizes a
//! seeded, reproducible sequence of such events against a live node
//! population — preferential attachment for realism (new edges favor
//! high-degree nodes, matching the hubs real social graphs grow).

use skipnode_tensor::SplitRng;

/// One structural event on the served graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphUpdate {
    /// A new undirected edge between two existing nodes.
    AddEdge(usize, usize),
    /// A new node with its feature row (dimension fixed by the model).
    AddNode(Vec<f32>),
}

/// Seeded synthetic generator of [`GraphUpdate`]s.
///
/// Tracks the current node count (its own `AddNode` events grow it) and
/// an approximate degree table so edge endpoints can be drawn with
/// preferential attachment. Every draw is deterministic in the seed.
#[derive(Clone)]
pub struct UpdateStream {
    rng: SplitRng,
    /// Per-node degree-plus-one weights for endpoint sampling.
    weights: Vec<f64>,
    /// Probability an event is a node arrival (vs an edge).
    node_rate: f64,
    /// Feature dimension for new nodes.
    feature_dim: usize,
}

impl UpdateStream {
    /// Generator over `n` initial nodes whose degrees are `degrees`
    /// (used as attachment weights); `node_rate` of the events are node
    /// arrivals, the rest edges.
    pub fn new(degrees: &[usize], node_rate: f64, feature_dim: usize, seed: u64) -> Self {
        Self {
            rng: SplitRng::new(seed),
            weights: degrees.iter().map(|&d| (d + 1) as f64).collect(),
            node_rate,
            feature_dim,
        }
    }

    /// Current node count (initial plus generated arrivals).
    pub fn num_nodes(&self) -> usize {
        self.weights.len()
    }

    /// Draw the next event. Edge endpoints are distinct; the generator's
    /// degree table is updated so later draws see the new structure.
    pub fn next_update(&mut self) -> GraphUpdate {
        let n = self.weights.len();
        if n < 2 || self.rng.unit() < self.node_rate {
            let features: Vec<f32> = (0..self.feature_dim)
                .map(|_| self.rng.uniform(-1.0, 1.0))
                .collect();
            self.weights.push(1.0);
            return GraphUpdate::AddNode(features);
        }
        let u = self.draw_weighted();
        let mut v = self.draw_weighted();
        let mut guard = 0;
        while v == u {
            // Weighted draws can collide often on hub-heavy tables; fall
            // back to uniform after a few tries to bound the loop.
            v = if guard < 8 {
                self.draw_weighted()
            } else {
                self.rng.below(n)
            };
            guard += 1;
        }
        self.weights[u] += 1.0;
        self.weights[v] += 1.0;
        GraphUpdate::AddEdge(u, v)
    }

    /// A batch of `k` events.
    pub fn take_updates(&mut self, k: usize) -> Vec<GraphUpdate> {
        (0..k).map(|_| self.next_update()).collect()
    }

    fn draw_weighted(&mut self) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut target = self.rng.unit() * total;
        for (i, &w) in self.weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_in_the_seed() {
        let deg = vec![1usize, 2, 3, 1];
        let mut a = UpdateStream::new(&deg, 0.2, 4, 77);
        let mut b = UpdateStream::new(&deg, 0.2, 4, 77);
        for _ in 0..50 {
            assert_eq!(a.next_update(), b.next_update());
        }
    }

    #[test]
    fn edges_have_distinct_in_range_endpoints() {
        let deg = vec![0usize; 6];
        let mut s = UpdateStream::new(&deg, 0.1, 2, 3);
        for _ in 0..200 {
            match s.next_update() {
                GraphUpdate::AddEdge(u, v) => {
                    assert_ne!(u, v);
                    assert!(u < s.num_nodes() && v < s.num_nodes());
                }
                GraphUpdate::AddNode(f) => assert_eq!(f.len(), 2),
            }
        }
    }

    #[test]
    fn node_rate_one_only_adds_nodes() {
        let mut s = UpdateStream::new(&[1, 1], 1.0, 3, 9);
        for _ in 0..10 {
            assert!(matches!(s.next_update(), GraphUpdate::AddNode(_)));
        }
        assert_eq!(s.num_nodes(), 12);
    }
}
