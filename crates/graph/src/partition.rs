//! METIS-lite graph partitioning and the cached subgraph shards that
//! Cluster-GCN-style mini-batch training consumes.
//!
//! [`partition_nodes`] is a greedy BFS bisection-free partitioner that
//! balances **degree volume** (`Σ deg + 1`), not just node counts:
//! growing a shard stops once it holds its fair share of either nodes or
//! volume, with both caps recomputed adaptively from what remains. On a
//! hub-heavy (power-law) graph this keeps a shard that swallowed a hub
//! from also swallowing half the nodes — the failure mode of id-range
//! splitting ([`ShardSet::balance`] reports both factors, and the tests
//! pin them on a Barabási–Albert graph).
//!
//! [`ShardSet`] then extracts one [`SubgraphShard`] per part: the induced
//! core [`Graph`] (its normalized adjacency lazily cached once by
//! [`Graph::gcn_adjacency`]), halo node ids (out-of-shard neighbors — the
//! rows Cluster-GCN drops and neighbor sampling re-imports), remapped
//! features/labels/split indices, and — when the parent graph carries a
//! cache-locality [`Reordering`] — a shard-local reordering mapping local
//! ids to original-id rank, so SkipNode mask sampling keeps drawing in
//! logical order (RNG-stream parity with the unreordered run).
//!
//! Shard node lists are **ascending** and split indices keep the parent
//! split's iteration order, so `shards = 1` reproduces the full-batch
//! trainer bit for bit (pinned in `tests/shard_identity.rs`).

use crate::graph::Graph;
use crate::large::LargeGraph;
use crate::preprocess::Reordering;
use crate::splits::Split;
use skipnode_tensor::Matrix;
use std::collections::VecDeque;

/// Assign each node to one of `shards` parts, balancing degree volume.
///
/// `neighbors(u, visit)` calls `visit(v)` for every neighbor of `u`;
/// adapters exist for both [`Graph`] and [`LargeGraph`]. Every part is
/// guaranteed non-empty; `shards = 1` assigns everything to part 0.
///
/// # Panics
/// Panics unless `1 <= shards <= n`.
pub fn partition_nodes<F>(n: usize, degrees: &[usize], mut neighbors: F, shards: usize) -> Vec<u32>
where
    F: FnMut(usize, &mut dyn FnMut(usize)),
{
    assert_eq!(degrees.len(), n, "degree count != node count");
    assert!(shards >= 1, "need at least one shard");
    assert!(shards <= n, "more shards than nodes");
    if shards == 1 {
        return vec![0; n];
    }
    let total_vol: usize = degrees.iter().sum::<usize>() + n;
    let mut assignment = vec![u32::MAX; n];
    // Seed from the periphery: ascending-degree seeds keep BFS regions
    // compact and leave hubs to be absorbed, not to start, shards.
    let mut seed_order: Vec<u32> = (0..n as u32).collect();
    seed_order.sort_by_key(|&v| (degrees[v as usize], v));
    let mut seed_ptr = 0usize;
    let mut assigned = 0usize;
    let mut vol_assigned = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new();

    for s in 0..shards {
        let last = s + 1 == shards;
        let remaining = shards - s;
        let node_cap = (n - assigned).div_ceil(remaining);
        let vol_cap = (total_vol - vol_assigned).div_ceil(remaining);
        let mut nodes_here = 0usize;
        let mut vol_here = 0usize;
        queue.clear();
        loop {
            if !last && nodes_here >= node_cap {
                break;
            }
            if !last && nodes_here > 0 && vol_here >= vol_cap {
                break;
            }
            let u = match queue.pop_front() {
                Some(u) => u,
                None => {
                    while seed_ptr < n && assignment[seed_order[seed_ptr] as usize] != u32::MAX {
                        seed_ptr += 1;
                    }
                    if seed_ptr == n {
                        break;
                    }
                    seed_order[seed_ptr] as usize
                }
            };
            if assignment[u] != u32::MAX {
                continue;
            }
            assignment[u] = s as u32;
            nodes_here += 1;
            vol_here += degrees[u] + 1;
            neighbors(u, &mut |v| {
                if assignment[v] == u32::MAX {
                    queue.push_back(v);
                }
            });
        }
        assigned += nodes_here;
        vol_assigned += vol_here;
    }
    debug_assert!(assignment.iter().all(|&a| a != u32::MAX));
    assignment
}

/// One cached training shard: an induced core subgraph plus everything
/// the mini-batch trainer needs remapped into local ids.
#[derive(Debug, Clone)]
pub struct SubgraphShard {
    /// Shard index within its [`ShardSet`].
    pub index: usize,
    /// Global (parent) node ids of the core, ascending.
    pub nodes: Vec<usize>,
    /// Global ids of halo nodes: out-of-shard endpoints of cut edges,
    /// ascending and deduplicated. The cluster scheme drops them (the
    /// documented Cluster-GCN trade-off); neighbor sampling re-imports
    /// sampled subsets of them per batch.
    pub halo: Vec<usize>,
    /// Parent edges lost because exactly one endpoint is in this shard.
    pub cut_edges: usize,
    /// The induced core subgraph in local ids (canonical edges, copied
    /// features/labels, normalized adjacency lazily cached once). When
    /// the parent carries a node order, this graph carries the shard-local
    /// restriction of it.
    pub graph: Graph,
    /// Cached `graph.degrees()` (the trainer needs them every epoch).
    pub degrees: Vec<usize>,
    /// Parent split indices that fall in this shard, remapped to local
    /// ids, preserving the parent split's order.
    pub local_split: Split,
}

/// A full partition of a graph into cached [`SubgraphShard`]s.
#[derive(Debug, Clone)]
pub struct ShardSet {
    /// Per-node shard assignment (`assignment[global] = shard`).
    pub assignment: Vec<u32>,
    /// The shards, indexed by part id.
    pub shards: Vec<SubgraphShard>,
    /// Parent undirected edge count.
    pub total_edges: usize,
    /// Parent edges crossing shard boundaries (each counted once).
    pub cut_edges: usize,
}

impl ShardSet {
    /// Partition an in-memory [`Graph`] into `shards` cached subgraphs.
    pub fn from_graph(g: &Graph, split: &Split, shards: usize) -> ShardSet {
        let n = g.num_nodes();
        let degrees = g.degrees();
        let adj = g.adjacency_list();
        let assignment = partition_nodes(
            n,
            &degrees,
            |u, visit| {
                for &v in &adj[u] {
                    visit(v);
                }
            },
            shards,
        );
        build_shards(
            &assignment,
            shards,
            split,
            g.features(),
            |u| g.labels()[u],
            g.num_classes(),
            g.edges().iter().copied(),
            g.num_edges(),
            g.node_order(),
        )
    }

    /// Partition a streamed [`LargeGraph`] into `shards` cached subgraphs.
    pub fn from_large(g: &LargeGraph, split: &Split, shards: usize) -> ShardSet {
        let n = g.num_nodes();
        let degrees = g.degrees();
        let assignment = partition_nodes(
            n,
            &degrees,
            |u, visit| {
                for &v in g.neighbors(u) {
                    visit(v as usize);
                }
            },
            shards,
        );
        let edges = (0..n).flat_map(|u| {
            g.neighbors(u)
                .iter()
                .map(move |&v| (u, v as usize))
                .filter(|&(u, v)| u < v)
        });
        build_shards(
            &assignment,
            shards,
            split,
            g.features(),
            |u| g.label(u),
            g.num_classes(),
            edges,
            g.num_edges(),
            None,
        )
    }

    /// `(node_factor, volume_factor)`: the largest shard's node count and
    /// degree volume relative to a perfectly balanced shard (1.0 = exact
    /// balance). The partitioner tests pin both on skewed graphs.
    pub fn balance(&self) -> (f64, f64) {
        let k = self.shards.len() as f64;
        let total_nodes: usize = self.shards.iter().map(|s| s.nodes.len()).sum();
        // Parent-degree volume: intra-edge degrees + one incidence per
        // cut edge + the self-loop term.
        let vol = |s: &SubgraphShard| s.degrees.iter().sum::<usize>() + s.cut_edges + s.nodes.len();
        let total_vol: usize = self.shards.iter().map(&vol).sum();
        let max_nodes = self.shards.iter().map(|s| s.nodes.len()).max().unwrap_or(0);
        let max_vol = self.shards.iter().map(&vol).max().unwrap_or(0);
        (
            max_nodes as f64 * k / total_nodes.max(1) as f64,
            max_vol as f64 * k / total_vol.max(1) as f64,
        )
    }
}

/// Shared shard extraction over any edge iterator (each undirected parent
/// edge exactly once).
#[allow(clippy::too_many_arguments)]
fn build_shards(
    assignment: &[u32],
    shards: usize,
    split: &Split,
    features: &Matrix,
    label_of: impl Fn(usize) -> usize,
    num_classes: usize,
    edges: impl Iterator<Item = (usize, usize)>,
    total_edges: usize,
    parent_order: Option<&Reordering>,
) -> ShardSet {
    let n = assignment.len();
    // Ascending node lists + global→local index in one scan.
    let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut local_index = vec![0u32; n];
    for (g, &s) in assignment.iter().enumerate() {
        let s = s as usize;
        local_index[g] = nodes[s].len() as u32;
        nodes[s].push(g);
    }
    // Local edge lists, halo candidates, cut counts.
    let mut local_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
    let mut halos: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut cuts = vec![0usize; shards];
    let mut cut_total = 0usize;
    for (u, v) in edges {
        let (su, sv) = (assignment[u] as usize, assignment[v] as usize);
        if su == sv {
            local_edges[su].push((local_index[u] as usize, local_index[v] as usize));
        } else {
            cut_total += 1;
            cuts[su] += 1;
            cuts[sv] += 1;
            halos[su].push(v);
            halos[sv].push(u);
        }
    }
    // Split indices in parent order, remapped per shard.
    let mut local_splits: Vec<Split> = (0..shards)
        .map(|_| Split {
            train: Vec::new(),
            val: Vec::new(),
            test: Vec::new(),
        })
        .collect();
    for &g in &split.train {
        local_splits[assignment[g] as usize]
            .train
            .push(local_index[g] as usize);
    }
    for &g in &split.val {
        local_splits[assignment[g] as usize]
            .val
            .push(local_index[g] as usize);
    }
    for &g in &split.test {
        local_splits[assignment[g] as usize]
            .test
            .push(local_index[g] as usize);
    }

    let mut out = Vec::with_capacity(shards);
    for (s, shard_nodes) in nodes.into_iter().enumerate() {
        let mut halo = std::mem::take(&mut halos[s]);
        halo.sort_unstable();
        halo.dedup();
        let shard_features = features.select_rows(&shard_nodes);
        let labels: Vec<usize> = shard_nodes.iter().map(|&g| label_of(g)).collect();
        let mut graph = Graph::new(
            shard_nodes.len(),
            std::mem::take(&mut local_edges[s]),
            shard_features,
            labels,
            num_classes,
        );
        if let Some(ord) = parent_order {
            // Local physical id ↔ rank of the node's *original* id within
            // the shard: SkipNode masks then draw in original-id order,
            // shard layout notwithstanding (the RNG-parity rule of
            // DESIGN.md §12).
            let orig: Vec<usize> = shard_nodes.iter().map(|&p| ord.perm[p]).collect();
            let mut by_orig: Vec<usize> = (0..orig.len()).collect();
            by_orig.sort_by_key(|&j| orig[j]);
            let mut rank = vec![0usize; orig.len()];
            for (r, &j) in by_orig.iter().enumerate() {
                rank[j] = r;
            }
            graph = graph.with_node_order(Reordering::from_perm(rank));
        }
        let degrees = graph.degrees();
        out.push(SubgraphShard {
            index: s,
            nodes: shard_nodes,
            halo,
            cut_edges: cuts[s],
            graph,
            degrees,
            local_split: std::mem::take(&mut local_splits[s]),
        });
    }
    ShardSet {
        assignment: assignment.to_vec(),
        shards: out,
        total_edges,
        cut_edges: cut_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        barabasi_albert_with_classes, class_feature_matrix, partition_graph, FeatureStyle,
        PartitionConfig,
    };
    use crate::preprocess::{reorder_graph, GraphReorder};
    use crate::splits::full_supervised_split;
    use skipnode_tensor::SplitRng;

    fn ba_graph(n: usize) -> Graph {
        let mut rng = SplitRng::new(17);
        let (edges, labels) = barabasi_albert_with_classes(n, 5, 10, 0.7, &mut rng);
        let features = class_feature_matrix(&labels, 10, 8, FeatureStyle::OneHotGroup, &mut rng);
        Graph::new(n, edges, features, labels, 10)
    }

    #[test]
    fn partitions_stay_balanced_on_skewed_degrees() {
        // The satellite regression: a hub-heavy BA graph must not produce
        // one mega-shard. Both balance factors stay under 1.5 for a range
        // of shard counts.
        let g = ba_graph(4000);
        let mut rng = SplitRng::new(1);
        let split = full_supervised_split(&g, &mut rng);
        let degrees = g.degrees();
        let total_vol: usize = degrees.iter().sum::<usize>() + 4000;
        for k in [2usize, 4, 8, 16] {
            let set = ShardSet::from_graph(&g, &split, k);
            assert_eq!(set.shards.len(), k);
            assert!(set.shards.iter().all(|s| !s.nodes.is_empty()));
            let (node_f, vol_f) = set.balance();
            // Volume (≈ per-shard SpMM work) is the tightly balanced
            // quantity; node counts may shift toward cheap-node shards.
            assert!(vol_f <= 1.35, "k={k}: volume factor {vol_f}");
            assert!(node_f <= 2.0, "k={k}: node factor {node_f}");

            // The regression this guards: splitting by node-id ranges on a
            // BA graph (old hubs get old, low ids) concentrates volume in
            // the first shard.
            let chunk = 4000usize.div_ceil(k);
            let id_split_max_vol = (0..k)
                .map(|s| {
                    let lo = s * chunk;
                    let hi = ((s + 1) * chunk).min(4000);
                    degrees[lo..hi].iter().sum::<usize>() + (hi - lo)
                })
                .max()
                .unwrap();
            let id_split_vol_f = id_split_max_vol as f64 * k as f64 / total_vol as f64;
            assert!(
                vol_f < id_split_vol_f,
                "k={k}: BFS {vol_f} should beat id-range {id_split_vol_f}"
            );
        }
    }

    #[test]
    fn single_shard_is_the_identity() {
        let g = partition_graph(
            &PartitionConfig {
                n: 300,
                m: 1200,
                classes: 3,
                homophily: 0.8,
                power: 0.3,
            },
            16,
            FeatureStyle::TfidfGaussian { separation: 1.0 },
            &mut SplitRng::new(5),
        );
        let mut rng = SplitRng::new(2);
        let split = full_supervised_split(&g, &mut rng);
        let set = ShardSet::from_graph(&g, &split, 1);
        let sh = &set.shards[0];
        assert_eq!(sh.nodes, (0..300).collect::<Vec<_>>());
        assert!(sh.halo.is_empty());
        assert_eq!(sh.cut_edges, 0);
        assert_eq!(sh.graph.edges(), g.edges());
        assert_eq!(sh.graph.features().as_slice(), g.features().as_slice());
        assert_eq!(sh.graph.labels(), g.labels());
        assert_eq!(sh.local_split, split);
    }

    #[test]
    fn shards_partition_nodes_edges_and_split() {
        let g = ba_graph(1500);
        let mut rng = SplitRng::new(3);
        let split = full_supervised_split(&g, &mut rng);
        let set = ShardSet::from_graph(&g, &split, 5);
        let node_total: usize = set.shards.iter().map(|s| s.nodes.len()).sum();
        assert_eq!(node_total, 1500);
        let kept: usize = set.shards.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(kept + set.cut_edges, set.total_edges);
        let split_total: usize = set
            .shards
            .iter()
            .map(|s| s.local_split.train.len() + s.local_split.val.len() + s.local_split.test.len())
            .sum();
        assert_eq!(split_total, 1500);
        // Labels survive the round trip through local ids.
        for sh in &set.shards {
            for (&gid, local) in sh.nodes.iter().zip(0..) {
                assert_eq!(sh.graph.labels()[local], g.labels()[gid]);
            }
            for &t in &sh.local_split.train {
                assert!(t < sh.nodes.len());
            }
        }
    }

    #[test]
    fn halo_lists_the_boundary() {
        // Path 0-1-2-3 cut into {0,1} and {2,3}: halo of each side is the
        // opposing endpoint of the cut edge (1,2).
        let g = Graph::new(
            4,
            vec![(0, 1), (1, 2), (2, 3)],
            Matrix::zeros(4, 1),
            vec![0; 4],
            1,
        );
        let split = Split {
            train: vec![0, 1, 2, 3],
            val: vec![],
            test: vec![],
        };
        let set = ShardSet::from_graph(&g, &split, 2);
        let of = |gid: usize| set.assignment[gid] as usize;
        assert_ne!(of(1), of(2), "the path must be cut somewhere");
        let s1 = &set.shards[of(1)];
        let s2 = &set.shards[of(2)];
        assert_eq!(set.cut_edges, 1);
        assert!(s1.halo.iter().all(|&h| of(h) != s1.index));
        assert!(s2.halo.iter().all(|&h| of(h) != s2.index));
        assert_eq!(s1.cut_edges, 1);
        assert_eq!(s2.cut_edges, 1);
    }

    #[test]
    fn from_large_matches_from_graph() {
        // The same topology via both substrates produces identical shard
        // structure (LargeGraph path feeds edges u<v from CSR rows).
        let g = ba_graph(800);
        let mut indptr = vec![0usize];
        let mut indices: Vec<u32> = Vec::new();
        let adj = g.adjacency_list();
        for row in &adj {
            let mut r: Vec<u32> = row.iter().map(|&v| v as u32).collect();
            r.sort_unstable();
            indices.extend_from_slice(&r);
            indptr.push(indices.len());
        }
        let lg = LargeGraph::from_parts(
            skipnode_sparse::CsrStructure { indptr, indices },
            g.features().clone(),
            g.labels().iter().map(|&l| l as u32).collect(),
            g.num_classes(),
        );
        let mut rng = SplitRng::new(7);
        let split = full_supervised_split(&g, &mut rng);
        let a = ShardSet::from_graph(&g, &split, 4);
        let b = ShardSet::from_large(&lg, &split, 4);
        assert_eq!(a.assignment, b.assignment);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.halo, y.halo);
            assert_eq!(x.graph.edges(), y.graph.edges());
            assert_eq!(x.local_split, y.local_split);
        }
    }

    #[test]
    fn reordered_parent_gives_shards_a_logical_order() {
        let g = ba_graph(600);
        let (rg, _) = reorder_graph(&g, GraphReorder::DegreeSort);
        let mut rng = SplitRng::new(9);
        let split = full_supervised_split(&rg, &mut rng);
        let set = ShardSet::from_graph(&rg, &split, 3);
        for sh in &set.shards {
            let ord = sh.graph.node_order().expect("shard keeps logical order");
            // perm[local] = rank of the node's original id: ascending
            // original ids within the shard enumerate ranks 0..len.
            let parent_ord = rg.node_order().unwrap();
            let orig: Vec<usize> = sh.nodes.iter().map(|&p| parent_ord.perm[p]).collect();
            let mut sorted = orig.clone();
            sorted.sort_unstable();
            for (local, &o) in orig.iter().enumerate() {
                let rank = sorted.binary_search(&o).unwrap();
                assert_eq!(ord.perm[local], rank);
            }
        }
        // Unordered parents attach no shard order.
        let plain = ShardSet::from_graph(&g, &split, 3);
        assert!(plain.shards.iter().all(|s| s.graph.node_order().is_none()));
    }
}
