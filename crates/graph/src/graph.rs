//! The attributed-graph datatype shared across the workspace.

use skipnode_sparse::{dedup_undirected_edges, gcn_adjacency, CsrMatrix};
use skipnode_tensor::Matrix;
use std::sync::{Arc, OnceLock};

/// An undirected attributed graph with node labels.
///
/// Edges are stored canonically (`u < v`, deduplicated, no self-loops).
/// Features are a dense `n x d` matrix shared by `Arc` (tapes register it
/// without copying); labels are class indices. The full-graph GCN
/// propagation matrix is computed lazily once and cached, so the N training
/// runs of a sweep stop paying N× the O(nnz) normalization.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
    features: Arc<Matrix>,
    labels: Vec<usize>,
    num_classes: usize,
    gcn_adj: OnceLock<Arc<CsrMatrix>>,
    node_order: Option<Arc<crate::preprocess::Reordering>>,
}

impl Graph {
    /// Construct a graph, canonicalizing the edge list.
    ///
    /// # Panics
    /// Panics if features/labels sizes disagree with `n`, if an edge
    /// endpoint is out of range, or if a label is `>= num_classes`.
    pub fn new(
        n: usize,
        edges: Vec<(usize, usize)>,
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(features.rows(), n, "feature rows != node count");
        assert_eq!(labels.len(), n, "label count != node count");
        for &(u, v) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        }
        for &l in &labels {
            assert!(l < num_classes, "label {l} >= num_classes {num_classes}");
        }
        let edges = dedup_undirected_edges(&edges);
        Self {
            n,
            edges,
            features: Arc::new(features),
            labels,
            num_classes,
            gcn_adj: OnceLock::new(),
            node_order: None,
        }
    }

    /// Attach the [`crate::preprocess::Reordering`] this graph was
    /// renumbered by (set by [`crate::preprocess::reorder_graph`]), so
    /// per-node samplers can draw in logical order.
    ///
    /// # Panics
    /// Panics if the reordering's size disagrees with the node count.
    pub fn with_node_order(mut self, order: crate::preprocess::Reordering) -> Self {
        assert_eq!(order.len(), self.n, "reordering size != node count");
        self.node_order = Some(Arc::new(order));
        self
    }

    /// The reordering this graph was renumbered by, if any.
    pub fn node_order(&self) -> Option<&crate::preprocess::Reordering> {
        self.node_order.as_deref()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected, deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Canonical undirected edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Node feature matrix (`n x d`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Shared handle to the feature matrix, for registering it on a tape
    /// (`Tape::constant_shared`) without copying `n × d` floats per epoch.
    pub fn features_arc(&self) -> Arc<Matrix> {
        Arc::clone(&self.features)
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Node class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Node degrees (self-loops excluded; edges are canonical).
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg
    }

    /// The GCN-normalized propagation matrix `Ã` for the full graph,
    /// computed on first use and cached. Masked / filtered variants (epoch
    /// subsampling, node masking) remain uncached — they change per epoch.
    pub fn gcn_adjacency(&self) -> Arc<CsrMatrix> {
        Arc::clone(
            self.gcn_adj
                .get_or_init(|| Arc::new(gcn_adjacency(self.n, &self.edges))),
        )
    }

    /// Edge homophily: fraction of edges whose endpoints share a label.
    pub fn edge_homophily(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let same = self
            .edges
            .iter()
            .filter(|&&(u, v)| self.labels[u] == self.labels[v])
            .count();
        same as f64 / self.edges.len() as f64
    }

    /// Replace the feature matrix (used by augmentation pipelines). The
    /// adjacency cache carries over — the edge list is unchanged.
    pub fn with_features(mut self, features: Matrix) -> Self {
        assert_eq!(features.rows(), self.n, "feature rows != node count");
        self.features = Arc::new(features);
        self
    }

    /// Adjacency list (neighbor ids per node), for metrics like MAD.
    pub fn adjacency_list(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }

    /// Node-induced subgraph. `nodes` are original node ids (deduplicated,
    /// order preserved); returned graph relabels them `0..k`.
    pub fn subgraph(&self, nodes: &[usize]) -> Graph {
        let mut seen = vec![usize::MAX; self.n];
        let mut kept = Vec::with_capacity(nodes.len());
        for &u in nodes {
            assert!(u < self.n, "subgraph node {u} out of range");
            if seen[u] == usize::MAX {
                seen[u] = kept.len();
                kept.push(u);
            }
        }
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| seen[u] != usize::MAX && seen[v] != usize::MAX)
            .map(|&(u, v)| (seen[u], seen[v]))
            .collect();
        let features = self.features.select_rows(&kept);
        let labels = kept.iter().map(|&u| self.labels[u]).collect();
        Graph::new(kept.len(), edges, features, labels, self.num_classes)
    }

    /// The node ids of the largest connected component.
    pub fn largest_component(&self) -> Vec<usize> {
        let (ids, count) = skipnode_sparse::connected_components(self.n, &self.edges);
        let mut sizes = vec![0usize; count];
        for &c in &ids {
            sizes[c] += 1;
        }
        let biggest = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(c, _)| c)
            .unwrap_or(0);
        (0..self.n).filter(|&i| ids[i] == biggest).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        Graph::new(
            3,
            vec![(0, 1), (1, 0), (1, 2), (2, 2)],
            Matrix::zeros(3, 4),
            vec![0, 0, 1],
            2,
        )
    }

    #[test]
    fn edges_are_canonicalized() {
        let g = tiny();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn degrees_counted_once_per_edge() {
        let g = tiny();
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn homophily_counts_same_label_edges() {
        let g = tiny();
        // (0,1): same class; (1,2): different.
        assert!((g.edge_homophily() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjacency_list_is_symmetric() {
        let g = tiny();
        let adj = g.adjacency_list();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn subgraph_relabels_and_filters() {
        let g = Graph::new(
            4,
            vec![(0, 1), (1, 2), (2, 3)],
            Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]),
            vec![0, 1, 0, 1],
            2,
        );
        let sub = g.subgraph(&[1, 3]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 0); // 1 and 3 are not adjacent
        assert_eq!(sub.labels(), &[1, 1]);
        assert_eq!(sub.features().get(0, 0), 1.0);
        assert_eq!(sub.features().get(1, 0), 3.0);
        let sub2 = g.subgraph(&[2, 1, 2]); // dup ignored
        assert_eq!(sub2.num_nodes(), 2);
        assert_eq!(sub2.num_edges(), 1);
    }

    #[test]
    fn largest_component_found() {
        let g = Graph::new(
            5,
            vec![(0, 1), (1, 2), (3, 4)],
            Matrix::zeros(5, 1),
            vec![0; 5],
            1,
        );
        assert_eq!(g.largest_component(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        let _ = Graph::new(2, vec![(0, 5)], Matrix::zeros(2, 1), vec![0, 0], 1);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn bad_label_rejected() {
        let _ = Graph::new(1, vec![], Matrix::zeros(1, 1), vec![3], 2);
    }
}
