//! Node centrality measures.
//!
//! The paper's biased sampler weights nodes by degree ("high-degree nodes
//! smooth fastest"). PageRank is the natural generalization — a smoothness
//! exposure measure that also sees *indirect* connectivity — and powers the
//! `ablation_centrality` experiment.

use crate::graph::Graph;

/// Damped PageRank over the undirected graph (power iteration on the
/// row-stochastic walk matrix with teleport `1 − damping`).
///
/// Returns per-node scores summing to 1. Dangling (isolated) nodes receive
/// teleport mass only.
pub fn pagerank(graph: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0,1)");
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let adj = graph.adjacency_list();
    let degrees: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let teleport = (1.0 - damping) / n as f64;
    for _ in 0..iterations {
        // Dangling mass is redistributed uniformly.
        let dangling: f64 = rank
            .iter()
            .zip(&degrees)
            .filter(|(_, &d)| d == 0)
            .map(|(r, _)| r)
            .sum();
        let dangling_share = damping * dangling / n as f64;
        for v in next.iter_mut() {
            *v = teleport + dangling_share;
        }
        for (u, neigh) in adj.iter().enumerate() {
            if neigh.is_empty() {
                continue;
            }
            let share = damping * rank[u] / neigh.len() as f64;
            for &v in neigh {
                next[v] += share;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipnode_tensor::Matrix;

    fn star(n: usize) -> Graph {
        // Node 0 is the hub.
        let edges = (1..n).map(|i| (0, i)).collect();
        Graph::new(n, edges, Matrix::zeros(n, 1), vec![0; n], 1)
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = star(6);
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn hub_dominates_in_star_graph() {
        let g = star(10);
        let pr = pagerank(&g, 0.85, 50);
        for i in 1..10 {
            assert!(pr[0] > pr[i] * 3.0, "hub {} vs leaf {}", pr[0], pr[i]);
        }
    }

    #[test]
    fn symmetric_graph_gives_equal_ranks() {
        // A 4-cycle: all nodes equivalent.
        let g = Graph::new(
            4,
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            Matrix::zeros(4, 1),
            vec![0; 4],
            1,
        );
        let pr = pagerank(&g, 0.85, 60);
        for i in 1..4 {
            assert!((pr[i] - pr[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_nodes_keep_teleport_mass() {
        let g = Graph::new(3, vec![(0, 1)], Matrix::zeros(3, 1), vec![0; 3], 1);
        let pr = pagerank(&g, 0.85, 60);
        assert!(pr[2] > 0.0);
        assert!(pr[2] < pr[0]);
        assert!(((pr.iter().sum::<f64>()) - 1.0).abs() < 1e-9);
    }
}
