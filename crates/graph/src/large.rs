//! Million-node attributed graphs in pure CSR form.
//!
//! [`crate::Graph`] keeps a canonical `Vec<(usize, usize)>` edge list —
//! 16 bytes per undirected edge — alongside whatever adjacency it builds,
//! which is fine at benchmark scale and ruinous at 10⁷ edges.
//! [`LargeGraph`] stores only the symmetric [`CsrStructure`] produced by
//! the streamed builders (4 bytes per directed entry), plus the dense
//! features, `u32` labels, and class count. It is the substrate the shard
//! extractor ([`crate::ShardSet::from_large`]) cuts training subgraphs
//! from; full-graph training never touches it.

use skipnode_sparse::CsrStructure;
use skipnode_tensor::Matrix;
use std::sync::Arc;

/// An undirected attributed graph stored as a symmetric CSR structure.
///
/// Invariants (established by [`skipnode_sparse::stream_adjacency`] and
/// re-checked here): neighbor lists are strictly increasing, self-loop
/// free, and symmetric.
#[derive(Debug, Clone)]
pub struct LargeGraph {
    structure: CsrStructure,
    features: Arc<Matrix>,
    labels: Vec<u32>,
    num_classes: usize,
}

impl LargeGraph {
    /// Assemble from parts.
    ///
    /// # Panics
    /// Panics if the feature row count or label count disagrees with the
    /// structure's node count, or a label is `>= num_classes`.
    pub fn from_parts(
        structure: CsrStructure,
        features: Matrix,
        labels: Vec<u32>,
        num_classes: usize,
    ) -> Self {
        let n = structure.nodes();
        assert_eq!(features.rows(), n, "feature rows != node count");
        assert_eq!(labels.len(), n, "label count != node count");
        for &l in &labels {
            assert!(
                (l as usize) < num_classes,
                "label {l} >= num_classes {num_classes}"
            );
        }
        Self {
            structure,
            features: Arc::new(features),
            labels,
            num_classes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.structure.nodes()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.structure.directed_entries() / 2
    }

    /// The underlying adjacency structure.
    pub fn structure(&self) -> &CsrStructure {
        &self.structure
    }

    /// Sorted neighbor ids of node `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        self.structure.neighbors(u)
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.structure.degree(u)
    }

    /// All node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        self.structure.degrees()
    }

    /// Node feature matrix (`n x d`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Shared handle to the feature matrix.
    pub fn features_arc(&self) -> Arc<Matrix> {
        Arc::clone(&self.features)
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Node class labels (compact `u32` storage).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Label of node `u` as a class index.
    pub fn label(&self, u: usize) -> usize {
        self.labels[u] as usize
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Fraction of edges whose endpoints share a label.
    pub fn edge_homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..self.num_nodes() {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if v > u {
                    total += 1;
                    if self.labels[u] == self.labels[v] {
                        same += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }

    /// Resident heap bytes of the whole dataset (structure + features +
    /// labels), for memory-budget assertions.
    pub fn resident_bytes(&self) -> usize {
        self.structure.bytes()
            + self.features.rows() * self.features.cols() * std::mem::size_of::<f32>()
            + self.labels.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> LargeGraph {
        // 0-1-2-3 path.
        let structure = CsrStructure {
            indptr: vec![0, 1, 3, 5, 6],
            indices: vec![1, 0, 2, 1, 3, 2],
        };
        LargeGraph::from_parts(structure, Matrix::zeros(4, 2), vec![0, 0, 1, 1], 2)
    }

    #[test]
    fn accessors_agree_with_the_structure() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.label(2), 1);
        // Edges: (0,1) same, (1,2) diff, (2,3) same → 2/3.
        assert!((g.edge_homophily() - 2.0 / 3.0).abs() < 1e-12);
        assert!(g.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn bad_label_rejected() {
        let structure = CsrStructure {
            indptr: vec![0, 0],
            indices: vec![],
        };
        let _ = LargeGraph::from_parts(structure, Matrix::zeros(1, 1), vec![5], 2);
    }
}
