//! Streamed million-node variants of the synthetic generators.
//!
//! The in-memory generators ([`crate::planted_partition`],
//! [`crate::ring_of_blocks`], [`crate::barabasi_albert_with_classes`])
//! collect a full `Vec<(usize, usize)>` plus a `HashSet` for exact-`m`
//! retries — fine at 10³–10⁵ nodes, prohibitive at 10⁶–10⁷. The types
//! here implement [`EdgeChunkSource`] instead: each emits its *candidate*
//! edges in chunks, twice (the streams are seed-deterministic, so
//! [`stream_adjacency`]'s two passes see identical edges), and duplicates
//! are removed structurally during CSR compaction rather than by lookup.
//! Realized edge counts therefore track the target within the duplicate
//! rate (a few percent at the sparsities used here) instead of exactly.
//!
//! Two deliberate deviations from the in-memory generators, both
//! documented per type: no duplicate-retry loops (see above), and —
//! for the planted partition — degree correction by **rank-propensity**
//! (an inverse-CDF power law over within-class ranks, O(1) state) in
//! place of the per-node `θ_i` tables (O(n · f64) state).
//!
//! Labels stay formulaic (`i % classes`, `(i / block) % classes`) so no
//! generator holds per-node label state; [`assemble_large_graph`]
//! materializes them once into the compact `u32` form [`LargeGraph`]
//! stores anyway.

use crate::generators::{class_feature_matrix_from, FeatureStyle, PartitionConfig, RingConfig};
use crate::large::LargeGraph;
use skipnode_sparse::{stream_adjacency, EdgeChunkSource, StreamStats};
use skipnode_tensor::SplitRng;

/// Sample a within-class rank from a truncated power law on `[0, len)`:
/// density ∝ `x^{-power}` over `[1, len+1]`, floored to a rank. `power = 0`
/// is uniform. This is the O(1)-state stand-in for the in-memory
/// generator's per-node `θ_i = u_i^{-power}` propensity table: low ranks
/// become hubs with the same heavy-tail flavor.
fn powerlaw_rank(len: usize, power: f64, rng: &mut SplitRng) -> usize {
    if power <= 0.0 || len <= 1 {
        return rng.below(len.max(1));
    }
    let u = rng.unit();
    let l = (len + 1) as f64;
    let x = if (power - 1.0).abs() < 1e-9 {
        l.powf(u)
    } else {
        let b = l.powf(1.0 - power);
        (1.0 + u * (b - 1.0)).powf(1.0 / (1.0 - power))
    };
    ((x.floor() as usize).saturating_sub(1)).min(len - 1)
}

/// Streamed degree-corrected planted partition (labels `i % classes`).
///
/// Emits exactly `cfg.m` candidate edges; self-loop candidates are
/// skipped and duplicates removed structurally, so the realized count is
/// slightly under `m` (the in-memory generator retries instead). Class
/// `c`'s members are `{c, c + classes, …}`, picked by
/// [`powerlaw_rank`]-distributed within-class rank.
pub struct PlantedPartitionStream {
    cfg: PartitionConfig,
    seed: u64,
    rng: SplitRng,
    emitted: usize,
}

impl PlantedPartitionStream {
    /// Stream for `cfg` with a deterministic `seed`.
    pub fn new(cfg: PartitionConfig, seed: u64) -> Self {
        assert!(cfg.classes >= 1, "need at least one class");
        assert!(cfg.n >= 2, "need at least two nodes");
        assert!(cfg.n >= cfg.classes, "fewer nodes than classes");
        Self {
            cfg,
            seed,
            rng: SplitRng::new(seed),
            emitted: 0,
        }
    }

    fn class_size(&self, c: usize) -> usize {
        self.cfg.n / self.cfg.classes + usize::from(c < self.cfg.n % self.cfg.classes)
    }

    fn pick_in_class(&mut self, c: usize) -> usize {
        let rank = powerlaw_rank(self.class_size(c), self.cfg.power, &mut self.rng);
        c + rank * self.cfg.classes
    }
}

impl EdgeChunkSource for PlantedPartitionStream {
    fn nodes(&self) -> usize {
        self.cfg.n
    }

    fn reset(&mut self) {
        self.rng = SplitRng::new(self.seed);
        self.emitted = 0;
    }

    fn next_chunk(&mut self, buf: &mut Vec<(u32, u32)>) -> bool {
        buf.clear();
        if self.emitted >= self.cfg.m {
            return false;
        }
        let cap = buf.capacity();
        while buf.len() < cap && self.emitted < self.cfg.m {
            self.emitted += 1;
            let c1 = self.rng.below(self.cfg.classes);
            let c2 = if self.rng.unit() < self.cfg.homophily || self.cfg.classes == 1 {
                c1
            } else {
                let mut c = self.rng.below(self.cfg.classes - 1);
                if c >= c1 {
                    c += 1;
                }
                c
            };
            let u = self.pick_in_class(c1);
            let v = self.pick_in_class(c2);
            if u != v {
                buf.push((u as u32, v as u32));
            }
        }
        true
    }
}

/// Streamed ring-of-blocks lattice (labels `(i / block) % classes`).
///
/// Same lattice + rewiring walk as [`crate::ring_of_blocks`], minus the
/// collision-retry loop: colliding rewires simply become structural
/// duplicates, dropped during compaction.
pub struct RingOfBlocksStream {
    cfg: RingConfig,
    k: usize,
    frac: f64,
    window: usize,
    seed: u64,
    rng: SplitRng,
    u: usize,
    d: usize,
}

impl RingOfBlocksStream {
    /// Stream for `cfg` with a deterministic `seed`.
    pub fn new(cfg: RingConfig, seed: u64) -> Self {
        assert!(cfg.n >= 4, "ring too small");
        assert!(cfg.block >= 1, "block must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.rewire),
            "rewire fraction in [0,1]"
        );
        let mean_degree = 2.0 * cfg.m as f64 / cfg.n as f64;
        let k = (mean_degree / 2.0).floor() as usize;
        let frac = mean_degree / 2.0 - k as f64;
        let window = cfg.window.max(1).min(cfg.n / 2 - 1);
        Self {
            cfg,
            k,
            frac,
            window,
            seed,
            rng: SplitRng::new(seed),
            u: 0,
            d: 1,
        }
    }
}

impl EdgeChunkSource for RingOfBlocksStream {
    fn nodes(&self) -> usize {
        self.cfg.n
    }

    fn reset(&mut self) {
        self.rng = SplitRng::new(self.seed);
        self.u = 0;
        self.d = 1;
    }

    fn next_chunk(&mut self, buf: &mut Vec<(u32, u32)>) -> bool {
        buf.clear();
        if self.u >= self.cfg.n {
            return false;
        }
        let cap = buf.capacity();
        let n = self.cfg.n;
        while buf.len() < cap && self.u < n {
            let (u, d) = (self.u, self.d);
            if self.d > self.k {
                self.d = 1;
                self.u += 1;
            } else {
                self.d += 1;
            }
            if d == self.k + 1 && self.rng.unit() >= self.frac {
                continue;
            }
            let v = if self.rng.unit() < self.cfg.rewire {
                let off = 1 + self.rng.below(self.window);
                if self.rng.bernoulli(0.5) {
                    (u + off) % n
                } else {
                    (u + n - off) % n
                }
            } else {
                (u + d) % n
            };
            if u != v {
                buf.push((u as u32, v as u32));
            }
        }
        true
    }
}

/// Streamed preferential attachment with class-biased wiring (labels
/// `i % classes`).
///
/// Keeps the repeated-endpoint pools of
/// [`crate::barabasi_albert_with_classes`] (that *is* the preferential
/// process — ~16 bytes per edge of generator state, reported via
/// [`EdgeChunkSource::state_bytes`]) but emits edges straight into
/// chunks. [`EdgeChunkSource::reset`] replays the whole attachment
/// process from the seed, so both builder passes see identical edges.
pub struct BaStream {
    n: usize,
    m_attach: usize,
    classes: usize,
    homophily: f64,
    seed: u64,
    seed_count: usize,
    rng: SplitRng,
    /// Next node to attach; `< seed_count` while the clique is pending.
    t: usize,
    pool_global: Vec<u32>,
    pool_class: Vec<Vec<u32>>,
    /// Edges generated but not yet handed out (≤ one node's worth).
    pending: Vec<(u32, u32)>,
    pending_at: usize,
}

impl BaStream {
    /// Stream for an `n`-node graph attaching `m_attach` edges per node.
    pub fn new(n: usize, m_attach: usize, classes: usize, homophily: f64, seed: u64) -> Self {
        assert!(
            n > m_attach + classes,
            "graph too small for attachment count"
        );
        let seed_count = (m_attach + 1).max(classes);
        let mut s = Self {
            n,
            m_attach,
            classes,
            homophily,
            seed,
            seed_count,
            rng: SplitRng::new(seed),
            t: 0,
            pool_global: Vec::new(),
            pool_class: vec![Vec::new(); classes],
            pending: Vec::new(),
            pending_at: 0,
        };
        s.reset();
        s
    }

    fn label(&self, u: usize) -> usize {
        u % self.classes
    }

    /// Generate the next node's edges into `pending`.
    fn generate_next(&mut self) {
        self.pending.clear();
        self.pending_at = 0;
        if self.t == 0 {
            // Seed clique over the first `seed_count` nodes, then seed the
            // pools with each node's clique degree.
            for u in 0..self.seed_count {
                for v in (u + 1)..self.seed_count {
                    self.pending.push((u as u32, v as u32));
                }
            }
            for u in 0..self.seed_count {
                let c = self.label(u);
                for _ in 0..(self.seed_count - 1).max(1) {
                    self.pool_global.push(u as u32);
                    self.pool_class[c].push(u as u32);
                }
            }
            self.t = self.seed_count;
            return;
        }
        let t = self.t;
        self.t += 1;
        let mut targets: Vec<u32> = Vec::with_capacity(self.m_attach);
        let mut guard = 0;
        while targets.len() < self.m_attach && guard < self.m_attach * 60 {
            guard += 1;
            let same_class = self.rng.unit() < self.homophily;
            let class_pool = &self.pool_class[self.label(t)];
            let pool = if same_class && !class_pool.is_empty() {
                class_pool
            } else {
                &self.pool_global
            };
            let cand = pool[self.rng.below(pool.len())];
            if cand as usize != t && !targets.contains(&cand) {
                targets.push(cand);
            }
        }
        for &v in &targets {
            self.pending.push((t as u32, v));
            self.pool_global.push(v);
            let c = v as usize % self.classes;
            self.pool_class[c].push(v);
        }
        self.pool_global.push(t as u32);
        let c = self.label(t);
        self.pool_class[c].push(t as u32);
    }
}

impl EdgeChunkSource for BaStream {
    fn nodes(&self) -> usize {
        self.n
    }

    fn reset(&mut self) {
        self.rng = SplitRng::new(self.seed);
        self.t = 0;
        self.pool_global.clear();
        for p in &mut self.pool_class {
            p.clear();
        }
        self.pending.clear();
        self.pending_at = 0;
    }

    fn next_chunk(&mut self, buf: &mut Vec<(u32, u32)>) -> bool {
        buf.clear();
        if self.pending_at >= self.pending.len() && self.t >= self.n && self.t > 0 {
            return false;
        }
        let cap = buf.capacity();
        while buf.len() < cap {
            if self.pending_at < self.pending.len() {
                buf.push(self.pending[self.pending_at]);
                self.pending_at += 1;
            } else if self.t < self.n || self.t == 0 {
                self.generate_next();
            } else {
                break;
            }
        }
        true
    }

    fn state_bytes(&self) -> usize {
        let u32s = self.pool_global.capacity()
            + self.pool_class.iter().map(|p| p.capacity()).sum::<usize>();
        u32s * std::mem::size_of::<u32>()
            + self.pending.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// Peak-memory and provenance record of a streamed dataset build.
#[derive(Debug, Clone, Copy)]
pub struct StreamedGraphStats {
    /// The CSR builder's observations (including its analytic peak).
    pub adjacency: StreamStats,
    /// Resident bytes of the finished adjacency structure.
    pub structure_bytes: usize,
    /// Resident bytes of the dense feature matrix.
    pub feature_bytes: usize,
    /// Resident bytes of the label array.
    pub label_bytes: usize,
}

impl StreamedGraphStats {
    /// Peak transient heap of the *build* (the CSR builder's bound; label
    /// and feature arrays are permanent dataset residents, not transient
    /// scaffolding, and are reported separately).
    pub fn build_peak_bytes(&self) -> usize {
        self.adjacency.peak_bytes
    }
}

/// Build a [`LargeGraph`] from any edge source plus formulaic labels.
///
/// Feature synthesis draws from its own stream (`seed ^ FEATURE_SALT`) so
/// topology and features stay independently reproducible.
pub fn assemble_large_graph(
    src: &mut dyn EdgeChunkSource,
    labels: impl Iterator<Item = usize>,
    num_classes: usize,
    dim: usize,
    style: FeatureStyle,
    chunk_edges: usize,
    seed: u64,
) -> (LargeGraph, StreamedGraphStats) {
    let n = src.nodes();
    let (structure, adjacency) = stream_adjacency(src, chunk_edges);
    let labels: Vec<u32> = labels.take(n).map(|l| l as u32).collect();
    assert_eq!(labels.len(), n, "label iterator shorter than node count");
    let mut feature_rng = SplitRng::new(seed ^ FEATURE_SALT);
    let features = class_feature_matrix_from(
        labels.iter().map(|&l| l as usize),
        n,
        num_classes,
        dim,
        style,
        &mut feature_rng,
    );
    let stats = StreamedGraphStats {
        adjacency,
        structure_bytes: structure.bytes(),
        feature_bytes: features.rows() * features.cols() * std::mem::size_of::<f32>(),
        label_bytes: labels.capacity() * std::mem::size_of::<u32>(),
    };
    (
        LargeGraph::from_parts(structure, features, labels, num_classes),
        stats,
    )
}

/// Salt separating the feature RNG stream from the topology stream.
const FEATURE_SALT: u64 = 0xfea7_5eed_0000_0001;

/// Streamed counterpart of [`crate::partition_graph`] at million-node
/// scale: planted-partition topology + class features, no intermediate
/// edge list.
pub fn streamed_partition_graph(
    cfg: &PartitionConfig,
    dim: usize,
    style: FeatureStyle,
    chunk_edges: usize,
    seed: u64,
) -> (LargeGraph, StreamedGraphStats) {
    let classes = cfg.classes;
    let mut src = PlantedPartitionStream::new(cfg.clone(), seed);
    let labels = (0..cfg.n).map(move |i| i % classes);
    assemble_large_graph(&mut src, labels, classes, dim, style, chunk_edges, seed)
}

/// Streamed ring-of-blocks dataset (slow-mixing citation stand-in).
pub fn streamed_ring_graph(
    cfg: &RingConfig,
    dim: usize,
    style: FeatureStyle,
    chunk_edges: usize,
    seed: u64,
) -> (LargeGraph, StreamedGraphStats) {
    let (classes, block, n) = (cfg.classes, cfg.block, cfg.n);
    let mut src = RingOfBlocksStream::new(cfg.clone(), seed);
    let labels = (0..n).map(move |i| (i / block) % classes);
    assemble_large_graph(&mut src, labels, classes, dim, style, chunk_edges, seed)
}

/// Streamed class-biased preferential attachment (hub-heavy arxiv
/// stand-in).
#[allow(clippy::too_many_arguments)]
pub fn streamed_ba_graph(
    n: usize,
    m_attach: usize,
    classes: usize,
    homophily: f64,
    dim: usize,
    style: FeatureStyle,
    chunk_edges: usize,
    seed: u64,
) -> (LargeGraph, StreamedGraphStats) {
    let mut src = BaStream::new(n, m_attach, classes, homophily, seed);
    let labels = (0..n).map(move |i| i % classes);
    assemble_large_graph(&mut src, labels, classes, dim, style, chunk_edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_stream_replays_identically() {
        let cfg = PartitionConfig {
            n: 500,
            m: 2000,
            classes: 5,
            homophily: 0.8,
            power: 0.4,
        };
        let mut src = PlantedPartitionStream::new(cfg, 9);
        let mut collect = || {
            src.reset();
            let mut all = Vec::new();
            let mut buf = Vec::with_capacity(128);
            while src.next_chunk(&mut buf) {
                all.extend_from_slice(&buf);
            }
            all
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b);
        assert!(a.len() >= 1900, "emitted {}", a.len());
    }

    #[test]
    fn planted_stream_hits_homophily_and_degree_targets() {
        let cfg = PartitionConfig {
            n: 2000,
            m: 8000,
            classes: 4,
            homophily: 0.8,
            power: 0.0,
        };
        let (g, stats) = streamed_partition_graph(
            &cfg,
            16,
            FeatureStyle::TfidfGaussian { separation: 1.0 },
            1024,
            3,
        );
        assert_eq!(g.num_nodes(), 2000);
        assert!(g.num_edges() >= 7600, "edges {}", g.num_edges());
        let h = g.edge_homophily();
        assert!((h - 0.8).abs() < 0.05, "homophily {h}");
        assert!(stats.adjacency.chunks_per_pass >= 7);
    }

    #[test]
    fn rank_propensity_creates_hubs() {
        let mk = |power: f64| {
            let cfg = PartitionConfig {
                n: 800,
                m: 4000,
                classes: 4,
                homophily: 0.7,
                power,
            };
            let (g, _) = streamed_partition_graph(&cfg, 4, FeatureStyle::OneHotGroup, 512, 5);
            *g.degrees().iter().max().unwrap()
        };
        let flat = mk(0.0);
        let heavy = mk(0.8);
        assert!(heavy > flat * 2, "heavy {heavy} vs flat {flat}");
    }

    #[test]
    fn ring_stream_matches_the_in_memory_shape() {
        let cfg = RingConfig {
            n: 2708,
            m: 5429,
            classes: 7,
            block: 15,
            rewire: 0.2,
            window: 12,
        };
        let (g, _) = streamed_ring_graph(&cfg, 8, FeatureStyle::OneHotGroup, 777, 11);
        let m = g.num_edges() as f64;
        // No collision retries, so a slightly wider band than the
        // in-memory generator's 2%.
        assert!((m - 5429.0).abs() < 5429.0 * 0.05, "edges {m}");
        let h = g.edge_homophily();
        assert!((h - 0.81).abs() < 0.07, "homophily {h}");
    }

    #[test]
    fn ba_stream_is_hubby_and_replayable() {
        let mut src = BaStream::new(3000, 5, 10, 0.7, 13);
        let mut buf = Vec::with_capacity(97);
        let mut count_a = 0usize;
        while src.next_chunk(&mut buf) {
            count_a += buf.len();
        }
        src.reset();
        let mut count_b = 0usize;
        while src.next_chunk(&mut buf) {
            count_b += buf.len();
        }
        assert_eq!(count_a, count_b);
        assert!(src.state_bytes() > 0);

        let (g, _) = streamed_ba_graph(3000, 5, 10, 0.7, 8, FeatureStyle::OneHotGroup, 2048, 13);
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / 3000.0;
        assert!(max as f64 > mean * 5.0, "max {max}, mean {mean}");
        let h = g.edge_homophily();
        assert!(h > 0.5, "homophily {h}");
    }

    #[test]
    fn feature_styles_match_the_slice_generator() {
        // The iterator-based feature path must draw the identical stream
        // as `class_feature_matrix` given the same labels and rng seed.
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        for style in [
            FeatureStyle::BinaryBagOfWords {
                active: 8,
                fidelity: 0.9,
                confusion: 0.1,
            },
            FeatureStyle::TfidfGaussian { separation: 1.0 },
            FeatureStyle::OneHotGroup,
        ] {
            let mut r1 = SplitRng::new(21);
            let a = crate::generators::class_feature_matrix(&labels, 4, 32, style, &mut r1);
            let mut r2 = SplitRng::new(21);
            let b = class_feature_matrix_from(labels.iter().copied(), 100, 4, 32, style, &mut r2);
            assert_eq!(a.as_slice(), b.as_slice(), "{style:?}");
        }
    }
}
