//! Memory-bound contract of the streamed generators.
//!
//! The builder's transient heap must obey the analytic
//! [`peak_budget_bytes`] bound — `O(n + chunk)` beyond the output arrays,
//! with **no term proportional to a full edge list**. The default test
//! pins the bound at a CI-friendly size; the `#[ignore]`d test is the
//! million-node version the CI memory leg runs explicitly
//! (`cargo test --release -p skipnode-graph --test streamed_scale -- --ignored`).

use skipnode_graph::{streamed_partition_graph, FeatureStyle, PartitionConfig};
use skipnode_sparse::peak_budget_bytes;

fn build_and_check(n: usize, m: usize, chunk_edges: usize) {
    let cfg = PartitionConfig {
        n,
        m,
        classes: 8,
        homophily: 0.8,
        power: 0.3,
    };
    let (graph, stats) =
        streamed_partition_graph(&cfg, 16, FeatureStyle::OneHotGroup, chunk_edges, 271);
    assert_eq!(graph.num_nodes(), n);
    assert!(
        graph.num_edges() > m * 9 / 10,
        "realized edges {} far below target {m}",
        graph.num_edges()
    );
    // Each candidate edge contributes at most two directed entries.
    let budget = peak_budget_bytes(n, 2 * m, chunk_edges, 0);
    assert!(
        stats.adjacency.peak_bytes <= budget,
        "builder peak {} exceeded analytic bound {}",
        stats.adjacency.peak_bytes,
        budget
    );
    // The bound itself must be streaming-shaped: far below what an
    // intermediate `Vec<(usize, usize)>` edge list alone would occupy.
    let edge_list_bytes = m * std::mem::size_of::<(usize, usize)>();
    assert!(
        budget < edge_list_bytes,
        "budget {budget} is not smaller than a materialized edge list ({edge_list_bytes})"
    );
}

#[test]
fn builder_stays_inside_the_analytic_bound() {
    build_and_check(60_000, 300_000, 1 << 14);
}

#[test]
#[ignore = "million-node memory leg; run explicitly (CI does)"]
fn million_node_build_stays_inside_the_analytic_bound() {
    build_and_check(1_000_000, 5_000_000, 1 << 20);
}
