//! Parallel execution must never change results: the run-level executor's
//! output for real training workloads is byte-identical to strictly serial
//! execution, for any worker count.

use skipnode_bench::{
    derive_seed, run_classification, sweep_backbone, Executor, Protocol, SweepSpace,
};
use skipnode_core::{Sampling, SkipNodeConfig};
use skipnode_graph::{
    full_supervised_split, partition_graph, FeatureStyle, Graph, PartitionConfig,
};
use skipnode_nn::models::Gcn;
use skipnode_nn::{train_node_classifier, Strategy, TrainConfig};
use skipnode_tensor::SplitRng;
use std::sync::Mutex;

/// Serializes the tests that drive `Executor::from_env` through the
/// `SKIPNODE_RUN_PARALLEL` environment variable.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn graph() -> Graph {
    partition_graph(
        &PartitionConfig {
            n: 150,
            m: 600,
            classes: 3,
            homophily: 0.85,
            power: 0.2,
        },
        32,
        FeatureStyle::BinaryBagOfWords {
            active: 6,
            fidelity: 0.9,
            confusion: 0.1,
        },
        &mut SplitRng::new(9),
    )
}

/// One full training run seeded purely from its job index.
fn train_job(g: &Graph, index: usize) -> (f64, f64, usize) {
    let mut rng = SplitRng::new(derive_seed(123, index as u64));
    let split = full_supervised_split(g, &mut rng);
    let mut model = Gcn::new(g.feature_dim(), 8, g.num_classes(), 3, 0.2, &mut rng);
    let strategy = Strategy::SkipNode(SkipNodeConfig::new(0.4, Sampling::Uniform));
    let cfg = TrainConfig {
        epochs: 8,
        patience: 0,
        eval_every: 2,
        ..Default::default()
    };
    let r = train_node_classifier(&mut model, g, &split, &strategy, &cfg, &mut rng);
    (r.val_accuracy, r.test_accuracy, r.best_epoch)
}

#[test]
fn parallel_training_runs_are_byte_identical_to_serial() {
    let g = graph();
    let serial = Executor::serial().run(6, |i| train_job(&g, i));
    for workers in [2, 4] {
        let parallel = Executor::parallel(workers).run(6, |i| train_job(&g, i));
        // Exact float equality on purpose: parallelism must not perturb a
        // single bit of any run.
        assert_eq!(serial, parallel, "{workers} workers diverged from serial");
    }
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    let _env = ENV_LOCK.lock().unwrap();
    let g = graph();
    let space = SweepSpace {
        dropouts: vec![0.0, 0.3],
        weight_decays: vec![5e-4],
        lrs: vec![0.01, 0.05],
    };
    let run = |workers: usize| {
        // sweep_backbone reads SKIPNODE_RUN_PARALLEL through
        // Executor::from_env; drive it via the env var per call.
        std::env::set_var("SKIPNODE_RUN_PARALLEL", workers.to_string());
        let r = sweep_backbone(
            &g,
            "gcn",
            2,
            &Strategy::None,
            Protocol::FullSupervised,
            &space,
            6,
            31,
        );
        std::env::remove_var("SKIPNODE_RUN_PARALLEL");
        (
            r.dropout,
            r.weight_decay,
            r.lr,
            r.val_accuracy,
            r.test_accuracy,
        )
    };
    let serial = run(0);
    let parallel = run(3);
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_run_classification_matches_serial() {
    let _env = ENV_LOCK.lock().unwrap();
    let g = graph();
    let cfg = TrainConfig {
        epochs: 6,
        patience: 0,
        eval_every: 2,
        ..Default::default()
    };
    let run = |workers: usize| {
        std::env::set_var("SKIPNODE_RUN_PARALLEL", workers.to_string());
        let out = run_classification(
            &g,
            "gcn",
            2,
            &Strategy::None,
            Protocol::FullSupervised,
            &cfg,
            4,
            8,
            0.2,
            17,
        );
        std::env::remove_var("SKIPNODE_RUN_PARALLEL");
        (out.mean, out.std, out.mad)
    };
    let serial = run(0);
    let parallel = run(2);
    assert_eq!(serial, parallel);
}
