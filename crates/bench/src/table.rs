//! Minimal aligned-text table printer for experiment binaries.

/// Accumulates rows and prints an aligned table with a header rule.
#[derive(Debug, Default)]
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:width$}", s, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TablePrinter::new(&["name", "acc"]);
        t.row(vec!["gcn".into(), "86.1".into()]);
        t.row(vec!["skipnode-u".into(), "89.7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("gcn"));
        // column alignment: "acc" column starts at the same offset
        let off = lines[0].find("acc").unwrap();
        assert_eq!(&lines[2][off..off + 4], "86.1");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TablePrinter::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
