#![warn(missing_docs)]

//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library provides the CLI
//! argument plumbing, the backbone/strategy factories, aligned table
//! printing, and the repeated-split experiment runner they all share.

pub mod executor;
pub mod harness;
pub mod sweep;
pub mod table;
pub mod timing;

pub use executor::{derive_seed, parse_workers, Executor};
pub use harness::{
    build_model, mean_std, require, run_classification, strategy_by_name, tuned_rho, ExpArgs,
    Protocol, RunOutcome,
};
pub use sweep::{sweep_backbone, sweep_rate, RateSweepResult, SweepResult, SweepSpace};
pub use table::TablePrinter;
