#![warn(missing_docs)]

//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library provides the CLI
//! argument plumbing, the backbone/strategy factories, aligned table
//! printing, and the repeated-split experiment runner they all share.

pub mod executor;
pub mod harness;
pub mod sweep;
pub mod table;
pub mod timing;

pub use executor::{derive_seed, parse_workers, Executor};
pub use harness::{
    build_model, mean_std, require, run_classification, strategy_by_name, tuned_rho, BenchSession,
    ExpArgs, Protocol, RunOutcome,
};
pub use sweep::{sweep_backbone, sweep_rate, RateSweepResult, SweepResult, SweepSpace};
pub use table::TablePrinter;
pub use timing::{fmt_ns, Bencher, LatencyHistogram, Sample};

/// Kernel-backend provenance for bench JSON metadata: the detected SIMD
/// ISA, the installed GEMM microkernel tile, the active storage precision
/// (`skipnode_tensor::precision`), the auto-tuner's active profile
/// (`"untuned"` until some run applies one), the workspace free-list's
/// live/peak byte counters at snapshot time, and the conversion-kernel
/// counters (bf16 pack/widen, int8 quantize/GEMM) so a results file says
/// not just which precision mode was set but how much data actually moved
/// through the reduced-precision paths. The conversion counters read 0
/// unless `SKIPNODE_KERNEL_STATS=1` (or the bench forced collection on).
/// Recorded by every `bench_pr*` binary.
pub fn perf_metadata() -> Vec<(&'static str, String)> {
    use skipnode_tensor::kstats::{self, Kernel};
    use skipnode_tensor::{precision, simd, workspace};
    let tuner = match skipnode_nn::autotune::active_profile() {
        Some(p) => p.summary(),
        None => "untuned".to_string(),
    };
    let ws = workspace::stats();
    let ks = kstats::snapshot();
    let conv = |k: Kernel| {
        let s = ks[k as usize];
        format!("calls={} work={}", s.calls, s.work)
    };
    vec![
        ("simd_isa", simd::active().name().to_string()),
        ("gemm_tile", simd::gemm_tile().name().to_string()),
        ("precision", precision::active().name().to_string()),
        ("tuner_profile", tuner),
        ("workspace_live_bytes", ws.live_bytes.to_string()),
        ("workspace_peak_live_bytes", ws.peak_live_bytes.to_string()),
        ("kernel_pack_bf16", conv(Kernel::PackBf16)),
        ("kernel_widen_bf16", conv(Kernel::WidenBf16)),
        ("kernel_quant_i8", conv(Kernel::QuantI8)),
        ("kernel_gemm_i8", conv(Kernel::GemmI8)),
    ]
}
