//! Experiment plumbing: CLI args, factories, the split-averaged runner,
//! and the shared [`BenchSession`] harness for `bench_prN` binaries.

use crate::executor::Executor;
use crate::timing::Bencher;
use skipnode_core::{Sampling, SkipNodeConfig};
use skipnode_graph::{full_supervised_split, semi_supervised_split, Graph, Scale, Split};
use skipnode_nn::models::{BuildError, Model};
use skipnode_nn::{train_node_classifier, Strategy, TrainConfig};
use skipnode_tensor::{kstats, pool, SplitRng};

/// The boilerplate every `bench_prN` binary used to open and close by
/// hand, in one place: the [`kstats::ExitReport`] guard (kernel-counter
/// table at process exit), forced kernel-counter collection, the
/// [`Bencher`] timer, the `SKIPNODE_BENCH_FAST=1` smoke flag, and the
/// metadata record that [`BenchSession::finish`] completes with
/// [`crate::perf_metadata`] before writing the JSON results file.
///
/// ```no_run
/// use skipnode_bench::BenchSession;
/// let mut session = BenchSession::start("9");
/// session.meta.push(("graph", "packed batch".to_string()));
/// session.bench.run("epoch", "packed", || { /* timed body */ });
/// session.finish("results/BENCH_PR9.json");
/// ```
pub struct BenchSession {
    /// Prints the kernel-counter table to stderr when the binary exits.
    _kstats: kstats::ExitReport,
    /// Wall-clock timer (budgets from `SKIPNODE_BENCH_*` env vars).
    pub bench: Bencher,
    /// `SKIPNODE_BENCH_FAST=1`: binaries shrink sizes and skip wall-clock
    /// assertions (CI machines are noisy) but keep every identity and
    /// accuracy gate.
    pub fast: bool,
    /// Metadata rows for the JSON record; pre-seeded with the PR number
    /// and thread count, finished with [`crate::perf_metadata`].
    pub meta: Vec<(&'static str, String)>,
}

impl BenchSession {
    /// Open a session for PR `pr`: install the kstats exit report, force
    /// kernel counters on (so conversion/kernel metadata in the JSON is
    /// non-zero regardless of the environment), read the fast flag, and
    /// seed the metadata record.
    pub fn start(pr: &str) -> Self {
        let _kstats = kstats::exit_report();
        kstats::set_enabled(true);
        let fast = std::env::var("SKIPNODE_BENCH_FAST").is_ok_and(|v| v == "1");
        let meta = vec![
            ("pr", pr.to_string()),
            ("threads", pool::num_threads().to_string()),
        ];
        Self {
            _kstats,
            bench: Bencher::from_env(),
            fast,
            meta,
        }
    }

    /// Append [`crate::perf_metadata`] (SIMD ISA, GEMM tile, precision
    /// mode, tuner profile, workspace and kernel counters) to the record
    /// and write it alongside the timing samples.
    pub fn finish(mut self, path: &str) {
        self.meta.extend(crate::perf_metadata());
        self.bench.write_json(path, &self.meta);
    }
}

/// Common CLI arguments for experiment binaries.
///
/// Flags: `--seed N`, `--scale paper|bench`, `--epochs N`, `--splits N`,
/// `--quick` (shrinks grids for smoke runs).
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Master seed.
    pub seed: u64,
    /// Dataset scale.
    pub scale: Scale,
    /// Epoch budget per run.
    pub epochs: usize,
    /// Number of repeated splits per configuration.
    pub splits: usize,
    /// Smoke-test mode: binaries shrink their grids.
    pub quick: bool,
    /// Optional depth override (binaries with a fixed depth honor it).
    pub depth: Option<usize>,
    /// Optional backbone slice (comma-separated names).
    pub backbones: Option<Vec<String>>,
    /// Optional dataset slice (comma-separated names).
    pub datasets: Option<Vec<String>>,
    /// Optional depth-grid slice (comma-separated depths).
    pub depths: Option<Vec<usize>>,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with per-binary defaults.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed flags.
    pub fn parse(default_epochs: usize, default_splits: usize) -> Self {
        let mut out = Self {
            seed: 7,
            scale: Scale::Bench,
            epochs: default_epochs,
            splits: default_splits,
            quick: false,
            depth: None,
            backbones: None,
            datasets: None,
            depths: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> &str {
                *i += 1;
                args.get(*i).unwrap_or_else(|| {
                    panic!("flag {} expects a value", args[*i - 1]);
                })
            };
            match args[i].as_str() {
                "--seed" => out.seed = take(&mut i).parse().expect("--seed expects u64"),
                "--scale" => {
                    out.scale = match take(&mut i) {
                        "paper" => Scale::Paper,
                        "bench" => Scale::Bench,
                        other => panic!("unknown scale {other} (paper|bench)"),
                    }
                }
                "--epochs" => out.epochs = take(&mut i).parse().expect("--epochs expects usize"),
                "--splits" => out.splits = take(&mut i).parse().expect("--splits expects usize"),
                "--quick" => out.quick = true,
                "--depth" => {
                    out.depth = Some(take(&mut i).parse().expect("--depth expects usize"))
                }
                "--backbones" => {
                    out.backbones =
                        Some(take(&mut i).split(',').map(|s| s.to_string()).collect())
                }
                "--datasets" => {
                    out.datasets =
                        Some(take(&mut i).split(',').map(|s| s.to_string()).collect())
                }
                "--depths" => {
                    out.depths = Some(
                        take(&mut i)
                            .split(',')
                            .map(|d| d.parse().expect("--depths expects usize list"))
                            .collect(),
                    )
                }
                other => panic!(
                    "unknown flag {other}; supported: --seed --scale --epochs --splits --quick --depth --depths --backbones --datasets"
                ),
            }
            i += 1;
        }
        if out.quick {
            out.epochs = out.epochs.min(30);
            out.splits = out.splits.min(2);
        }
        out
    }

    /// Apply the `--backbones` slice to a default backbone list.
    pub fn slice_backbones(&self, default: Vec<&'static str>) -> Vec<String> {
        match &self.backbones {
            Some(list) => list.clone(),
            None => default.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Apply the `--datasets` slice to a default dataset list.
    pub fn slice_datasets(
        &self,
        default: Vec<skipnode_graph::DatasetName>,
    ) -> Vec<skipnode_graph::DatasetName> {
        match &self.datasets {
            Some(list) => list
                .iter()
                .map(|s| {
                    skipnode_graph::DatasetName::parse(s)
                        .unwrap_or_else(|| panic!("unknown dataset {s}"))
                })
                .collect(),
            None => default,
        }
    }

    /// Apply the `--depths` slice to a default depth grid.
    pub fn slice_depths(&self, default: Vec<usize>) -> Vec<usize> {
        self.depths.clone().unwrap_or(default)
    }

    /// Training config derived from these args. Evaluation every 5 epochs
    /// keeps single-core wall-clock sane; the final epoch always evaluates.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            patience: (self.epochs / 4).max(20),
            eval_every: 5,
            ..Default::default()
        }
    }
}

/// Build a backbone by table name (delegates to
/// [`skipnode_nn::models::build_by_name`]). Unknown names are an `Err`,
/// so binaries can report them instead of aborting — see [`require`].
pub fn build_model(
    name: &str,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
    depth: usize,
    dropout: f64,
    rng: &mut SplitRng,
) -> Result<Box<dyn Model>, BuildError> {
    skipnode_nn::models::build_by_name(name, in_dim, hidden, out_dim, depth, dropout, rng)
}

/// Unwrap a factory result, or print the error and exit with status 2 —
/// the graceful-reporting path bench binaries take for unknown
/// backbone/strategy names from the CLI.
pub fn require<T>(result: Result<T, BuildError>) -> T {
    result.unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    })
}

/// The depth-tuned SkipNode sampling rate, mirroring the paper's per-cell
/// grid search over ρ ∈ {0.05, …, 0.9}: deeper models need more skipping
/// (cf. Figure 5 — at L = 32 the best ρ is 0.8–0.9).
pub fn tuned_rho(depth: usize) -> f64 {
    match depth {
        0..=9 => 0.5,
        10..=23 => 0.8,
        _ => 0.9,
    }
}

/// Build a strategy by table name (`-`, `dropedge`, `dropnode`,
/// `pairnorm`, `skipnode-u`, `skipnode-b`) with the given rate. Unknown
/// names are an `Err`, not a panic — see [`require`].
pub fn strategy_by_name(name: &str, rate: f64) -> Result<Strategy, BuildError> {
    Ok(match name {
        "-" | "none" => Strategy::None,
        "dropedge" => Strategy::DropEdge { rate },
        "dropnode" => Strategy::DropNode { rate },
        "pairnorm" => Strategy::PairNorm { scale: 1.0 },
        "skipnode-u" => Strategy::SkipNode(SkipNodeConfig::new(rate, Sampling::Uniform)),
        "skipnode-b" => Strategy::SkipNode(SkipNodeConfig::new(rate, Sampling::Biased)),
        other => return Err(BuildError::UnknownStrategy(other.to_string())),
    })
}

/// Outcome of a repeated-split classification experiment.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Mean test accuracy (percent).
    pub mean: f64,
    /// Standard deviation over splits (percent).
    pub std: f64,
    /// Mean MAD at the final evaluation, when recorded.
    pub mad: Option<f64>,
}

/// Split protocol for [`run_classification`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// 20 per class train / 500 val / 1000 test (Planetoid public-style).
    SemiSupervised,
    /// 60/20/20 random.
    FullSupervised,
}

/// Train `splits` independent (split, init) repetitions of one
/// configuration and aggregate test accuracy.
///
/// Repetitions run through the run-level [`Executor`]
/// (`SKIPNODE_RUN_PARALLEL`); each repetition seeds its own RNG from its
/// index, so parallel results are byte-identical to serial.
#[allow(clippy::too_many_arguments)]
pub fn run_classification(
    graph: &Graph,
    backbone: &str,
    depth: usize,
    strategy: &Strategy,
    protocol: Protocol,
    cfg: &TrainConfig,
    splits: usize,
    hidden: usize,
    dropout: f64,
    seed: u64,
) -> RunOutcome {
    let reps = Executor::from_env().run(splits, |rep| {
        let mut rng = SplitRng::new(seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let split: Split = match protocol {
            Protocol::SemiSupervised => semi_supervised_split(graph, &mut rng),
            Protocol::FullSupervised => full_supervised_split(graph, &mut rng),
        };
        let mut model = require(build_model(
            backbone,
            graph.feature_dim(),
            hidden,
            graph.num_classes(),
            depth,
            dropout,
            &mut rng,
        ));
        let result = train_node_classifier(model.as_mut(), graph, &split, strategy, cfg, &mut rng);
        (result.test_accuracy * 100.0, result.final_mad)
    });
    let accs: Vec<f64> = reps.iter().map(|&(acc, _)| acc).collect();
    let mads: Vec<f64> = reps.iter().filter_map(|&(_, mad)| mad).collect();
    let (mean, std) = mean_std(&accs);
    RunOutcome {
        mean,
        std,
        mad: (!mads.is_empty()).then(|| mads.iter().sum::<f64>() / mads.len() as f64),
    }
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_of_constants() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn tuned_rho_grows_with_depth() {
        assert_eq!(tuned_rho(4), 0.5);
        assert_eq!(tuned_rho(16), 0.8);
        assert_eq!(tuned_rho(32), 0.9);
        assert!(tuned_rho(64) >= tuned_rho(8));
    }

    #[test]
    fn factories_cover_all_backbones() {
        let mut rng = SplitRng::new(1);
        for name in [
            "gcn",
            "resgcn",
            "jknet",
            "inceptgcn",
            "gcnii",
            "appnp",
            "gprgnn",
            "grand",
            "sgc",
        ] {
            let m = build_model(name, 8, 4, 3, 3, 0.1, &mut rng).expect("known backbone");
            assert!(!m.store().is_empty(), "{name} has no params");
        }
    }

    #[test]
    fn strategy_factory_round_trip() {
        assert_eq!(strategy_by_name("-", 0.0), Ok(Strategy::None));
        assert_eq!(
            strategy_by_name("dropedge", 0.3),
            Ok(Strategy::DropEdge { rate: 0.3 })
        );
        assert!(matches!(
            strategy_by_name("skipnode-b", 0.5),
            Ok(Strategy::SkipNode(_))
        ));
    }

    #[test]
    fn unknown_names_are_errors_not_panics() {
        let mut rng = SplitRng::new(1);
        let err = build_model("nope", 8, 4, 3, 3, 0.1, &mut rng)
            .err()
            .expect("unknown backbone must be rejected");
        assert_eq!(err, BuildError::UnknownBackbone("nope".to_string()));
        assert!(err.to_string().contains("unknown backbone"));
        let err = strategy_by_name("nope", 0.5).expect_err("unknown strategy must be rejected");
        assert_eq!(err, BuildError::UnknownStrategy("nope".to_string()));
    }
}
