//! Table 2: dataset statistics of the nine synthetic substitutes.
//!
//! Prints generated node/edge/feature counts side-by-side with the paper's
//! published numbers, plus realized homophily, so dataset substitutions are
//! auditable.
//!
//! Usage: `cargo run -p skipnode-bench --release --bin table2 [--scale paper|bench] [--seed N]`

use skipnode_bench::{Executor, ExpArgs, TablePrinter};
use skipnode_graph::{load, DatasetSpec, Scale, ALL_DATASETS};

fn main() {
    let args = ExpArgs::parse(0, 1);
    println!(
        "Table 2 — dataset statistics (scale: {:?}, seed {})\n",
        args.scale, args.seed
    );
    let mut t = TablePrinter::new(&[
        "dataset",
        "#nodes",
        "#edges",
        "#features",
        "#classes",
        "homophily",
        "paper nodes/edges/features",
    ]);
    // Generating nine datasets is independent work — fan it out through the
    // run-level executor; rows print in dataset order regardless.
    let rows = Executor::from_env().run(ALL_DATASETS.len(), |i| {
        let name = ALL_DATASETS[i];
        let paper = DatasetSpec::of(name, Scale::Paper);
        let g = load(name, args.scale, args.seed);
        vec![
            name.as_str().to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.feature_dim().to_string(),
            g.num_classes().to_string(),
            format!("{:.2}", g.edge_homophily()),
            format!("{}/{}/{}", paper.nodes, paper.edges, paper.features),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    if args.scale == Scale::Bench {
        println!(
            "\nBench scale shrinks Pubmed, ogbn-arxiv, and ogbl-ppa and trims feature\n\
             widths > 1500 so the full grid trains on CPU; run with --scale paper for\n\
             the published sizes."
        );
    }
}
