//! PR 10 performance record: adaptive micro-batched online serving.
//!
//! The experiment drives the [`InferenceServer`] with synthetic
//! **open-loop** traffic: a generator thread emits queries at a fixed
//! inter-arrival interval regardless of how fast the server drains them,
//! a collector thread stamps each response the moment its row arrives,
//! and per-request latency lands in a [`LatencyHistogram`] (p50/p95/p99
//! from log-spaced buckets). Completion throughput is
//! `requests / (last_completion - first_submit)` — under overload that is
//! the server's service rate, which is exactly the quantity
//! micro-batching is supposed to multiply.
//!
//! Before any timing, two identity gates run inline so a perf record is
//! never produced from a build where serving correctness broke:
//!
//! 1. micro-batched rows == full-graph forward rows, f32 and int8;
//! 2. after a burst of incremental edge/node updates, the patched
//!    adjacency equals a from-scratch rebuild byte-for-byte and served
//!    logits equal a fresh evaluation on the rebuilt graph.
//!
//! The sweep covers batching windows (a `max_batch = 1` degenerate
//! baseline vs. 200 µs and 1 ms coalescing windows), the three numeric
//! paths (f32, bf16 streamed-operand staging, int8 weight quantization),
//! and an update-rate mix that interleaves live graph edits with
//! queries. The headline gate asserts the 200 µs window sustains at
//! least 2× the baseline's completion throughput.
//!
//! Run with `cargo run --release -p skipnode-bench --bin bench_pr10`.
//! `--fast` or `SKIPNODE_BENCH_FAST=1` shrinks the graph and request
//! count and skips the wall-clock assertion (identity gates always run).

use skipnode_bench::{BenchSession, LatencyHistogram};
use skipnode_graph::{
    partition_graph, FeatureStyle, Graph, GraphUpdate, PartitionConfig, UpdateStream,
};
use skipnode_nn::{evaluate, evaluate_quantized, BackboneSpec, ModelCheckpoint, Strategy};
use skipnode_serve::{InferenceServer, ServeEngine, ServeMode, ServerConfig};
use skipnode_tensor::precision::{self, Storage};
use skipnode_tensor::{Matrix, SplitRng};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const DIM: usize = 32;
const HIDDEN: usize = 64;
const CLASSES: usize = 8;
const DEPTH: usize = 4;

fn full_eval(ckpt: &ModelCheckpoint, graph: &Graph, mode: ServeMode) -> Matrix {
    let model = ckpt.restore().unwrap();
    let adj = graph.gcn_adjacency();
    let mut rng = SplitRng::new(1);
    let (logits, _) = match mode {
        ServeMode::F32 => evaluate(model.as_ref(), graph, &adj, &Strategy::None, &mut rng),
        ServeMode::Quantized => {
            evaluate_quantized(model.as_ref(), graph, &adj, &Strategy::None, &mut rng)
        }
    };
    logits
}

/// Identity gates, run before any timing (see module docs).
fn identity_gates(ckpt: &ModelCheckpoint, graph: &Graph) {
    let n = graph.num_nodes();
    let queries: Vec<usize> = (0..32).map(|i| (i * 97) % n).collect();

    // Gate 1: micro-batched == full forward, both numeric paths.
    for mode in [ServeMode::F32, ServeMode::Quantized] {
        let full = full_eval(ckpt, graph, mode);
        let mut engine = ServeEngine::from_checkpoint(ckpt, graph, mode).unwrap();
        let batched = engine.serve_batch(&queries);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(
                batched.row(i),
                full.row(q),
                "{mode:?}: batched row for node {q} != full forward"
            );
        }
        for &q in &queries[..4] {
            assert_eq!(
                engine.serve_one(q).as_slice(),
                full.row(q),
                "{mode:?}: sequential serve for node {q} != full forward"
            );
        }
    }

    // Gate 2: patched state == from-scratch rebuild after live updates.
    let mut engine = ServeEngine::from_checkpoint(ckpt, graph, ServeMode::F32).unwrap();
    let mut stream = UpdateStream::new(&vec![2usize; n], 0.2, DIM, 77);
    let mut shadow_edges: Vec<(usize, usize)> = graph.edges().to_vec();
    let mut shadow_feat: Vec<Vec<f32>> = (0..n).map(|i| graph.features().row(i).to_vec()).collect();
    let _ = engine.serve_batch(&queries); // warm the first-hop cache first
    for update in stream.take_updates(25) {
        match &update {
            GraphUpdate::AddEdge(u, v) => shadow_edges.push((*u, *v)),
            GraphUpdate::AddNode(f) => shadow_feat.push(f.clone()),
        }
        engine.apply_update(&update);
    }
    let n2 = shadow_feat.len();
    let feat_rows: Vec<&[f32]> = shadow_feat.iter().map(|r| r.as_slice()).collect();
    let rebuilt = Graph::new(
        n2,
        shadow_edges,
        Matrix::from_rows(&feat_rows),
        vec![0; n2],
        CLASSES,
    );
    let patched = engine.snapshot_adjacency();
    let oracle = rebuilt.gcn_adjacency();
    for r in 0..n2 {
        assert_eq!(
            patched.row(r),
            oracle.row(r),
            "patched adjacency row {r} != rebuild"
        );
    }
    let full = full_eval(ckpt, &rebuilt, ServeMode::F32);
    let probe: Vec<usize> = vec![0, 5, n2 - 1, n2 / 2, 7];
    let served = engine.serve_batch(&probe);
    for (i, &q) in probe.iter().enumerate() {
        assert_eq!(
            served.row(i),
            full.row(q),
            "served node {q} != rebuilt-graph eval"
        );
    }
    println!("identity gates passed (batched == full forward; patched == rebuild)");
}

struct RunResult {
    throughput_rps: f64,
    hist: LatencyHistogram,
    mean_batch: f64,
    max_batch_formed: usize,
    first_hop_hit_rate: f64,
    invalidated_rows: u64,
}

/// The arrival process: fixed request count and inter-arrival interval.
#[derive(Clone, Copy)]
struct Traffic {
    requests: usize,
    interarrival: Duration,
}

/// One open-loop run: pace `traffic.requests` submissions at
/// `traffic.interarrival` (interleaving one graph update every
/// `update_every` requests when nonzero), collect responses as they
/// land, and report completion throughput plus the latency histogram.
fn run_open_loop(
    ckpt: &ModelCheckpoint,
    graph: &Graph,
    mode: ServeMode,
    config: ServerConfig,
    traffic: Traffic,
    update_every: usize,
    seed: u64,
) -> RunResult {
    let Traffic {
        requests,
        interarrival,
    } = traffic;
    let engine = ServeEngine::from_checkpoint(ckpt, graph, mode).unwrap();
    let n = graph.num_nodes();
    let server = InferenceServer::start(engine, config);
    let mut rng = SplitRng::new(seed);
    let mut stream = UpdateStream::new(&vec![2usize; n], 0.1, DIM, seed ^ 0x5eed);

    let (ctx_tx, ctx_rx) = mpsc::channel::<(Instant, mpsc::Receiver<Vec<f32>>)>();
    let collector = std::thread::spawn(move || {
        let mut hist = LatencyHistogram::new();
        let mut last = Instant::now();
        for (t0, rx) in ctx_rx {
            let _row = rx.recv().expect("server dropped a request");
            last = Instant::now();
            hist.record(last - t0);
        }
        (hist, last)
    });

    let start = Instant::now();
    let mut next = start;
    for i in 0..requests {
        // Open loop: the arrival process never waits for the server.
        while Instant::now() < next {
            std::hint::spin_loop();
        }
        if update_every > 0 && i % update_every == update_every - 1 {
            server.update(stream.next_update());
        }
        let q = rng.below(n);
        ctx_tx
            .send((Instant::now(), server.submit(q)))
            .expect("collector alive");
        next += interarrival;
    }
    drop(ctx_tx);
    let (hist, last) = collector.join().expect("collector panicked");
    let (_engine, sstats, estats) = server.shutdown();
    let elapsed = (last - start).as_secs_f64().max(1e-9);
    let probes = estats.first_hop_hits + estats.first_hop_misses;
    RunResult {
        throughput_rps: requests as f64 / elapsed,
        hist,
        mean_batch: sstats.mean_batch(),
        max_batch_formed: sstats.max_batch_formed,
        first_hop_hit_rate: if probes == 0 {
            0.0
        } else {
            estats.first_hop_hits as f64 / probes as f64
        },
        invalidated_rows: estats.invalidated_rows,
    }
}

fn record(meta: &mut Vec<(&'static str, String)>, keys: [&'static str; 6], r: &RunResult) {
    let [k_tp, k_p50, k_p95, k_p99, k_batch, k_hit] = keys;
    meta.push((k_tp, format!("{:.1}", r.throughput_rps)));
    meta.push((k_p50, format!("{:.1}", r.hist.p50_ns() / 1e3)));
    meta.push((k_p95, format!("{:.1}", r.hist.p95_ns() / 1e3)));
    meta.push((k_p99, format!("{:.1}", r.hist.p99_ns() / 1e3)));
    meta.push((k_batch, format!("{:.2}", r.mean_batch)));
    meta.push((k_hit, format!("{:.3}", r.first_hop_hit_rate)));
}

fn main() {
    let mut session = BenchSession::start("10");
    let fast = session.fast || std::env::args().any(|a| a == "--fast");

    let n: usize = if fast { 2_000 } else { 12_000 };
    let graph = partition_graph(
        &PartitionConfig {
            n,
            m: 4 * n,
            classes: CLASSES,
            homophily: 0.8,
            power: 0.3,
        },
        DIM,
        FeatureStyle::BinaryBagOfWords {
            active: 6,
            fidelity: 0.9,
            confusion: 0.1,
        },
        &mut SplitRng::new(9),
    );
    let spec = BackboneSpec::new("gcn", graph.feature_dim(), HIDDEN, CLASSES, DEPTH, 0.3);
    let model = spec.build(&mut SplitRng::new(23)).unwrap();
    let ckpt = ModelCheckpoint::capture(&spec, model.as_ref());
    println!(
        "serving n={} m={} backbone=gcn depth={} hidden={}",
        graph.num_nodes(),
        graph.num_edges(),
        DEPTH,
        HIDDEN
    );

    identity_gates(&ckpt, &graph);

    // Direct engine micro-benchmarks (no queueing): the per-forward cost
    // micro-batching amortizes.
    {
        let queries: Vec<usize> = (0..64).map(|i| (i * 131) % n).collect();
        let mut engine = ServeEngine::from_checkpoint(&ckpt, &graph, ServeMode::F32).unwrap();
        session
            .bench
            .run("engine", "serve_one_f32", || engine.serve_one(queries[0]));
        session.bench.run("engine", "serve_batch64_f32", || {
            engine.serve_batch(&queries)
        });
        let mut qengine =
            ServeEngine::from_checkpoint(&ckpt, &graph, ServeMode::Quantized).unwrap();
        session.bench.run("engine", "serve_batch64_int8", || {
            qengine.serve_batch(&queries)
        });
    }

    // ---- Open-loop sweep ----------------------------------------------
    let traffic = Traffic {
        requests: if fast { 400 } else { 4_000 },
        interarrival: Duration::from_micros(if fast { 80 } else { 40 }),
    };
    let requests = traffic.requests;
    let interarrival = traffic.interarrival;
    let baseline_cfg = ServerConfig {
        window: Duration::ZERO,
        max_batch: 1, // strictly one request per forward
    };
    let w200_cfg = ServerConfig {
        window: Duration::from_micros(200),
        max_batch: 64,
    };
    let w1ms_cfg = ServerConfig {
        window: Duration::from_millis(1),
        max_batch: 64,
    };

    let run = |cfg, mode, upd, seed| run_open_loop(&ckpt, &graph, mode, cfg, traffic, upd, seed);

    println!("open-loop: {requests} requests at 1/{interarrival:?}");
    let base = run(baseline_cfg, ServeMode::F32, 0, 100);
    println!(
        "  batch-1 baseline: {:.0} req/s  {}",
        base.throughput_rps,
        base.hist.summary()
    );
    let w200 = run(w200_cfg, ServeMode::F32, 0, 101);
    println!(
        "  f32 w=200us:      {:.0} req/s  {}",
        w200.throughput_rps,
        w200.hist.summary()
    );
    let w1ms = run(w1ms_cfg, ServeMode::F32, 0, 102);
    println!(
        "  f32 w=1ms:        {:.0} req/s  {}",
        w1ms.throughput_rps,
        w1ms.hist.summary()
    );

    let prev = precision::force(Storage::Bf16);
    let bf16 = run(w200_cfg, ServeMode::F32, 0, 103);
    precision::force(prev);
    println!(
        "  bf16 w=200us:     {:.0} req/s  {}",
        bf16.throughput_rps,
        bf16.hist.summary()
    );
    let int8 = run(w200_cfg, ServeMode::Quantized, 0, 104);
    println!(
        "  int8 w=200us:     {:.0} req/s  {}",
        int8.throughput_rps,
        int8.hist.summary()
    );

    // Update mix: one graph edit per 25 queries rides the same queue.
    let upd = run(w200_cfg, ServeMode::F32, 25, 105);
    println!(
        "  f32 w=200us + updates: {:.0} req/s  {}  ({} adjacency rows invalidated)",
        upd.throughput_rps,
        upd.hist.summary(),
        upd.invalidated_rows
    );

    let speedup = w200.throughput_rps / base.throughput_rps;
    println!(
        "micro-batch speedup over batch-1 serving: {speedup:.2}x (mean batch {:.1}, max {})",
        w200.mean_batch, w200.max_batch_formed
    );
    if fast {
        println!("fast mode: skipping the 2x wall-clock gate");
    } else {
        assert!(
            speedup >= 2.0,
            "micro-batching must at least double completion throughput: got {speedup:.2}x"
        );
    }

    session.meta.push(("nodes", n.to_string()));
    session.meta.push(("edges", graph.num_edges().to_string()));
    session.meta.push(("requests", requests.to_string()));
    session
        .meta
        .push(("interarrival_us", interarrival.as_micros().to_string()));
    record(
        &mut session.meta,
        [
            "serve_b1_rps",
            "serve_b1_p50_us",
            "serve_b1_p95_us",
            "serve_b1_p99_us",
            "serve_b1_mean_batch",
            "serve_b1_hit_rate",
        ],
        &base,
    );
    record(
        &mut session.meta,
        [
            "serve_w200_rps",
            "serve_w200_p50_us",
            "serve_w200_p95_us",
            "serve_w200_p99_us",
            "serve_w200_mean_batch",
            "serve_w200_hit_rate",
        ],
        &w200,
    );
    record(
        &mut session.meta,
        [
            "serve_w1ms_rps",
            "serve_w1ms_p50_us",
            "serve_w1ms_p95_us",
            "serve_w1ms_p99_us",
            "serve_w1ms_mean_batch",
            "serve_w1ms_hit_rate",
        ],
        &w1ms,
    );
    record(
        &mut session.meta,
        [
            "serve_bf16_rps",
            "serve_bf16_p50_us",
            "serve_bf16_p95_us",
            "serve_bf16_p99_us",
            "serve_bf16_mean_batch",
            "serve_bf16_hit_rate",
        ],
        &bf16,
    );
    record(
        &mut session.meta,
        [
            "serve_int8_rps",
            "serve_int8_p50_us",
            "serve_int8_p95_us",
            "serve_int8_p99_us",
            "serve_int8_mean_batch",
            "serve_int8_hit_rate",
        ],
        &int8,
    );
    record(
        &mut session.meta,
        [
            "serve_upd_rps",
            "serve_upd_p50_us",
            "serve_upd_p95_us",
            "serve_upd_p99_us",
            "serve_upd_mean_batch",
            "serve_upd_hit_rate",
        ],
        &upd,
    );
    session.meta.push((
        "serve_upd_invalidated_rows",
        upd.invalidated_rows.to_string(),
    ));
    session
        .meta
        .push(("microbatch_speedup", format!("{speedup:.2}")));
    session.finish("results/BENCH_PR10.json");
}
